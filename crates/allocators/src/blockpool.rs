//! Shared block bookkeeping: best-fit free lists with block splitting and
//! immediate coalescing, the core mechanism of PyTorch's caching allocator.
//!
//! A [`BlockPool`] tracks blocks carved out of reserved regions (caching
//! segments or expandable arenas). Blocks belonging to the same region
//! coalesce on free; distinct regions never merge even if their addresses
//! happen to be adjacent (they never are — the device leaves guard gaps).

use std::collections::{BTreeSet, HashMap};

/// A block of reserved memory, either free or allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Base address.
    pub addr: u64,
    /// Length in bytes.
    pub size: u64,
    /// Region (segment/arena) identifier; blocks only merge within one.
    pub region: u64,
    /// Whether the block is currently allocated.
    pub allocated: bool,
}

impl Block {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }
}

/// Best-fit block pool with split and coalesce.
#[derive(Debug, Default, Clone)]
pub struct BlockPool {
    /// Free blocks ordered by (size, addr) — PyTorch's comparator.
    free: BTreeSet<(u64, u64)>,
    /// All blocks by base address.
    blocks: HashMap<u64, Block>,
    /// Block base address by end address (for neighbour lookup).
    by_end: HashMap<u64, u64>,
    /// Total free bytes.
    free_bytes: u64,
}

impl BlockPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes in free blocks.
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Number of free blocks.
    pub fn free_block_count(&self) -> usize {
        self.free.len()
    }

    /// Largest free block size.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().next_back().map_or(0, |&(s, _)| s)
    }

    /// Looks up a block by base address.
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.blocks.get(&addr)
    }

    /// Iterates over free blocks as `(addr, size, region)`, ascending size.
    pub fn iter_free(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.free.iter().map(move |&(size, addr)| {
            let b = &self.blocks[&addr];
            (addr, size, b.region)
        })
    }

    /// Adds a new free region (a fresh segment or a grown arena tail).
    /// Coalesces with an adjacent free block of the same region, which
    /// happens when an arena grows right after its last free block.
    pub fn add_region(&mut self, addr: u64, size: u64, region: u64) {
        debug_assert!(size > 0);
        debug_assert!(!self.blocks.contains_key(&addr), "region overlap");
        let mut blk = Block {
            addr,
            size,
            region,
            allocated: false,
        };
        // Merge with a free predecessor ending exactly at `addr`.
        if let Some(&prev_addr) = self.by_end.get(&addr) {
            let prev = self.blocks[&prev_addr];
            if !prev.allocated && prev.region == region {
                self.detach_free(prev_addr);
                blk.addr = prev.addr;
                blk.size += prev.size;
            }
        }
        self.attach_free(blk);
        self.free_bytes += size;
    }

    /// Best-fit lookup: the smallest free block with `size >= want`,
    /// optionally bounded (blocks of size `>= limit` are skipped unless the
    /// request itself is `>= limit` — PyTorch's `max_split_size` oversize
    /// rule).
    pub fn best_fit(&self, want: u64, oversize_limit: u64) -> Option<(u64, u64)> {
        if let Some(&(size, addr)) = self.free.range((want, 0)..).next() {
            if want < oversize_limit && size >= oversize_limit {
                // An oversize cached block must not serve small requests.
                return None;
            }
            return Some((addr, size));
        }
        None
    }

    /// Allocates `want` bytes from the free block at `addr`.
    ///
    /// If `split` returns `true` for the remainder, the tail is kept free;
    /// otherwise the whole block is granted. Returns the granted size.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a free block or is smaller than `want`.
    pub fn allocate(&mut self, addr: u64, want: u64, split: impl Fn(u64) -> bool) -> u64 {
        let blk = *self.blocks.get(&addr).expect("allocate: unknown block");
        assert!(!blk.allocated, "allocate: block busy");
        assert!(blk.size >= want, "allocate: block too small");
        self.detach_free(addr);
        let remainder = blk.size - want;
        let granted = if remainder > 0 && split(remainder) {
            let tail = Block {
                addr: blk.addr + want,
                size: remainder,
                region: blk.region,
                allocated: false,
            };
            self.attach_free(tail);
            want
        } else {
            blk.size
        };
        let alloc_blk = Block {
            addr: blk.addr,
            size: granted,
            region: blk.region,
            allocated: true,
        };
        self.blocks.insert(alloc_blk.addr, alloc_blk);
        self.by_end.insert(alloc_blk.end(), alloc_blk.addr);
        self.free_bytes -= granted;
        granted
    }

    /// Frees an allocated block, coalescing with free neighbours of the
    /// same region. Returns the merged free block.
    pub fn free(&mut self, addr: u64) -> Block {
        let mut blk = *self.blocks.get(&addr).expect("free: unknown block");
        assert!(blk.allocated, "free: block not allocated");
        self.blocks.remove(&addr);
        self.by_end.remove(&blk.end());
        self.free_bytes += blk.size;

        // Merge predecessor.
        if let Some(&prev_addr) = self.by_end.get(&blk.addr) {
            let prev = self.blocks[&prev_addr];
            if !prev.allocated && prev.region == blk.region {
                self.detach_free(prev_addr);
                blk.addr = prev.addr;
                blk.size += prev.size;
            }
        }
        // Merge successor.
        if let Some(next) = self.blocks.get(&blk.end()).copied() {
            if !next.allocated && next.region == blk.region {
                self.detach_free(next.addr);
                blk.size += next.size;
            }
        }
        blk.allocated = false;
        self.attach_free(blk);
        blk
    }

    /// Removes a free block from the pool entirely (segment release or
    /// stitch consumption). Returns it.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a free block.
    pub fn take_free(&mut self, addr: u64) -> Block {
        let blk = *self.blocks.get(&addr).expect("take_free: unknown block");
        assert!(!blk.allocated, "take_free: block busy");
        self.detach_free(addr);
        self.free_bytes -= blk.size;
        blk
    }

    /// Re-inserts a block previously taken with [`Self::take_free`] as an
    /// allocated block (stitch component bookkeeping), so that a later
    /// [`Self::free`] returns it to circulation with coalescing.
    pub fn reinsert_allocated(&mut self, blk: Block) {
        debug_assert!(!self.blocks.contains_key(&blk.addr));
        let b = Block {
            allocated: true,
            ..blk
        };
        self.blocks.insert(b.addr, b);
        self.by_end.insert(b.end(), b.addr);
    }

    /// Checks internal consistency (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut free_sum = 0;
        for &(size, addr) in &self.free {
            let b = &self.blocks[&addr];
            assert!(!b.allocated);
            assert_eq!(b.size, size);
            free_sum += size;
        }
        assert_eq!(free_sum, self.free_bytes);
        for (addr, b) in &self.blocks {
            assert_eq!(*addr, b.addr);
            assert_eq!(self.by_end.get(&b.end()), Some(addr));
        }
    }

    fn attach_free(&mut self, blk: Block) {
        debug_assert!(!blk.allocated);
        self.free.insert((blk.size, blk.addr));
        self.by_end.insert(blk.end(), blk.addr);
        self.blocks.insert(blk.addr, blk);
    }

    fn detach_free(&mut self, addr: u64) {
        let blk = self.blocks.remove(&addr).expect("detach: unknown");
        self.free.remove(&(blk.size, blk.addr));
        self.by_end.remove(&blk.end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_coalesce_roundtrip() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        let g = p.allocate(0, 300, |_| true);
        assert_eq!(g, 300);
        assert_eq!(p.free_bytes(), 700);
        let (addr, size) = p.best_fit(700, u64::MAX).unwrap();
        assert_eq!((addr, size), (300, 700));
        let merged = p.free(0);
        assert_eq!(merged.addr, 0);
        assert_eq!(merged.size, 1000);
        assert_eq!(p.free_block_count(), 1);
        p.check_invariants();
    }

    #[test]
    fn no_split_grants_whole_block() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        let g = p.allocate(0, 300, |_| false);
        assert_eq!(g, 1000);
        assert_eq!(p.free_bytes(), 0);
        p.check_invariants();
    }

    #[test]
    fn three_way_merge() {
        let mut p = BlockPool::new();
        p.add_region(0, 3000, 7);
        p.allocate(0, 1000, |_| true);
        p.allocate(1000, 1000, |_| true);
        p.allocate(2000, 1000, |_| false);
        assert_eq!(p.free_bytes(), 0);
        p.free(0);
        p.free(2000);
        assert_eq!(p.free_block_count(), 2);
        p.free(1000); // bridges both neighbours
        assert_eq!(p.free_block_count(), 1);
        assert_eq!(p.largest_free(), 3000);
        p.check_invariants();
    }

    #[test]
    fn regions_never_merge_across_boundaries() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        p.add_region(1000, 1000, 2); // address-adjacent but different region
        assert_eq!(p.free_block_count(), 2);
        let a = p.allocate(0, 1000, |_| false);
        assert_eq!(a, 1000);
        p.free(0);
        assert_eq!(p.free_block_count(), 2, "no cross-region merge");
        p.check_invariants();
    }

    #[test]
    fn arena_growth_merges_same_region_tail() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        p.add_region(1000, 500, 1); // growth of the same arena
        assert_eq!(p.free_block_count(), 1);
        assert_eq!(p.largest_free(), 1500);
        p.check_invariants();
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        p.add_region(5000, 400, 2);
        let (addr, size) = p.best_fit(300, u64::MAX).unwrap();
        assert_eq!((addr, size), (5000, 400));
        assert!(p.best_fit(2000, u64::MAX).is_none());
    }

    #[test]
    fn oversize_rule_blocks_small_requests() {
        let mut p = BlockPool::new();
        p.add_region(0, 10_000, 1);
        // A small request must not consume the oversize cached block.
        assert!(p.best_fit(100, 4096).is_none());
        // An oversize request may.
        assert!(p.best_fit(5000, 4096).is_some());
    }

    #[test]
    fn take_and_reinsert_supports_stitching() {
        let mut p = BlockPool::new();
        p.add_region(0, 1000, 1);
        let blk = p.take_free(0);
        assert_eq!(p.free_bytes(), 0);
        assert_eq!(p.free_block_count(), 0);
        p.reinsert_allocated(blk);
        let back = p.free(0);
        assert_eq!(back.size, 1000);
        assert_eq!(p.free_bytes(), 1000);
        p.check_invariants();
    }

    #[test]
    #[should_panic(expected = "block busy")]
    fn double_allocate_panics() {
        let mut p = BlockPool::new();
        p.add_region(0, 100, 1);
        p.allocate(0, 100, |_| false);
        p.allocate(0, 100, |_| false);
    }
}
