//! A faithful re-implementation of PyTorch's CUDA caching allocator.
//!
//! Mechanisms reproduced from `c10/cuda/CUDACachingAllocator.cpp`:
//!
//! * request rounding to 512 B ([`K_MIN_BLOCK_SIZE`]);
//! * a small pool (requests ≤ 1 MiB) carved from 2 MiB segments and a large
//!   pool carved from 20 MiB segments (requests ≥ 10 MiB get exact-size
//!   segments rounded to 2 MiB);
//! * best-fit over per-pool free lists ordered by (size, address);
//! * block splitting (small pool: remainder ≥ 512 B; large pool: remainder >
//!   1 MiB, subject to `max_split_size`) and immediate coalescing on free;
//! * on `cudaMalloc` failure: optionally release cached fully-free segments
//!   large enough for the request (PyTorch ≥ 2.1), then flush the whole
//!   cache and retry, and only then surface the out-of-memory error.
//!
//! The allocator never returns segments to the driver on tensor frees — the
//! root cause of the reserved-but-unused fragmentation the paper measures.

use std::collections::HashMap;

use gpu_sim::{Device, DevicePtr};
use trace_gen::TensorId;

use crate::blockpool::BlockPool;
use crate::{AllocError, AllocRequest, Allocation, AllocatorStats, GpuAllocator};

/// Minimum block size / rounding granularity (512 B).
pub const K_MIN_BLOCK_SIZE: u64 = 512;
/// Largest request served by the small pool (1 MiB).
pub const K_SMALL_SIZE: u64 = 1 << 20;
/// Segment size of the small pool (2 MiB).
pub const K_SMALL_BUFFER: u64 = 2 << 20;
/// Segment size of the large pool for requests < 10 MiB (20 MiB).
pub const K_LARGE_BUFFER: u64 = 20 << 20;
/// Requests at or above this size get exact-size segments (10 MiB).
pub const K_MIN_LARGE_ALLOC: u64 = 10 << 20;
/// Exact-size segments are rounded up to this multiple (2 MiB).
pub const K_ROUND_LARGE: u64 = 2 << 20;

/// PyTorch release presets the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TorchVersion {
    /// PyTorch 2.0 (GMLake's base).
    V20,
    /// PyTorch 2.3.
    V23,
    /// PyTorch 2.6 (H200 testbed).
    V26,
}

impl TorchVersion {
    /// Display label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            TorchVersion::V20 => "Torch 2.0",
            TorchVersion::V23 => "Torch 2.3",
            TorchVersion::V26 => "Torch 2.6",
        }
    }
}

/// Tunables of the caching allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachingConfig {
    /// Version preset (affects OOM-retry behaviour).
    pub version: TorchVersion,
    /// Blocks of at least this size are never split and only serve
    /// requests of at least this size (`max_split_size_mb`; default:
    /// unlimited, as in stock PyTorch).
    pub max_split_size: u64,
    /// Before a full cache flush on `cudaMalloc` failure, release cached
    /// fully-free segments big enough for the request (PyTorch ≥ 2.1).
    pub release_available_before_flush: bool,
}

impl CachingConfig {
    /// Stock PyTorch 2.0 configuration.
    pub fn torch_2_0() -> Self {
        Self {
            version: TorchVersion::V20,
            max_split_size: u64::MAX,
            release_available_before_flush: false,
        }
    }

    /// Stock PyTorch 2.3 configuration.
    pub fn torch_2_3() -> Self {
        Self {
            version: TorchVersion::V23,
            max_split_size: u64::MAX,
            release_available_before_flush: true,
        }
    }

    /// Stock PyTorch 2.6 configuration.
    pub fn torch_2_6() -> Self {
        Self {
            version: TorchVersion::V26,
            max_split_size: u64::MAX,
            release_available_before_flush: true,
        }
    }
}

/// Rounds a request to the allocator granularity.
pub fn round_size(size: u64) -> u64 {
    if size < K_MIN_BLOCK_SIZE {
        K_MIN_BLOCK_SIZE
    } else {
        K_MIN_BLOCK_SIZE * size.div_ceil(K_MIN_BLOCK_SIZE)
    }
}

/// Segment size chosen for a rounded request (PyTorch `get_allocation_size`).
pub fn allocation_size(rounded: u64) -> u64 {
    if rounded <= K_SMALL_SIZE {
        K_SMALL_BUFFER
    } else if rounded < K_MIN_LARGE_ALLOC {
        K_LARGE_BUFFER
    } else {
        K_ROUND_LARGE * rounded.div_ceil(K_ROUND_LARGE)
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    ptr: DevicePtr,
    size: u64,
    small: bool,
    /// Live (tensor- or stitch-) allocated blocks within the segment.
    allocated_blocks: usize,
}

/// PyTorch-style caching allocator.
#[derive(Debug)]
pub struct CachingAllocator {
    config: CachingConfig,
    small_pool: BlockPool,
    large_pool: BlockPool,
    /// Segment registry, keyed by region id (== base address).
    segments: HashMap<u64, Segment>,
    /// Live tensors: tensor -> (block addr, granted, small pool?).
    live: HashMap<TensorId, (u64, u64, bool)>,
    stats: AllocatorStats,
}

impl CachingAllocator {
    /// Creates an allocator with the given configuration.
    pub fn new(config: CachingConfig) -> Self {
        Self {
            config,
            small_pool: BlockPool::new(),
            large_pool: BlockPool::new(),
            segments: HashMap::new(),
            live: HashMap::new(),
            stats: AllocatorStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CachingConfig {
        &self.config
    }

    /// Bytes currently cached (free inside reserved segments).
    pub fn cached_bytes(&self) -> u64 {
        self.small_pool.free_bytes() + self.large_pool.free_bytes()
    }

    fn pool(&mut self, small: bool) -> &mut BlockPool {
        if small {
            &mut self.small_pool
        } else {
            &mut self.large_pool
        }
    }

    fn split_pred(config: &CachingConfig, small: bool, rounded: u64) -> impl Fn(u64) -> bool {
        let max_split = config.max_split_size;
        move |remaining: u64| {
            if small {
                remaining >= K_MIN_BLOCK_SIZE
            } else {
                rounded < max_split && remaining > K_SMALL_SIZE
            }
        }
    }

    /// Tries to serve `rounded` bytes from cached blocks only. Returns the
    /// block address and granted size.
    pub(crate) fn try_cached(&mut self, rounded: u64, small: bool) -> Option<(u64, u64)> {
        let config = self.config;
        let pool = self.pool(small);
        let (addr, _) = pool.best_fit(rounded, config.max_split_size)?;
        let granted = pool.allocate(addr, rounded, Self::split_pred(&config, small, rounded));
        let region = pool.get(addr).expect("just allocated").region;
        self.segments
            .get_mut(&region)
            .expect("segment exists")
            .allocated_blocks += 1;
        Some((addr, granted))
    }

    /// Reserves a new segment sized for `rounded` and allocates from it,
    /// applying PyTorch's OOM-retry ladder on device failure.
    pub(crate) fn alloc_in_new_segment(
        &mut self,
        dev: &mut Device,
        rounded: u64,
        small: bool,
    ) -> Result<(u64, u64), AllocError> {
        let seg_size = if small {
            K_SMALL_BUFFER
        } else {
            allocation_size(rounded)
        };
        let ptr = match dev.cuda_malloc(seg_size) {
            Ok(p) => p,
            Err(e) if e.is_oom() => {
                if self.config.release_available_before_flush {
                    self.release_available(dev, seg_size);
                }
                match dev.cuda_malloc(seg_size) {
                    Ok(p) => p,
                    Err(e2) if e2.is_oom() => {
                        self.release_cached_blocks(dev);
                        dev.cuda_malloc(seg_size).map_err(|e3| {
                            AllocError::from_device(e3, rounded, self.stats.reserved)
                        })?
                    }
                    Err(e2) => {
                        return Err(AllocError::from_device(e2, rounded, self.stats.reserved))
                    }
                }
            }
            Err(e) => return Err(AllocError::from_device(e, rounded, self.stats.reserved)),
        };
        let region = ptr.addr();
        self.segments.insert(
            region,
            Segment {
                ptr,
                size: seg_size,
                small,
                allocated_blocks: 0,
            },
        );
        self.pool(small).add_region(ptr.addr(), seg_size, region);
        self.stats.slow_path_events += 1;
        self.refresh_reserved();
        let (addr, granted) = self
            .try_cached(rounded, small)
            .expect("fresh segment fits the request");
        Ok((addr, granted))
    }

    /// Frees a block by address (shared with GMLake's stitch components).
    pub(crate) fn free_block_at(&mut self, addr: u64, small: bool) {
        let region = {
            let pool = self.pool(small);
            pool.free(addr).region
        };
        let seg = self
            .segments
            .get_mut(&region)
            .expect("block belongs to a segment");
        seg.allocated_blocks -= 1;
    }

    /// Free blocks of the large pool, for stitching: `(addr, size)`.
    pub(crate) fn large_free_blocks(&self) -> Vec<(u64, u64)> {
        self.large_pool
            .iter_free()
            .map(|(addr, size, _)| (addr, size))
            .collect()
    }

    /// Allocates `want` bytes from the free large-pool block at `addr`
    /// (stitch-component consumption). Returns the granted size.
    pub(crate) fn alloc_block_at(&mut self, addr: u64, want: u64) -> u64 {
        let config = self.config;
        let granted = self
            .large_pool
            .allocate(addr, want, Self::split_pred(&config, false, want));
        let region = self.large_pool.get(addr).expect("allocated").region;
        self.segments
            .get_mut(&region)
            .expect("segment exists")
            .allocated_blocks += 1;
        granted
    }

    /// Releases every fully-free segment back to the driver (PyTorch's
    /// `release_cached_blocks`, the OOM-retry / `empty_cache` path).
    pub fn release_cached_blocks(&mut self, dev: &mut Device) {
        let empty: Vec<u64> = self
            .segments
            .iter()
            .filter(|(_, s)| s.allocated_blocks == 0)
            .map(|(&r, _)| r)
            .collect();
        for region in empty {
            self.release_segment(dev, region);
        }
        self.refresh_reserved();
    }

    /// Releases fully-free segments of at least `need` bytes, smallest
    /// sufficient first (PyTorch's `release_available_cached_blocks`).
    fn release_available(&mut self, dev: &mut Device, need: u64) {
        let mut candidates: Vec<(u64, u64)> = self
            .segments
            .iter()
            .filter(|(_, s)| s.allocated_blocks == 0 && s.size >= need)
            .map(|(&r, s)| (s.size, r))
            .collect();
        candidates.sort_unstable();
        if let Some(&(_, region)) = candidates.first() {
            self.release_segment(dev, region);
            self.refresh_reserved();
        }
    }

    fn release_segment(&mut self, dev: &mut Device, region: u64) {
        let seg = self.segments.remove(&region).expect("known segment");
        debug_assert_eq!(seg.allocated_blocks, 0);
        // A fully-free segment has exactly one free block spanning it.
        let pool = self.pool(seg.small);
        let blk = pool.take_free(region);
        debug_assert_eq!(blk.size, seg.size, "segment fully coalesced");
        dev.cuda_free(seg.ptr).expect("segment pointer is live");
    }

    fn refresh_reserved(&mut self) {
        let reserved: u64 = self.segments.values().map(|s| s.size).sum();
        self.stats.set_reserved(reserved);
    }

    /// Number of live segments (test/diagnostic helper).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

impl GpuAllocator for CachingAllocator {
    fn name(&self) -> String {
        self.config.version.label().to_string()
    }

    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError> {
        let rounded = round_size(req.size);
        let small = rounded <= K_SMALL_SIZE;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        let (addr, granted) = match self.try_cached(rounded, small) {
            Some(hit) => hit,
            None => self.alloc_in_new_segment(dev, rounded, small)?,
        };
        self.live.insert(req.tensor, (addr, granted, small));
        self.stats.on_alloc(granted);
        Ok(Allocation { addr, granted })
    }

    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError> {
        let (addr, granted, small) = self
            .live
            .remove(&tensor)
            .ok_or(AllocError::UnknownTensor(tensor))?;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        self.free_block_at(addr, small);
        self.stats.on_free(granted);
        Ok(granted)
    }

    fn stats(&self) -> AllocatorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, LatencyModel};

    fn dev(cap: u64) -> Device {
        Device::with_latency(DeviceSpec::test_device(cap), LatencyModel::zero())
    }

    fn req(id: u64, size: u64) -> AllocRequest {
        AllocRequest {
            tensor: TensorId(id),
            size,
            dynamic: false,
        }
    }

    #[test]
    fn rounding_matches_pytorch() {
        assert_eq!(round_size(1), 512);
        assert_eq!(round_size(512), 512);
        assert_eq!(round_size(513), 1024);
        assert_eq!(allocation_size(round_size(100)), K_SMALL_BUFFER);
        assert_eq!(allocation_size(2 << 20), K_LARGE_BUFFER);
        assert_eq!(allocation_size(11 << 20), 12 << 20);
        assert_eq!(allocation_size(12 << 20), 12 << 20);
    }

    #[test]
    fn small_requests_share_a_2mib_segment() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        for i in 0..4 {
            a.malloc(&mut d, &req(i, 1000)).unwrap();
        }
        assert_eq!(a.segment_count(), 1);
        assert_eq!(a.stats().reserved, K_SMALL_BUFFER);
        assert_eq!(a.stats().allocated, 4 * 1024);
    }

    #[test]
    fn medium_requests_get_20mib_segments() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        a.malloc(&mut d, &req(0, 2 << 20)).unwrap();
        assert_eq!(a.stats().reserved, K_LARGE_BUFFER);
        // A second medium tensor fits the same segment.
        a.malloc(&mut d, &req(1, 2 << 20)).unwrap();
        assert_eq!(a.segment_count(), 1);
    }

    #[test]
    fn cached_blocks_are_reused_after_free() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        let first = a.malloc(&mut d, &req(0, 4 << 20)).unwrap();
        a.free(&mut d, TensorId(0)).unwrap();
        let second = a.malloc(&mut d, &req(1, 4 << 20)).unwrap();
        assert_eq!(first.addr, second.addr, "block reused from cache");
        assert_eq!(a.stats().reserved, K_LARGE_BUFFER, "no extra segment");
        assert_eq!(d.stats().num_mallocs, 1);
    }

    #[test]
    fn interleaved_lifetimes_fragment_the_cache() {
        // The Fig. 1(a) scenario: free space exists but is scattered, so a
        // larger request forces a new segment.
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        // Fill one 20 MiB segment with alternating 2 MiB tensors.
        for i in 0..10 {
            a.malloc(&mut d, &req(i, 2 << 20)).unwrap();
        }
        assert_eq!(a.segment_count(), 1);
        // Free every other tensor: 10 MiB free, but fragmented.
        for i in (0..10).step_by(2) {
            a.free(&mut d, TensorId(i)).unwrap();
        }
        let before = a.stats().reserved;
        // An 8 MiB request cannot fit any 2 MiB hole -> new segment.
        a.malloc(&mut d, &req(100, 8 << 20)).unwrap();
        assert!(a.stats().reserved > before, "fragmentation grew reserve");
        assert_eq!(a.segment_count(), 2);
    }

    #[test]
    fn oom_flushes_cache_and_retries() {
        let mut d = dev(64 << 20);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_0());
        // Reserve 3 x 18 MiB exact-size segments, then free them (cached).
        for i in 0..3 {
            a.malloc(&mut d, &req(i, 18 << 20)).unwrap();
        }
        for i in 0..3 {
            a.free(&mut d, TensorId(i)).unwrap();
        }
        assert_eq!(a.stats().reserved, 54 << 20);
        // 40 MiB exact segment only fits after the cache is flushed.
        let alloc = a.malloc(&mut d, &req(10, 40 << 20));
        assert!(alloc.is_ok(), "flush-and-retry succeeds: {alloc:?}");
        assert_eq!(a.stats().allocated, 40 << 20);
    }

    #[test]
    fn oom_with_pinned_blocks_is_fatal() {
        let mut d = dev(64 << 20);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        // Pin 3 segments with one live tensor each.
        for i in 0..3 {
            a.malloc(&mut d, &req(i, 18 << 20)).unwrap();
        }
        let e = a.malloc(&mut d, &req(10, 40 << 20)).unwrap_err();
        assert!(e.is_oom());
        // Training-visible state is intact: frees still work.
        a.free(&mut d, TensorId(0)).unwrap();
    }

    #[test]
    fn exact_size_segments_round_to_2mib() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        a.malloc(&mut d, &req(0, (10 << 20) + 5)).unwrap();
        assert_eq!(a.stats().reserved, 12 << 20);
    }

    #[test]
    fn split_remainder_is_reusable() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        a.malloc(&mut d, &req(0, 4 << 20)).unwrap(); // 20 MiB segment, 16 MiB left
        a.malloc(&mut d, &req(1, 14 << 20)).unwrap(); // fits the remainder
        assert_eq!(a.segment_count(), 1);
    }

    #[test]
    fn peak_reserved_survives_flush() {
        let mut d = dev(256 << 20);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_3());
        a.malloc(&mut d, &req(0, 100 << 20)).unwrap();
        a.free(&mut d, TensorId(0)).unwrap();
        a.release_cached_blocks(&mut d);
        assert_eq!(a.stats().reserved, 0);
        assert_eq!(a.stats().peak_reserved, 100 << 20);
    }

    #[test]
    fn stitch_component_api_roundtrip() {
        let mut d = dev(1 << 30);
        let mut a = CachingAllocator::new(CachingConfig::torch_2_0());
        a.malloc(&mut d, &req(0, 8 << 20)).unwrap();
        a.free(&mut d, TensorId(0)).unwrap();
        let blocks = a.large_free_blocks();
        assert!(!blocks.is_empty());
        let (addr, size) = blocks[blocks.len() - 1];
        let granted = a.alloc_block_at(addr, size);
        assert_eq!(granted, size);
        // While consumed, the segment is not releasable.
        a.release_cached_blocks(&mut d);
        assert!(a.stats().reserved > 0);
        a.free_block_at(addr, false);
        a.release_cached_blocks(&mut d);
        assert_eq!(a.stats().reserved, 0);
    }
}
