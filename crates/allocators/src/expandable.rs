//! PyTorch `expandable_segments:True` allocator.
//!
//! Instead of fixed-size segments, each pool owns one huge reserved virtual
//! range that grows by mapping 2 MiB physical granules at its frontier.
//! Because all blocks live in one contiguous virtual range, free space
//! coalesces across what would have been segment boundaries — eliminating
//! the dominant fragmentation mode of the caching allocator. The price is
//! driver traffic: physical pages are mapped on growth and unmapped when
//! large free regions are trimmed, and those VMM calls are expensive (the
//! throughput overhead the paper reports for ES in recomputation-heavy and
//! dynamic workloads, §9.2–9.3).
//!
//! Trimming policy: when a coalesced free block reaches
//! [`ExpandableAllocator::trim_threshold`], the whole physical runs lying
//! entirely inside it are unmapped and released. Stock PyTorch releases
//! pages under memory pressure and on `empty_cache`; the threshold models
//! that pressure-driven release at a fixed grain so that reserved memory
//! tracks demand the way the paper observes.

use std::collections::{BTreeMap, HashMap};

use gpu_sim::{Device, PhysHandle, VirtAddr, VirtualRange, VMM_GRANULARITY};
use trace_gen::TensorId;

use crate::blockpool::BlockPool;
use crate::caching::{round_size, K_MIN_BLOCK_SIZE, K_SMALL_SIZE};
use crate::{AllocError, AllocRequest, Allocation, AllocatorStats, GpuAllocator};

/// Default trim threshold: free regions of at least this size release their
/// interior physical pages.
pub const DEFAULT_TRIM_THRESHOLD: u64 = 64 << 20;

#[derive(Debug)]
struct Arena {
    range: Option<VirtualRange>,
    /// VA high-water handed to the block pool.
    frontier: u64,
    pool: BlockPool,
    /// Mapped physical runs: start VA -> (len, handle).
    runs: BTreeMap<u64, (u64, PhysHandle)>,
}

impl Arena {
    fn new() -> Self {
        Arena {
            range: None,
            frontier: 0,
            pool: BlockPool::new(),
            runs: BTreeMap::new(),
        }
    }

    fn region(&self) -> u64 {
        self.range.map(|r| r.base.0).unwrap_or(0)
    }

    fn ensure_range(&mut self, dev: &mut Device) -> Result<(), AllocError> {
        if self.range.is_none() {
            // Reserve ample VA: four times device capacity (VA is free).
            let r = dev
                .vmm_reserve(dev.spec().capacity * 4)
                .map_err(|e| AllocError::Internal(e.to_string()))?;
            self.frontier = r.base.0;
            self.range = Some(r);
        }
        Ok(())
    }

    /// Maps any unmapped granule-aligned gaps covering `[start, start+len)`.
    /// Returns the newly mapped bytes.
    fn ensure_mapped(&mut self, dev: &mut Device, start: u64, len: u64) -> Result<u64, AllocError> {
        let g = VMM_GRANULARITY;
        let gstart = start / g * g;
        let gend = gpu_sim::align_up(start + len, g);
        let mut new_bytes = 0;
        let mut cursor = gstart;
        // Walk existing runs to find gaps. Runs never overlap.
        let overlapping: Vec<(u64, u64)> = self
            .runs
            .range(..gend)
            .rev()
            .take_while(|(&s, &(l, _))| s + l > gstart)
            .map(|(&s, &(l, _))| (s, l))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let mut gaps = Vec::new();
        for (s, l) in overlapping {
            if s > cursor {
                gaps.push((cursor, s - cursor));
            }
            cursor = cursor.max(s + l);
        }
        if cursor < gend {
            gaps.push((cursor, gend - cursor));
        }
        for (gap_start, gap_len) in gaps {
            let handle = match dev.vmm_create(gap_len) {
                Ok(h) => h,
                Err(e) if e.is_oom() => return Err(AllocError::from_device(e, len, 0)),
                Err(e) => return Err(AllocError::Internal(e.to_string())),
            };
            dev.vmm_map(VirtAddr(gap_start), handle)
                .map_err(|e| AllocError::Internal(e.to_string()))?;
            self.runs.insert(gap_start, (gap_len, handle));
            new_bytes += gap_len;
        }
        Ok(new_bytes)
    }

    /// Unmaps and releases runs fully inside `[start, end)`. Returns the
    /// released bytes.
    fn release_interior(&mut self, dev: &mut Device, start: u64, end: u64) -> u64 {
        let g = VMM_GRANULARITY;
        let istart = gpu_sim::align_up(start, g);
        let iend = end / g * g;
        if istart >= iend {
            return 0;
        }
        let victims: Vec<u64> = self
            .runs
            .range(istart..iend)
            .filter(|(&s, &(l, _))| s + l <= iend)
            .map(|(&s, _)| s)
            .collect();
        let mut released = 0;
        for s in victims {
            let (l, h) = self.runs.remove(&s).expect("victim exists");
            dev.vmm_unmap(VirtAddr(s)).expect("run was mapped");
            dev.vmm_release(h).expect("handle live");
            released += l;
        }
        released
    }
}

/// Expandable-segments allocator (PyTorch ≥ 2.1, `expandable_segments:True`).
#[derive(Debug)]
pub struct ExpandableAllocator {
    /// Free regions of at least this size have their interior pages
    /// unmapped on free.
    pub trim_threshold: u64,
    small: Arena,
    large: Arena,
    live: HashMap<TensorId, (u64, u64, bool)>,
    mapped_bytes: u64,
    stats: AllocatorStats,
}

impl Default for ExpandableAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl ExpandableAllocator {
    /// Creates an allocator with the default trim threshold.
    pub fn new() -> Self {
        Self::with_trim_threshold(DEFAULT_TRIM_THRESHOLD)
    }

    /// Creates an allocator with an explicit trim threshold.
    pub fn with_trim_threshold(trim_threshold: u64) -> Self {
        Self {
            trim_threshold,
            small: Arena::new(),
            large: Arena::new(),
            live: HashMap::new(),
            mapped_bytes: 0,
            stats: AllocatorStats::default(),
        }
    }

    fn arena(&mut self, small: bool) -> &mut Arena {
        if small {
            &mut self.small
        } else {
            &mut self.large
        }
    }

    /// Releases interior pages of every sizeable free block (the memory-
    /// pressure path, also used before surfacing OOM).
    fn emergency_trim(&mut self, dev: &mut Device) {
        for small in [true, false] {
            // Split borrows: operate on one arena at a time.
            let arena = if small {
                &mut self.small
            } else {
                &mut self.large
            };
            let frees: Vec<(u64, u64)> = arena
                .pool
                .iter_free()
                .map(|(addr, size, _)| (addr, size))
                .collect();
            let mut released = 0;
            for (addr, size) in frees {
                released += arena.release_interior(dev, addr, addr + size);
            }
            self.mapped_bytes -= released;
        }
        self.stats.set_reserved(self.mapped_bytes);
    }

    fn malloc_in_arena(
        &mut self,
        dev: &mut Device,
        rounded: u64,
        small: bool,
    ) -> Result<(u64, u64), AllocError> {
        self.arena(small).ensure_range(dev)?;
        let region = self.arena(small).region();

        // Find or create a free block.
        if self.arena(small).pool.best_fit(rounded, u64::MAX).is_none() {
            let grow = gpu_sim::align_up(rounded, VMM_GRANULARITY);
            let arena = self.arena(small);
            let range = arena.range.expect("ensured");
            if arena.frontier + grow > range.base.0 + range.len {
                return Err(AllocError::OutOfMemory {
                    requested: rounded,
                    reserved: self.stats.reserved,
                    device_free: dev.free_bytes(),
                });
            }
            let frontier = arena.frontier;
            arena.pool.add_region(frontier, grow, region);
            arena.frontier += grow;
            self.stats.slow_path_events += 1;
        }
        let (addr, _) = self
            .arena(small)
            .pool
            .best_fit(rounded, u64::MAX)
            .expect("grown to fit");
        let granted = self.arena(small).pool.allocate(addr, rounded, |rem| {
            if small {
                rem >= K_MIN_BLOCK_SIZE
            } else {
                rem > K_SMALL_SIZE
            }
        });

        // Map the physical pages backing the granted range.
        match self.arena(small).ensure_mapped(dev, addr, granted) {
            Ok(bytes) => {
                self.mapped_bytes += bytes;
                self.stats.set_reserved(self.mapped_bytes);
                Ok((addr, granted))
            }
            Err(e) if e.is_oom() => {
                // Memory pressure: trim everything free and retry once.
                self.emergency_trim(dev);
                match self.arena(small).ensure_mapped(dev, addr, granted) {
                    Ok(bytes) => {
                        self.mapped_bytes += bytes;
                        self.stats.set_reserved(self.mapped_bytes);
                        Ok((addr, granted))
                    }
                    Err(e2) => {
                        self.arena(small).pool.free(addr);
                        Err(if e2.is_oom() {
                            AllocError::OutOfMemory {
                                requested: rounded,
                                reserved: self.stats.reserved,
                                device_free: dev.free_bytes(),
                            }
                        } else {
                            e2
                        })
                    }
                }
            }
            Err(e) => {
                self.arena(small).pool.free(addr);
                Err(e)
            }
        }
    }
}

impl GpuAllocator for ExpandableAllocator {
    fn name(&self) -> String {
        "Torch ES".into()
    }

    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError> {
        if !dev.supports_vmm() {
            return Err(AllocError::Internal(
                "expandable segments require VMM support".into(),
            ));
        }
        let rounded = round_size(req.size);
        let small = rounded <= K_SMALL_SIZE;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        let (addr, granted) = self.malloc_in_arena(dev, rounded, small)?;
        self.live.insert(req.tensor, (addr, granted, small));
        self.stats.on_alloc(granted);
        Ok(Allocation { addr, granted })
    }

    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError> {
        let (addr, granted, small) = self
            .live
            .remove(&tensor)
            .ok_or(AllocError::UnknownTensor(tensor))?;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        let threshold = self.trim_threshold;
        let arena = self.arena(small);
        let merged = arena.pool.free(addr);
        if merged.size >= threshold {
            let released = arena.release_interior(dev, merged.addr, merged.end());
            self.mapped_bytes -= released;
            self.stats.set_reserved(self.mapped_bytes);
        }
        self.stats.on_free(granted);
        Ok(granted)
    }

    fn stats(&self) -> AllocatorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, LatencyModel};

    fn dev(cap: u64) -> Device {
        Device::with_latency(DeviceSpec::test_device(cap), LatencyModel::zero())
    }

    fn req(id: u64, size: u64) -> AllocRequest {
        AllocRequest {
            tensor: TensorId(id),
            size,
            dynamic: false,
        }
    }

    #[test]
    fn coalescing_across_former_segment_boundaries() {
        // The scenario that fragments the caching allocator: interleaved
        // frees followed by a larger request. ES serves it in place.
        let mut d = dev(1 << 30);
        let mut a = ExpandableAllocator::new();
        for i in 0..10 {
            a.malloc(&mut d, &req(i, 2 << 20)).unwrap();
        }
        let reserved_full = a.stats().reserved;
        for i in 0..10 {
            a.free(&mut d, TensorId(i)).unwrap();
        }
        // A 16 MiB request reuses the coalesced virtual space.
        a.malloc(&mut d, &req(100, 16 << 20)).unwrap();
        assert!(
            a.stats().reserved <= reserved_full + (4 << 20),
            "reserved {} should not balloon past {}",
            a.stats().reserved,
            reserved_full
        );
    }

    #[test]
    fn trim_releases_physical_pages() {
        let mut d = dev(1 << 30);
        let mut a = ExpandableAllocator::with_trim_threshold(16 << 20);
        a.malloc(&mut d, &req(0, 64 << 20)).unwrap();
        let high = a.stats().reserved;
        a.free(&mut d, TensorId(0)).unwrap();
        assert!(
            a.stats().reserved < high,
            "trim shrinks reserved: {} -> {}",
            high,
            a.stats().reserved
        );
        assert!(d.stats().vmm.unmaps > 0);
    }

    #[test]
    fn below_threshold_frees_keep_pages_cached() {
        let mut d = dev(1 << 30);
        let mut a = ExpandableAllocator::with_trim_threshold(64 << 20);
        a.malloc(&mut d, &req(0, 8 << 20)).unwrap();
        let unmaps_before = d.stats().vmm.unmaps;
        a.free(&mut d, TensorId(0)).unwrap();
        assert_eq!(
            d.stats().vmm.unmaps,
            unmaps_before,
            "no trim below threshold"
        );
        // Reuse takes no new mapping.
        let maps_before = d.stats().vmm.maps;
        a.malloc(&mut d, &req(1, 8 << 20)).unwrap();
        assert_eq!(d.stats().vmm.maps, maps_before);
    }

    #[test]
    fn emergency_trim_avoids_oom() {
        let mut d = dev(96 << 20);
        let mut a = ExpandableAllocator::with_trim_threshold(u64::MAX); // never trim on free
        a.malloc(&mut d, &req(0, 60 << 20)).unwrap();
        a.free(&mut d, TensorId(0)).unwrap();
        // 60 MiB still mapped; a 70 MiB request must trim to fit the budget.
        a.malloc(&mut d, &req(1, 70 << 20)).unwrap();
        assert_eq!(a.stats().allocated, 70 << 20);
    }

    #[test]
    fn hard_oom_is_reported() {
        let mut d = dev(32 << 20);
        let mut a = ExpandableAllocator::new();
        let e = a.malloc(&mut d, &req(0, 64 << 20)).unwrap_err();
        assert!(e.is_oom());
    }

    #[test]
    fn vmm_less_platform_rejected() {
        let mut d = Device::with_latency(DeviceSpec::mi210_64g(), LatencyModel::zero());
        let mut a = ExpandableAllocator::new();
        assert!(matches!(
            a.malloc(&mut d, &req(0, 1 << 20)),
            Err(AllocError::Internal(_))
        ));
    }

    #[test]
    fn small_and_large_pools_are_separate_arenas() {
        let mut d = dev(1 << 30);
        let mut a = ExpandableAllocator::new();
        let s = a.malloc(&mut d, &req(0, 1000)).unwrap();
        let l = a.malloc(&mut d, &req(1, 4 << 20)).unwrap();
        // Arena VA reservations are far apart.
        assert!(l.addr.abs_diff(s.addr) > (1 << 30));
    }
}
