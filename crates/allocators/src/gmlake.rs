//! GMLake: GPU memory defragmentation through virtual-memory stitching
//! (ASPLOS '24), as used as a baseline in the STAlloc paper.
//!
//! GMLake extends the PyTorch 2.0 caching allocator: when a large request
//! misses the cache, instead of reserving a fresh segment it *stitches*
//! several non-contiguous free blocks into one contiguous virtual span using
//! the CUDA VMM API. Only free blocks of at least `fragLimit` (default
//! 512 MiB) participate. Stitching avoids reserve growth, but every stitch
//! costs one VA reservation plus one map per component — and every free of a
//! stitched tensor costs one unmap per component. Under MoE's dynamic sizes
//! with a small `fragLimit`, this traffic explodes (the paper measures up to
//! 1500 VMM ops per iteration), reproducing GMLake's 56 % slowdown at
//! `fragLimit = 64 MiB` (§9.2).

use std::collections::HashMap;

use gpu_sim::Device;
use trace_gen::TensorId;

use crate::caching::{round_size, CachingAllocator, CachingConfig, K_ROUND_LARGE, K_SMALL_SIZE};
use crate::{AllocError, AllocRequest, Allocation, AllocatorStats, GpuAllocator};

/// Virtual addresses of stitched spans live here, away from both driver
/// allocations (low) and VMM arena reservations (`1 << 46`).
const STITCH_VA_BASE: u64 = 1 << 44;

/// GMLake tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmLakeConfig {
    /// Minimum size of free blocks eligible for stitching, and of requests
    /// considered for stitching (the paper's `fragLimit`).
    pub frag_limit: u64,
    /// Base caching-allocator configuration (PyTorch 2.0 in the paper).
    pub base: CachingConfig,
}

impl Default for GmLakeConfig {
    fn default() -> Self {
        Self {
            frag_limit: 512 << 20,
            base: CachingConfig::torch_2_0(),
        }
    }
}

impl GmLakeConfig {
    /// The paper's MoE-tuned variant (`fragLimit = 64 MiB`).
    pub fn with_frag_limit(frag_limit: u64) -> Self {
        Self {
            frag_limit,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone)]
struct StitchedAlloc {
    /// Component block base addresses inside caching segments.
    components: Vec<u64>,
    granted: u64,
}

/// The GMLake allocator.
#[derive(Debug)]
pub struct GmLakeAllocator {
    config: GmLakeConfig,
    base: CachingAllocator,
    stitched: HashMap<TensorId, StitchedAlloc>,
    /// Plain allocations: tensor -> (addr, granted, small).
    plain: HashMap<TensorId, (u64, u64, bool)>,
    va_cursor: u64,
    stats: AllocatorStats,
}

impl GmLakeAllocator {
    /// Creates a GMLake allocator with the given configuration.
    pub fn new(config: GmLakeConfig) -> Self {
        Self {
            config,
            base: CachingAllocator::new(config.base),
            stitched: HashMap::new(),
            plain: HashMap::new(),
            va_cursor: STITCH_VA_BASE,
            stats: AllocatorStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GmLakeConfig {
        &self.config
    }

    /// Number of currently live stitched allocations.
    pub fn stitched_count(&self) -> usize {
        self.stitched.len()
    }

    /// Attempts to stitch free blocks (each ≥ `component_min`) into a span
    /// of `rounded` bytes.
    fn try_stitch(
        &mut self,
        dev: &mut Device,
        rounded: u64,
        component_min: u64,
    ) -> Option<Allocation> {
        let mut candidates: Vec<(u64, u64)> = self
            .base
            .large_free_blocks()
            .into_iter()
            .filter(|&(_, size)| size >= component_min)
            .collect();
        // Largest blocks first minimizes the component count.
        candidates.sort_unstable_by_key(|&(_, size)| std::cmp::Reverse(size));
        let available: u64 = candidates.iter().map(|&(_, s)| s).sum();
        if available < rounded {
            return None;
        }
        let mut need = rounded;
        let mut components = Vec::new();
        let mut granted = 0;
        for (addr, size) in candidates {
            if need == 0 {
                break;
            }
            // Map at VMM granularity: the consumed piece is 2 MiB-rounded.
            let want = gpu_sim::align_up(need.min(size), K_ROUND_LARGE).min(size);
            let got = self.base.alloc_block_at(addr, want);
            components.push(addr);
            granted += got;
            need = need.saturating_sub(got);
        }
        debug_assert_eq!(need, 0, "sum checked above");
        // One VA reservation + one map per component.
        dev.vmm_charge_remap(components.len() as u64, 0, 1);
        let va = self.va_cursor;
        self.va_cursor += granted + K_ROUND_LARGE;
        self.stats.slow_path_events += 1;
        let n = components.len() as u64;
        let _ = n;
        self.stitched.insert(
            TensorId(u64::MAX), // placeholder, replaced by caller
            StitchedAlloc {
                components,
                granted,
            },
        );
        Some(Allocation { addr: va, granted })
    }

    fn finish_stitch(&mut self, tensor: TensorId) {
        if let Some(s) = self.stitched.remove(&TensorId(u64::MAX)) {
            self.stitched.insert(tensor, s);
        }
    }

    fn sync_reserved(&mut self) {
        self.stats.set_reserved(self.base.stats().reserved);
    }
}

impl GpuAllocator for GmLakeAllocator {
    fn name(&self) -> String {
        "GMLake".into()
    }

    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError> {
        if !dev.supports_vmm() {
            return Err(AllocError::Internal("GMLake requires VMM support".into()));
        }
        let rounded = round_size(req.size);
        let small = rounded <= K_SMALL_SIZE;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);

        // 1. Cache hit.
        if let Some((addr, granted)) = self.base.try_cached(rounded, small) {
            self.plain.insert(req.tensor, (addr, granted, small));
            self.stats.on_alloc(granted);
            self.sync_reserved();
            return Ok(Allocation { addr, granted });
        }
        // 2. Stitch large requests from fragLimit-sized free blocks.
        if !small && rounded >= self.config.frag_limit {
            if let Some(alloc) = self.try_stitch(dev, rounded, self.config.frag_limit) {
                self.finish_stitch(req.tensor);
                self.stats.on_alloc(alloc.granted);
                self.sync_reserved();
                return Ok(alloc);
            }
        }
        // 3. New segment; on OOM, last-ditch stitch with a relaxed
        //    component bound before surfacing the error.
        match self.base.alloc_in_new_segment(dev, rounded, small) {
            Ok((addr, granted)) => {
                self.plain.insert(req.tensor, (addr, granted, small));
                self.stats.on_alloc(granted);
                self.sync_reserved();
                Ok(Allocation { addr, granted })
            }
            Err(e) if e.is_oom() && !small => {
                if let Some(alloc) = self.try_stitch(dev, rounded, crate::caching::K_LARGE_BUFFER) {
                    self.finish_stitch(req.tensor);
                    self.stats.on_alloc(alloc.granted);
                    self.sync_reserved();
                    Ok(alloc)
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError> {
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        if let Some(s) = self.stitched.remove(&tensor) {
            dev.vmm_charge_remap(0, s.components.len() as u64, 0);
            for addr in s.components {
                self.base.free_block_at(addr, false);
            }
            self.stats.on_free(s.granted);
            self.sync_reserved();
            return Ok(s.granted);
        }
        let (addr, granted, small) = self
            .plain
            .remove(&tensor)
            .ok_or(AllocError::UnknownTensor(tensor))?;
        self.base.free_block_at(addr, small);
        self.stats.on_free(granted);
        self.sync_reserved();
        Ok(granted)
    }

    fn stats(&self) -> AllocatorStats {
        let mut s = self.stats;
        s.slow_path_events += self.base.stats().slow_path_events;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, LatencyModel};

    fn dev(cap: u64) -> Device {
        Device::with_latency(DeviceSpec::test_device(cap), LatencyModel::zero())
    }

    fn req(id: u64, size: u64) -> AllocRequest {
        AllocRequest {
            tensor: TensorId(id),
            size,
            dynamic: false,
        }
    }

    /// Builds the classic stitch scenario: two large free blocks separated
    /// by a live tensor, then one request larger than either block.
    fn fragmented_setup(frag_limit: u64) -> (Device, GmLakeAllocator) {
        let mut d = dev(2 << 30);
        let mut a = GmLakeAllocator::new(GmLakeConfig::with_frag_limit(frag_limit));
        // Three 256 MiB tensors in three exact-size segments.
        for i in 0..3 {
            a.malloc(&mut d, &req(i, 256 << 20)).unwrap();
        }
        // Free the outer two: 512 MiB free, split across two segments.
        a.free(&mut d, TensorId(0)).unwrap();
        a.free(&mut d, TensorId(2)).unwrap();
        (d, a)
    }

    #[test]
    fn stitching_avoids_new_segments() {
        let (mut d, mut a) = fragmented_setup(64 << 20);
        let reserved_before = a.stats().reserved;
        // 500 MiB fits no single free block; stitching serves it in place.
        a.malloc(&mut d, &req(10, 500 << 20)).unwrap();
        assert_eq!(a.stitched_count(), 1);
        assert_eq!(
            a.stats().reserved,
            reserved_before,
            "no reserve growth thanks to stitching"
        );
        assert!(d.stats().vmm.maps >= 2, "one map per component");
    }

    #[test]
    fn plain_caching_path_without_fragmentation() {
        let mut d = dev(1 << 30);
        let mut a = GmLakeAllocator::new(GmLakeConfig::default());
        let x = a.malloc(&mut d, &req(0, 4 << 20)).unwrap();
        a.free(&mut d, TensorId(0)).unwrap();
        let y = a.malloc(&mut d, &req(1, 4 << 20)).unwrap();
        assert_eq!(x.addr, y.addr, "cache reuse identical to PyTorch");
        assert_eq!(a.stitched_count(), 0);
    }

    #[test]
    fn default_frag_limit_skips_small_fragments() {
        // With the stock 512 MiB fragLimit, 256 MiB blocks are not eligible:
        // the request falls through to a new segment.
        let (mut d, mut a) = fragmented_setup(512 << 20);
        let reserved_before = a.stats().reserved;
        a.malloc(&mut d, &req(10, 500 << 20)).unwrap();
        assert_eq!(a.stitched_count(), 0);
        assert!(a.stats().reserved > reserved_before);
    }

    #[test]
    fn stitched_free_returns_components_to_cache() {
        let (mut d, mut a) = fragmented_setup(64 << 20);
        a.malloc(&mut d, &req(10, 500 << 20)).unwrap();
        let unmaps_before = d.stats().vmm.unmaps;
        a.free(&mut d, TensorId(10)).unwrap();
        assert!(d.stats().vmm.unmaps > unmaps_before);
        assert_eq!(a.stitched_count(), 0);
        // Components are reusable: the same request stitches again.
        a.malloc(&mut d, &req(11, 500 << 20)).unwrap();
        assert_eq!(a.stitched_count(), 1);
    }

    #[test]
    fn oom_last_resort_stitch() {
        // Two 256 MiB segments, each pinned by a live 200 MiB tensor with a
        // 56 MiB hole. A 100 MiB request exceeds the device's 88 MiB of
        // unreserved memory, no segment is releasable (both pinned), but the
        // two holes — below fragLimit — are stitchable as a last resort.
        let mut d = dev(600 << 20);
        let mut a = GmLakeAllocator::new(GmLakeConfig::default());
        for i in 0..2 {
            a.malloc(&mut d, &req(i, 256 << 20)).unwrap();
        }
        for i in 0..2 {
            a.free(&mut d, TensorId(i)).unwrap();
        }
        for i in 0..2 {
            a.malloc(&mut d, &req(10 + i, 200 << 20)).unwrap();
        }
        assert_eq!(a.stats().reserved, 512 << 20);
        let r = a.malloc(&mut d, &req(20, 100 << 20));
        assert!(r.is_ok(), "last-resort stitch avoids OOM: {r:?}");
        assert_eq!(a.stitched_count(), 1);
    }

    #[test]
    fn vmm_less_platform_rejected() {
        let mut d = Device::with_latency(DeviceSpec::mi210_64g(), LatencyModel::zero());
        let mut a = GmLakeAllocator::new(GmLakeConfig::default());
        assert!(matches!(
            a.malloc(&mut d, &req(0, 1 << 20)),
            Err(AllocError::Internal(_))
        ));
    }
}
