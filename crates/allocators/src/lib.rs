//! Framework-level GPU memory allocators.
//!
//! This crate implements the baselines the STAlloc paper compares against,
//! all against the simulated device in `gpu-sim`:
//!
//! * [`NativeAllocator`] — one `cudaMalloc`/`cudaFree` per request; the
//!   allocator STAlloc's profiler uses (fragmentation-free reference).
//! * [`CachingAllocator`] — a faithful re-implementation of PyTorch's CUDA
//!   caching allocator (512 B rounding, small/large pools, 2/20 MiB
//!   segments, best-fit with split and coalesce, cache flush + retry on
//!   OOM), with PyTorch 2.0 / 2.3 presets.
//! * [`ExpandableAllocator`] — PyTorch `expandable_segments:True`:
//!   VMM-backed growable arenas that avoid segment-boundary fragmentation at
//!   the cost of map/unmap driver traffic.
//! * [`GmLakeAllocator`] — GMLake: the caching allocator extended with
//!   virtual-memory stitching of large free blocks (`fragLimit` threshold).
//!
//! All allocators implement [`GpuAllocator`], the interface the replay
//! harness and STAlloc's runtime drive.

pub mod blockpool;
pub mod caching;
pub mod expandable;
pub mod gmlake;
pub mod native;

use gpu_sim::{Device, DeviceError};
use trace_gen::{PhaseId, PhaseInfo, TensorId};

pub use caching::{CachingAllocator, CachingConfig, TorchVersion};
pub use expandable::ExpandableAllocator;
pub use gmlake::{GmLakeAllocator, GmLakeConfig};
pub use native::NativeAllocator;

/// A granted allocation: a device-unique address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Base address (device-unique across all allocators and pools).
    pub addr: u64,
    /// Bytes actually reserved for this tensor (>= requested size).
    pub granted: u64,
}

/// Errors surfaced by framework allocators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The device ran out of memory even after cache flushing — the
    /// training-visible OOM.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u64,
        /// Bytes reserved by this allocator at failure time.
        reserved: u64,
        /// Bytes free on the device at failure time.
        device_free: u64,
    },
    /// The tensor id passed to `free` is unknown.
    UnknownTensor(TensorId),
    /// Internal invariant violation (a bug — never expected).
    Internal(String),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                reserved,
                device_free,
            } => write!(
                f,
                "allocator OOM: requested {requested} B (reserved {reserved} B, \
                 device free {device_free} B)"
            ),
            AllocError::UnknownTensor(t) => write!(f, "unknown tensor {t:?}"),
            AllocError::Internal(s) => write!(f, "allocator bug: {s}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl AllocError {
    /// Builds the OOM variant from a device error and allocator state.
    pub fn from_device(e: DeviceError, requested: u64, reserved: u64) -> Self {
        match e {
            DeviceError::OutOfMemory { free, .. } => AllocError::OutOfMemory {
                requested,
                reserved,
                device_free: free,
            },
            other => AllocError::Internal(other.to_string()),
        }
    }

    /// Returns `true` for the OOM variant.
    pub fn is_oom(&self) -> bool {
        matches!(self, AllocError::OutOfMemory { .. })
    }
}

/// One allocation request as the allocator sees it at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRequest {
    /// Tensor identity (used as the free key).
    pub tensor: TensorId,
    /// Requested bytes (exact, pre-rounding).
    pub size: u64,
    /// Whether the request comes from a dynamic (MoE expert) layer — known
    /// at runtime from the module hooks.
    pub dynamic: bool,
}

/// Byte accounting common to all allocators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// Bytes currently reserved from the device (segments, pools, mapped
    /// ranges).
    pub reserved: u64,
    /// High-water mark of `reserved` — the paper's `M_r`.
    pub peak_reserved: u64,
    /// Bytes currently granted to live tensors (after rounding).
    pub allocated: u64,
    /// High-water mark of `allocated`.
    pub peak_allocated: u64,
    /// Requests that took a slow path (new segment, stitch, fallback).
    pub slow_path_events: u64,
}

impl AllocatorStats {
    /// Records a grant of `granted` bytes.
    pub fn on_alloc(&mut self, granted: u64) {
        self.allocated += granted;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
    }

    /// Records the release of `granted` bytes.
    pub fn on_free(&mut self, granted: u64) {
        self.allocated -= granted;
    }

    /// Updates the reserved byte count, tracking the peak.
    pub fn set_reserved(&mut self, reserved: u64) {
        self.reserved = reserved;
        self.peak_reserved = self.peak_reserved.max(reserved);
    }
}

/// The interface every framework allocator implements.
///
/// The replay harness calls `malloc`/`free` for each trace event and the
/// notification hooks at phase/module boundaries (the same information the
/// real STAlloc obtains from PyTorch hooks; baselines ignore them).
pub trait GpuAllocator {
    /// Human-readable allocator name (used in experiment tables).
    fn name(&self) -> String;

    /// Serves an allocation request.
    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError>;

    /// Frees a previously allocated tensor, returning the granted size.
    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError>;

    /// Current byte accounting.
    fn stats(&self) -> AllocatorStats;

    /// Notification: a new training iteration begins.
    fn iteration_begin(&mut self, _dev: &mut Device, _iter: u32) {}

    /// Notification: a new computation phase begins.
    fn phase_begin(&mut self, _dev: &mut Device, _phase: PhaseId, _info: &PhaseInfo) {}

    /// Notification: execution enters a module.
    fn module_enter(&mut self, _dev: &mut Device, _module: trace_gen::ModuleId) {}

    /// Notification: execution leaves a module.
    fn module_exit(&mut self, _dev: &mut Device, _module: trace_gen::ModuleId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_error_display_and_oom() {
        let e = AllocError::OutOfMemory {
            requested: 100,
            reserved: 200,
            device_free: 50,
        };
        assert!(e.is_oom());
        assert!(e.to_string().contains("100"));
        assert!(!AllocError::UnknownTensor(TensorId(1)).is_oom());
    }

    #[test]
    fn stats_track_peaks() {
        let mut s = AllocatorStats::default();
        s.on_alloc(100);
        s.on_alloc(50);
        s.on_free(100);
        assert_eq!(s.allocated, 50);
        assert_eq!(s.peak_allocated, 150);
        s.set_reserved(1000);
        s.set_reserved(400);
        assert_eq!(s.reserved, 400);
        assert_eq!(s.peak_reserved, 1000);
    }
}
