//! The native allocator: one driver call per request.
//!
//! This is what STAlloc's Allocation Profiler uses (§8): memory is allocated
//! "precisely as required, thereby almost entirely obviating memory
//! fragmentation". On the simulator (paged physical memory) it is exactly
//! fragmentation-free: reserved == allocated at all times. It is slow — every
//! request pays full `cudaMalloc`/`cudaFree` latency — which reproduces the
//! paper's observation that profiling runs at 10–30 % of cached-allocator
//! speed (Table 2).

use std::collections::HashMap;

use gpu_sim::{Device, DevicePtr};
use trace_gen::TensorId;

use crate::{AllocError, AllocRequest, Allocation, AllocatorStats, GpuAllocator};

/// Pass-through allocator over `cudaMalloc`/`cudaFree`.
#[derive(Debug, Default)]
pub struct NativeAllocator {
    live: HashMap<TensorId, (DevicePtr, u64)>,
    stats: AllocatorStats,
}

impl NativeAllocator {
    /// Creates an empty native allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GpuAllocator for NativeAllocator {
    fn name(&self) -> String {
        "Native".into()
    }

    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError> {
        let ptr = dev
            .cuda_malloc(req.size)
            .map_err(|e| AllocError::from_device(e, req.size, self.stats.reserved))?;
        let granted = dev.allocation_len(ptr).expect("just allocated");
        self.live.insert(req.tensor, (ptr, granted));
        self.stats.on_alloc(granted);
        self.stats.set_reserved(self.stats.allocated);
        Ok(Allocation {
            addr: ptr.addr(),
            granted,
        })
    }

    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError> {
        let (ptr, granted) = self
            .live
            .remove(&tensor)
            .ok_or(AllocError::UnknownTensor(tensor))?;
        dev.cuda_free(ptr)
            .map_err(|e| AllocError::Internal(e.to_string()))?;
        self.stats.on_free(granted);
        self.stats.set_reserved(self.stats.allocated);
        Ok(granted)
    }

    fn stats(&self) -> AllocatorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, LatencyModel};

    fn dev() -> Device {
        Device::with_latency(DeviceSpec::test_device(64 << 20), LatencyModel::zero())
    }

    fn req(id: u64, size: u64) -> AllocRequest {
        AllocRequest {
            tensor: TensorId(id),
            size,
            dynamic: false,
        }
    }

    #[test]
    fn reserved_tracks_allocated_exactly() {
        let mut d = dev();
        let mut a = NativeAllocator::new();
        a.malloc(&mut d, &req(0, 1 << 20)).unwrap();
        a.malloc(&mut d, &req(1, 2 << 20)).unwrap();
        let s = a.stats();
        assert_eq!(s.reserved, s.allocated);
        a.free(&mut d, TensorId(0)).unwrap();
        assert_eq!(a.stats().reserved, a.stats().allocated);
        assert_eq!(a.stats().peak_reserved, 3 << 20);
    }

    #[test]
    fn oom_propagates() {
        let mut d = dev();
        let mut a = NativeAllocator::new();
        let e = a.malloc(&mut d, &req(0, 1 << 30)).unwrap_err();
        assert!(e.is_oom());
    }

    #[test]
    fn unknown_free_is_an_error() {
        let mut d = dev();
        let mut a = NativeAllocator::new();
        assert_eq!(
            a.free(&mut d, TensorId(9)),
            Err(AllocError::UnknownTensor(TensorId(9)))
        );
    }
}
