//! Criterion bench: PyTorch caching-allocator clone throughput
//! (cache-hit fast path and the fragmentation-inducing churn pattern).

use allocators::{AllocRequest, CachingAllocator, CachingConfig, GpuAllocator};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Device, DeviceSpec, LatencyModel};
use trace_gen::TensorId;

fn bench_cache_hit(c: &mut Criterion) {
    c.bench_function("caching_hit_malloc_free", |b| {
        let mut dev = Device::with_latency(DeviceSpec::test_device(8 << 30), LatencyModel::zero());
        let mut alloc = CachingAllocator::new(CachingConfig::torch_2_3());
        // Warm the cache.
        let warm = AllocRequest {
            tensor: TensorId(0),
            size: 4 << 20,
            dynamic: false,
        };
        alloc.malloc(&mut dev, &warm).unwrap();
        alloc.free(&mut dev, TensorId(0)).unwrap();
        let mut id = 1u64;
        b.iter(|| {
            id += 1;
            let t = TensorId(id);
            alloc
                .malloc(
                    &mut dev,
                    &AllocRequest {
                        tensor: t,
                        size: 4 << 20,
                        dynamic: false,
                    },
                )
                .unwrap();
            alloc.free(&mut dev, t).unwrap();
        })
    });
}

fn bench_churn(c: &mut Criterion) {
    // Interleaved sizes exercising split/coalesce on every operation.
    let sizes = [2 << 20, 7 << 20, 3 << 20, 12 << 20, 5 << 20];
    c.bench_function("caching_interleaved_churn", |b| {
        let mut dev = Device::with_latency(DeviceSpec::test_device(16 << 30), LatencyModel::zero());
        let mut alloc = CachingAllocator::new(CachingConfig::torch_2_3());
        let mut id = 0u64;
        b.iter(|| {
            let base = id;
            for (k, &s) in sizes.iter().enumerate() {
                alloc
                    .malloc(
                        &mut dev,
                        &AllocRequest {
                            tensor: TensorId(base + k as u64),
                            size: s,
                            dynamic: false,
                        },
                    )
                    .unwrap();
            }
            // Free in a different order to force coalescing work.
            for k in [1usize, 3, 0, 4, 2] {
                alloc.free(&mut dev, TensorId(base + k as u64)).unwrap();
            }
            id += sizes.len() as u64;
        })
    });
}

criterion_group!(benches, bench_cache_hit, bench_churn);
criterion_main!(benches);
