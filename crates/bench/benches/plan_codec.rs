//! Criterion bench: binary codecs (plan `STPL`, profile `PROF`) vs
//! JSON, and plan-cache hit cost.
//!
//! Prints the artifact sizes first (the codecs' reason to exist), then
//! times encode/decode against the serde paths, and finally measures a
//! `PlanStore` cache hit against cold synthesis — the paper's
//! amortize-the-planning story in one table. The profile group also
//! times `fingerprint_job_body` over raw `PROF` bytes against the
//! decoded-profile `fingerprint_job`, the server's cache-hit fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use stalloc_core::{
    apply_delta, diff_profiles, fingerprint_job, fingerprint_job_body, profile_trace, synthesize,
    Plan, SynthConfig,
};
use stalloc_solver::patch_plan;
use stalloc_store::{
    decode_plan, decode_profile, decode_profile_delta, encode_plan, encode_profile,
    encode_profile_delta, profile_body, synthesize_cached, PlanStore,
};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn gpt2_profile() -> stalloc_core::ProfiledRequests {
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1),
        OptimConfig::r(),
    )
    .with_mbs(2)
    .with_seq(512)
    .with_microbatches(8)
    .with_iterations(1);
    let trace = job.build_trace().unwrap();
    profile_trace(&trace, 1).unwrap()
}

fn bench_codec_vs_json(c: &mut Criterion) {
    let profile = gpt2_profile();
    let plan = synthesize(&profile, &SynthConfig::default());
    let bytes = encode_plan(&plan);
    let json = plan.to_json();
    println!(
        "plan artifact sizes (GPT-2 345M): binary {} B, json {} B ({:.1}% of json)",
        bytes.len(),
        json.len(),
        100.0 * bytes.len() as f64 / json.len() as f64
    );

    let mut group = c.benchmark_group("plan_codec");
    group.sample_size(20);
    group.bench_function("encode_bin", |b| b.iter(|| encode_plan(&plan)));
    group.bench_function("decode_bin", |b| b.iter(|| decode_plan(&bytes).unwrap()));
    group.bench_function("encode_json", |b| b.iter(|| plan.to_json()));
    group.bench_function("decode_json", |b| {
        b.iter(|| Plan::from_json(&json).unwrap())
    });
    group.finish();
}

fn bench_profile_codec_vs_json(c: &mut Criterion) {
    let profile = gpt2_profile();
    let bytes = encode_profile(&profile);
    let json = serde_json::to_string(&profile).unwrap();
    println!(
        "profile payload sizes (GPT-2 345M): binary {} B, json {} B ({:.1}% of json)",
        bytes.len(),
        json.len(),
        100.0 * bytes.len() as f64 / json.len() as f64
    );

    let config = SynthConfig::default();
    let mut group = c.benchmark_group("profile_codec");
    group.sample_size(20);
    group.bench_function("encode_bin", |b| b.iter(|| encode_profile(&profile)));
    group.bench_function("decode_bin", |b| b.iter(|| decode_profile(&bytes).unwrap()));
    group.bench_function("encode_json", |b| {
        b.iter(|| serde_json::to_string(&profile).unwrap())
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| serde_json::from_str::<stalloc_core::ProfiledRequests>(&json).unwrap())
    });
    // The server's binary-request fast path vs the decoded-profile walk.
    group.bench_function("fingerprint_from_bytes", |b| {
        b.iter(|| fingerprint_job_body(profile_body(&bytes).unwrap(), &config))
    });
    group.bench_function("fingerprint_from_profile", |b| {
        b.iter(|| fingerprint_job(&profile, &config))
    });
    group.finish();
}

/// The incremental-re-planning path end to end: diff two near-identical
/// profiles, move the edit script through the `PROF-DELTA` codec, apply
/// it, and patch the base plan — each step timed against the cold
/// synthesis it replaces (`plan_cache/synthesize_cold` below).
fn bench_profile_delta(c: &mut Criterion) {
    let base = gpt2_profile();
    // A Chronos-style neighbour: a handful of resized activations plus
    // one new scratch tensor — the rest of the population is reused.
    let mut next = base.clone();
    for r in next.statics.iter_mut().skip(base.init_count).take(4) {
        r.size += 4096;
    }
    next.statics.push(stalloc_core::RequestEvent {
        size: 1 << 20,
        ts: 5,
        te: 30,
        ps: 0,
        pe: 0,
        dynamic: false,
        ls: None,
        le: None,
    });
    let delta = diff_profiles(&base, &next);
    let bytes = encode_profile_delta(&delta);
    let full = encode_profile(&next);
    println!(
        "delta payload sizes (GPT-2 345M, 5-request edit): PROF-DELTA {} B, full PROF {} B ({:.1}%)",
        bytes.len(),
        full.len(),
        100.0 * bytes.len() as f64 / full.len() as f64
    );
    let base_plan = synthesize(&base, &SynthConfig::default());

    let mut group = c.benchmark_group("profile_delta");
    group.sample_size(20);
    group.bench_function("diff", |b| b.iter(|| diff_profiles(&base, &next)));
    group.bench_function("encode", |b| b.iter(|| encode_profile_delta(&delta)));
    group.bench_function("decode", |b| {
        b.iter(|| decode_profile_delta(&bytes).unwrap())
    });
    group.bench_function("apply", |b| b.iter(|| apply_delta(&base, &delta).unwrap()));
    group.bench_function("patch_plan", |b| {
        b.iter(|| patch_plan(&base, &base_plan, &next).unwrap())
    });
    group.finish();
}

fn bench_cache_vs_synthesis(c: &mut Criterion) {
    let profile = gpt2_profile();
    let config = SynthConfig::default();
    let dir = std::env::temp_dir().join(format!("stalloc-bench-cache-{}", std::process::id()));
    let store = PlanStore::open(&dir).unwrap();
    // Warm the store so the cached path measures a pure hit.
    synthesize_cached(
        &profile,
        &config,
        &store,
        stalloc_solver::synthesize_strategy,
    )
    .unwrap();

    let mut group = c.benchmark_group("plan_cache");
    group.sample_size(10);
    group.bench_function("fingerprint", |b| {
        b.iter(|| fingerprint_job(&profile, &config))
    });
    group.bench_function("synthesize_cold", |b| {
        b.iter(|| synthesize(&profile, &config))
    });
    group.bench_function("synthesize_cached_hit", |b| {
        b.iter(|| {
            synthesize_cached(
                &profile,
                &config,
                &store,
                stalloc_solver::synthesize_strategy,
            )
            .unwrap()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_codec_vs_json,
    bench_profile_codec_vs_json,
    bench_profile_delta,
    bench_cache_vs_synthesis
);
criterion_main!(benches);
