//! Criterion bench: plan-synthesis cost vs request count (paper Table 2's
//! `T_plan` column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stalloc_core::{profile_trace, synthesize, SynthConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn bench_plan_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_synthesis");
    group.sample_size(10);
    for (label, mbs, m) in [("small", 1u32, 4u32), ("medium", 4, 8), ("large", 8, 16)] {
        let job = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 4, 1),
            OptimConfig::r(),
        )
        .with_mbs(mbs)
        .with_seq(512)
        .with_microbatches(m)
        .with_iterations(1);
        let trace = job.build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let n = profile.statics.len();
        group.bench_with_input(BenchmarkId::new(label, n), &profile, |b, p| {
            b.iter(|| synthesize(p, &SynthConfig::default()))
        });
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1),
        OptimConfig::r(),
    )
    .with_mbs(4)
    .with_seq(512)
    .with_microbatches(8)
    .with_iterations(1);
    let trace = job.build_trace().unwrap();
    c.bench_function("profile_trace", |b| {
        b.iter(|| profile_trace(&trace, 1).unwrap())
    });
}

criterion_group!(benches, bench_plan_synthesis, bench_profiling);
criterion_main!(benches);
