//! Criterion bench: end-to-end replay of one training trace per allocator —
//! the relative cost of each allocator's bookkeeping at trace scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::DeviceSpec;
use harness::{run, AllocatorKind};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn bench_replay(c: &mut Criterion) {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1),
        OptimConfig::r(),
    )
    .with_mbs(2)
    .with_seq(512)
    .with_microbatches(8)
    .with_iterations(2)
    .build_trace()
    .unwrap();
    let spec = DeviceSpec::test_device(32 << 30);

    let mut group = c.benchmark_group("replay_e2e");
    group.sample_size(10);
    for kind in [
        AllocatorKind::Native,
        AllocatorKind::Torch23,
        AllocatorKind::TorchEs,
        AllocatorKind::GmLake(64 << 20),
        AllocatorKind::Stalloc,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let r = run(&trace, &spec, k);
                assert!(!r.report.oom);
                r.report.peak_reserved
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
