//! Criterion bench: STAlloc runtime allocation fast path — the paper's
//! claim that planned static requests cost O(1) at runtime (§7.2).

use allocators::{AllocRequest, GpuAllocator};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Device, DeviceSpec, LatencyModel};
use stalloc_core::{profile_trace, synthesize, RuntimeConfig, StallocAllocator, SynthConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TensorId, TraceEvent, TrainJob};

fn bench_runtime_iteration(c: &mut Criterion) {
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1),
        OptimConfig::r(),
    )
    .with_mbs(2)
    .with_seq(512)
    .with_microbatches(8)
    .with_iterations(2);
    let trace = job.build_trace().unwrap();
    let profile = profile_trace(&trace, 1).unwrap();
    let plan = synthesize(&profile, &SynthConfig::default());
    let n = trace.allocs_in_iteration(1) as u64;

    c.bench_function("stalloc_replay_one_iteration", |b| {
        b.iter(|| {
            let mut dev =
                Device::with_latency(DeviceSpec::test_device(32 << 30), LatencyModel::zero());
            let mut alloc = StallocAllocator::new(plan.clone(), RuntimeConfig::default());
            drive(&trace, &mut dev, &mut alloc);
            n
        })
    });
}

/// Replays the trace's events directly (no harness overhead).
fn drive(trace: &trace_gen::Trace, dev: &mut Device, alloc: &mut StallocAllocator) {
    for ev in &trace.events {
        match ev {
            TraceEvent::IterationBegin(i) => alloc.iteration_begin(dev, *i),
            TraceEvent::PhaseBegin(p) => {
                let info = trace.phases[p.0 as usize];
                alloc.phase_begin(dev, *p, &info);
            }
            TraceEvent::ModuleEnter(m) => alloc.module_enter(dev, *m),
            TraceEvent::ModuleExit(m) => alloc.module_exit(dev, *m),
            TraceEvent::Alloc {
                id, size, dynamic, ..
            } => {
                alloc
                    .malloc(
                        dev,
                        &AllocRequest {
                            tensor: *id,
                            size: *size,
                            dynamic: *dynamic,
                        },
                    )
                    .unwrap();
            }
            TraceEvent::Free { id } => {
                alloc.free(dev, *id).unwrap();
            }
            TraceEvent::IterationEnd(_) => {}
        }
    }
}

fn bench_single_static_hit(c: &mut Criterion) {
    // Micro: one planned static malloc+free pair in steady state.
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(4)
    .with_iterations(1);
    let trace = job.build_trace().unwrap();
    let profile = profile_trace(&trace, 1).unwrap();
    let plan = synthesize(&profile, &SynthConfig::default());
    let first = plan.iter_allocs.first().copied().expect("plan not empty");

    c.bench_function("stalloc_static_malloc_free", |b| {
        let mut dev = Device::with_latency(DeviceSpec::test_device(32 << 30), LatencyModel::zero());
        let mut alloc = StallocAllocator::new(plan.clone(), RuntimeConfig::default());
        let mut id = 1_000_000u64;
        b.iter(|| {
            // Fresh iteration context each pair keeps the cursor at 0.
            alloc.iteration_begin(&mut dev, 1);
            id += 1;
            let t = TensorId(id);
            alloc
                .malloc(
                    &mut dev,
                    &AllocRequest {
                        tensor: t,
                        size: first.size,
                        dynamic: false,
                    },
                )
                .unwrap();
            alloc.free(&mut dev, t).unwrap();
        })
    });
}

criterion_group!(benches, bench_runtime_iteration, bench_single_static_hit);
criterion_main!(benches);
