//! Criterion bench: plan-server request throughput.
//!
//! Spins an in-process `stalloc-served` daemon and measures batches of
//! concurrent plan requests at varying worker counts, cache hit ratios,
//! and *profile wire encodings* — `reqjson` sends the profile inline in
//! the JSON `Plan` frame (the pre-binary behaviour), `reqbin` sends a
//! `ProfileBin` header plus one raw `PROF` codec frame. At 100% hits the
//! cost is wire + LRU lookup, which is exactly where the request-side
//! serde tax shows: the binary path fingerprints the raw bytes and
//! never touches the serde value tree. Each miss adds one synthesis
//! (amortized across all clients by single-flight). The per-iteration
//! time divided by the batch size is the requests/sec figure.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, Criterion};
use stalloc_core::{profile_trace, ProfileEncoding, ProfiledRequests, SynthConfig};
use stalloc_served::{PlanClient, PlanServer, ServeConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

/// Requests per measured batch (shared by every scenario).
const BATCH: usize = 16;
/// Concurrent client connections issuing the batch.
const CLIENTS: usize = 4;

fn small_profile() -> ProfiledRequests {
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(2)
    .with_iterations(1);
    let trace = job.build_trace().unwrap();
    profile_trace(&trace, 1).unwrap()
}

/// A profile variant with a distinct fingerprint per `salt` (so misses
/// stay misses across criterion iterations).
fn salted(base: &ProfiledRequests, salt: u64) -> ProfiledRequests {
    let mut p = base.clone();
    if let Some(r) = p.statics.first_mut() {
        r.size += 512 * (salt + 1);
    }
    p
}

/// Issues `BATCH` plan requests over `CLIENTS` connections; `misses` of
/// them are fresh fingerprints (salted), the rest repeat the warm base
/// job. Returns once every response has arrived.
fn drive_batch(
    addr: std::net::SocketAddr,
    base: &Arc<ProfiledRequests>,
    misses: usize,
    salt0: u64,
    wire: ProfileEncoding,
) {
    let config = SynthConfig::default();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let base = Arc::clone(base);
            thread::spawn(move || {
                let mut client = PlanClient::connect(addr)
                    .expect("connect")
                    .with_profile_encoding(wire);
                for i in 0..BATCH / CLIENTS {
                    let global = c * (BATCH / CLIENTS) + i;
                    let profile = if global < misses {
                        salted(&base, salt0 + global as u64)
                    } else {
                        (*base).clone()
                    };
                    client.plan(&profile, &config).expect("plan");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Issues `BATCH` `PlanDelta` requests over `CLIENTS` connections, each
/// a fresh (salted) edit script against the warm base — so every one is
/// a server-side plan patch, never an LRU hit or a cold synthesis.
fn drive_delta_batch(addr: std::net::SocketAddr, base: &Arc<ProfiledRequests>, salt0: u64) {
    let config = SynthConfig::default();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let base = Arc::clone(base);
            thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                for i in 0..BATCH / CLIENTS {
                    let global = c * (BATCH / CLIENTS) + i;
                    let next = salted(&base, salt0 + global as u64);
                    let r = client
                        .plan_delta(&base, &next, &config)
                        .expect("plan_delta");
                    assert!(r.source.is_hit(), "delta fell back to synthesis");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let base = Arc::new(small_profile());

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);

    for &(wire_label, wire) in &[
        ("reqbin", ProfileEncoding::Binary),
        ("reqjson", ProfileEncoding::Json),
    ] {
        for &workers in &[1usize, 4] {
            // Fresh server per scenario so hit ratios are exact.
            for &(label, miss_per_batch) in &[("hit100", 0usize), ("hit75", BATCH / 4)] {
                let server = PlanServer::start(ServeConfig {
                    workers,
                    queue_depth: CLIENTS * 2,
                    lru_capacity: 4096,
                    ..ServeConfig::default()
                })
                .unwrap();
                let addr = server.addr();
                // Warm the base job so repeats are pure cache hits.
                drive_batch(addr, &base, 0, 0, wire);

                // Monotonic salt: every measured batch's "miss" share is
                // a genuinely new fingerprint.
                let mut salt = 1u64 << 32;
                let name = format!("{wire_label}/{label}/workers{workers}/batch{BATCH}");
                group.bench_function(name.as_str(), |b| {
                    b.iter(|| {
                        salt += BATCH as u64;
                        drive_batch(addr, &base, miss_per_batch, salt, wire);
                    })
                });
                // Server-side, tier-resolved latency for the scenario just
                // measured: the batch mean above hides the hit/miss split,
                // the per-tier histograms do not.
                for tier in &server.metrics().tiers {
                    let n = tier.hist.total();
                    let Some((p50, _, p99)) = tier.hist.percentiles() else {
                        continue;
                    };
                    println!(
                        "    {name} · tier {:<9} n {n:>6}  p50 {p50:>8} µs  p99 {p99:>8} µs",
                        tier.name
                    );
                }
                server.shutdown();
            }
        }
    }

    // The delta dimension: every request is a fresh PROF-DELTA edit
    // script against the warm base, so the whole batch lands on the
    // `patched` tier — the printed per-tier histograms are where the
    // hit < patched < miss ordering shows.
    for &workers in &[1usize, 4] {
        let server = PlanServer::start(ServeConfig {
            workers,
            queue_depth: CLIENTS * 2,
            lru_capacity: 4096,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        // Warm the base job: its plan seeds every patch, and the Plan
        // request teaches the server the base profile bytes.
        drive_batch(addr, &base, 0, 0, ProfileEncoding::Binary);

        let mut salt = 1u64 << 40;
        let name = format!("delta/patch100/workers{workers}/batch{BATCH}");
        group.bench_function(name.as_str(), |b| {
            b.iter(|| {
                salt += BATCH as u64;
                drive_delta_batch(addr, &base, salt);
            })
        });
        for tier in &server.metrics().tiers {
            let n = tier.hist.total();
            let Some((p50, _, p99)) = tier.hist.percentiles() else {
                continue;
            };
            println!(
                "    {name} · tier {:<9} n {n:>6}  p50 {p50:>8} µs  p99 {p99:>8} µs",
                tier.name
            );
        }
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
