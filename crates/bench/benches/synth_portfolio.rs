//! Criterion bench: the solver portfolio — per-strategy synthesis time
//! (each benchmark id carries the strategy's packing efficiency on the
//! workload, so time vs quality reads off one report) plus the cost of
//! the full parallel race.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stalloc_core::{profile_trace, ProfiledRequests, SynthConfig};
use stalloc_solver::{registry, Portfolio};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn vpp_profile() -> ProfiledRequests {
    // The virtual-pipeline workload is where strategies diverge the most.
    let job = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 4, 1).with_vpp(2),
        OptimConfig::r(),
    )
    .with_mbs(2)
    .with_seq(512)
    .with_microbatches(8)
    .with_iterations(1);
    let trace = job.build_trace().unwrap();
    profile_trace(&trace, 1).unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let profile = vpp_profile();
    let config = SynthConfig::default();
    let mut group = c.benchmark_group("synth_portfolio");
    group.sample_size(10);
    for s in registry() {
        let eff = s.plan(&profile, &config).stats.packing_efficiency();
        group.bench_with_input(
            BenchmarkId::new(s.name(), format!("eff={eff:.4}")),
            &profile,
            |b, p| b.iter(|| s.plan(p, &config)),
        );
    }
    let portfolio = Portfolio::standard();
    let eff = portfolio
        .run(&profile, &config)
        .winner
        .stats
        .packing_efficiency();
    group.bench_with_input(
        BenchmarkId::new("portfolio-race", format!("eff={eff:.4}")),
        &profile,
        |b, p| b.iter(|| portfolio.run(p, &config)),
    );
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
