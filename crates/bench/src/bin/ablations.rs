//! Reproduces the paper's ablations. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::ablations();
    print!("{}", t.render());
}
