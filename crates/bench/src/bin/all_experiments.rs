//! Runs every table/figure reproduction and prints EXPERIMENTS.md-ready
//! output. Expect several minutes in release mode.
fn main() {
    use harness::experiments as ex;
    let start = std::time::Instant::now();
    print!("{}", ex::fig1b().render());
    println!();
    print!("{}", ex::fig2().render());
    println!();
    print!("{}", ex::fig3().render());
    println!();
    print!("{}", ex::fig4().render());
    println!();
    for t in ex::fig8() {
        println!("{}", t.render());
    }
    for t in ex::fig9() {
        println!("{}", t.render());
    }
    print!("{}", ex::fig10().render());
    println!();
    print!("{}", ex::fig11().render());
    println!();
    print!("{}", ex::fig12().render());
    println!();
    print!("{}", ex::fig13().render());
    println!();
    print!("{}", ex::table1().render());
    println!();
    print!("{}", ex::table2().render());
    println!();
    print!("{}", ex::table3().render());
    println!();
    print!("{}", ex::ablations().render());
    println!();
    print!("{}", ex::strategy_comparison().render());
    println!();
    print!("{}", ex::delta_replan().render());
    eprintln!("\ntotal wall time: {:.1}s", start.elapsed().as_secs_f64());
}
