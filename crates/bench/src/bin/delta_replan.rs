//! Incremental re-planning lineup: serves a Chronos-style per-stage
//! profile family through a loopback plan server and prints per-tier
//! latency — the `patched` row sits between the LRU hit and the cold
//! synthesis.
fn main() {
    let t = harness::experiments::delta_replan();
    print!("{}", t.render());
}
