//! Reproduces the paper's fig10. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig10();
    print!("{}", t.render());
}
