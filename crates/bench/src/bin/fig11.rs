//! Reproduces the paper's fig11. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig11();
    print!("{}", t.render());
}
