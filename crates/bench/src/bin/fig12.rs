//! Reproduces the paper's fig12. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig12();
    print!("{}", t.render());
}
