//! Reproduces the paper's fig13. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig13();
    print!("{}", t.render());
}
