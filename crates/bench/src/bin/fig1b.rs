//! Reproduces the paper's fig1b. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig1b();
    print!("{}", t.render());
}
