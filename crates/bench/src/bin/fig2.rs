//! Reproduces the paper's fig2. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig2();
    print!("{}", t.render());
}
