//! Reproduces the paper's fig3. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig3();
    print!("{}", t.render());
}
