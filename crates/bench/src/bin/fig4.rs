//! Reproduces the paper's fig4. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::fig4();
    print!("{}", t.render());
}
