//! Reproduces the paper's fig8 (all panels). See DESIGN.md.
fn main() {
    for t in harness::experiments::fig8() {
        println!("{}", t.render());
    }
}
