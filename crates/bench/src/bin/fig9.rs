//! Reproduces the paper's fig9 (all panels). See DESIGN.md.
fn main() {
    for t in harness::experiments::fig9() {
        println!("{}", t.render());
    }
}
