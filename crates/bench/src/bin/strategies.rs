//! Strategy-portfolio comparison table: per-strategy packing efficiency,
//! synthesis time, and the portfolio winner across the model zoo.
fn main() {
    let t = harness::experiments::strategy_comparison();
    print!("{}", t.render());
}
