//! Reproduces the paper's table1. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::table1();
    print!("{}", t.render());
}
