//! Reproduces the paper's table2. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::table2();
    print!("{}", t.render());
}
