//! Reproduces the paper's table3. See DESIGN.md for the experiment index.
fn main() {
    let t = harness::experiments::table3();
    print!("{}", t.render());
}
