//! Benchmark and reproduction-binary crate.
//!
//! * `cargo bench -p bench` runs the Criterion microbenchmarks
//!   (plan synthesis, runtime allocation, caching baseline, end-to-end
//!   replay).
//! * `cargo run -p bench --release --bin <figN|tableN|all_experiments>`
//!   regenerates the corresponding paper table/figure.
