//! Simulated time and the device-operation latency model.

use serde::{Deserialize, Serialize};

/// A monotonically increasing simulated clock, in nanoseconds.
///
/// Every driver operation advances the clock according to the
/// [`LatencyModel`]; the experiment harness also advances it for simulated
/// compute. Throughput results are derived purely from this clock, which
/// makes runs deterministic and hardware-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    now_ns: u64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in microseconds (truncating).
    pub fn now_us(&self) -> u64 {
        self.now_ns / 1_000
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&mut self, us: u64) {
        self.advance_ns(us.saturating_mul(1_000));
    }
}

/// Latencies charged for simulated driver operations.
///
/// Defaults follow the measurements reported or implied by the paper:
/// `cudaMalloc`/`cudaFree` cost on the order of tens of microseconds, cache
/// hits in a host-side allocator are sub-microsecond, and CUDA VMM operations
/// (map/unmap/create/release) are heavyweight — the paper observes ~30 ms per
/// virtual-memory operation burst in the GMLake MoE study (§9.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Cost of one `cudaMalloc` call, ns.
    pub cuda_malloc_ns: u64,
    /// Cost of one `cudaFree` call, ns (synchronizes the device in reality).
    pub cuda_free_ns: u64,
    /// Cost of a host-side allocator fast path (cache hit), ns.
    pub cache_hit_ns: u64,
    /// Cost of one VMM physical-handle creation (`cuMemCreate`), ns.
    pub vmm_create_ns: u64,
    /// Cost of one VMM map (`cuMemMap` + `cuMemSetAccess`), ns.
    pub vmm_map_ns: u64,
    /// Cost of one VMM unmap (`cuMemUnmap`), ns.
    pub vmm_unmap_ns: u64,
    /// Cost of one VMM release (`cuMemRelease`), ns.
    pub vmm_release_ns: u64,
    /// Cost of reserving virtual address space (`cuMemAddressReserve`), ns.
    pub vmm_reserve_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            cuda_malloc_ns: 50_000, // 50 us
            cuda_free_ns: 80_000,   // 80 us, implies a sync
            cache_hit_ns: 600,      // 0.6 us host bookkeeping
            vmm_create_ns: 150_000, // 150 us
            vmm_map_ns: 90_000,     // 90 us (map + set-access)
            vmm_unmap_ns: 60_000,   // 60 us
            vmm_release_ns: 80_000, // 80 us
            vmm_reserve_ns: 30_000, // 30 us
        }
    }
}

impl LatencyModel {
    /// A zero-latency model, useful for tests that only check addresses.
    pub fn zero() -> Self {
        Self {
            cuda_malloc_ns: 0,
            cuda_free_ns: 0,
            cache_hit_ns: 0,
            vmm_create_ns: 0,
            vmm_map_ns: 0,
            vmm_unmap_ns: 0,
            vmm_release_ns: 0,
            vmm_reserve_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(10);
        c.advance_us(2);
        assert_eq!(c.now_ns(), 2_010);
        assert_eq!(c.now_us(), 2);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = Clock::new();
        c.advance_ns(u64::MAX);
        c.advance_ns(1);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn default_model_orders_vmm_above_malloc() {
        let m = LatencyModel::default();
        assert!(m.vmm_map_ns + m.vmm_create_ns > m.cuda_malloc_ns);
        assert!(m.cache_hit_ns < m.cuda_malloc_ns);
    }
}
