//! The simulated GPU device: capacity accounting, `cudaMalloc`/`cudaFree`,
//! the VMM API, and the simulated clock.
//!
//! # Modelling note
//!
//! Real GPU physical memory is page-based and does not fragment: `cudaMalloc`
//! fails only when the *byte count* is exhausted, and each call returns a
//! fresh virtual address. All fragmentation the STAlloc paper measures lives
//! inside the framework allocator's reserved segments (reserved-but-unused
//! bytes), not in the driver. The device therefore tracks physical usage as a
//! counter and hands out monotonically growing virtual addresses; the
//! interesting address arithmetic happens in the `allocators` and
//! `stalloc-core` crates on top.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::clock::{Clock, LatencyModel};
use crate::error::{DeviceError, DeviceResult};
use crate::phys::DevicePtr;
use crate::vmm::{PhysHandle, VirtAddr, VirtualRange, Vmm, VmmStats};
use crate::{DRIVER_ALIGNMENT, VMM_GRANULARITY};

/// Static description of a GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"NVIDIA A800-80G"`.
    pub name: String,
    /// Usable memory capacity in bytes (total minus runtime/driver overhead).
    pub capacity: u64,
    /// Peak dense compute throughput in TFLOPS (bf16), used by the
    /// throughput model in the harness.
    pub peak_tflops: f64,
    /// Allocation alignment of the driver.
    pub alignment: u64,
    /// Whether the platform exposes the VMM API (GMLake requires it; the
    /// paper notes it is unavailable on their AMD platform's stack).
    pub supports_vmm: bool,
}

impl DeviceSpec {
    /// NVIDIA A800 80 GB (the paper's single-node testbed).
    ///
    /// ~1.5 GiB is held by the CUDA context and framework runtime, leaving
    /// ~78.5 GiB usable, matching the reserved-memory headroom the paper's
    /// configurations exhibit.
    pub fn a800_80g() -> Self {
        Self {
            name: "NVIDIA A800-80G".into(),
            capacity: 78 * (1 << 30) + (1 << 29),
            peak_tflops: 312.0,
            alignment: DRIVER_ALIGNMENT,
            supports_vmm: true,
        }
    }

    /// NVIDIA H200 141 GB (the paper's scalability testbed).
    pub fn h200_141g() -> Self {
        Self {
            name: "NVIDIA H200-141G".into(),
            capacity: 139 * (1 << 30),
            peak_tflops: 989.0,
            alignment: DRIVER_ALIGNMENT,
            supports_vmm: true,
        }
    }

    /// AMD MI210 64 GB (the paper's AMD testbed; no VMM / GMLake support).
    pub fn mi210_64g() -> Self {
        Self {
            name: "AMD MI210-64G".into(),
            capacity: 63 * (1 << 30),
            peak_tflops: 181.0,
            alignment: DRIVER_ALIGNMENT,
            supports_vmm: false,
        }
    }

    /// A small synthetic device, convenient for tests.
    pub fn test_device(capacity: u64) -> Self {
        Self {
            name: "TestGPU".into(),
            capacity,
            peak_tflops: 100.0,
            alignment: DRIVER_ALIGNMENT,
            supports_vmm: true,
        }
    }
}

/// Snapshot of device-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Physical bytes currently in use (cudaMalloc + VMM handles).
    pub in_use: u64,
    /// High-water mark of `in_use`.
    pub peak_in_use: u64,
    /// Number of `cudaMalloc` calls.
    pub num_mallocs: u64,
    /// Number of `cudaFree` calls.
    pub num_frees: u64,
    /// Simulated time spent inside driver calls, nanoseconds.
    pub driver_time_ns: u64,
    /// VMM-layer statistics.
    pub vmm: VmmStats,
}

impl DeviceStats {
    /// Bytes currently free on the device.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.in_use
    }
}

/// A simulated GPU device.
///
/// Owns the physical-byte budget shared by `cudaMalloc` and the VMM API, the
/// simulated clock, and all operation counters.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    clock: Clock,
    latency: LatencyModel,
    /// Live cudaMalloc allocations: va -> size.
    live: HashMap<u64, u64>,
    va_cursor: u64,
    malloc_in_use: u64,
    peak_in_use: u64,
    num_mallocs: u64,
    num_frees: u64,
    driver_time_ns: u64,
    vmm: Vmm,
}

impl Device {
    /// Creates a device from a spec with the default latency model.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_latency(spec, LatencyModel::default())
    }

    /// Creates a device with an explicit latency model.
    pub fn with_latency(spec: DeviceSpec, latency: LatencyModel) -> Self {
        Self {
            spec,
            clock: Clock::new(),
            latency,
            live: HashMap::new(),
            va_cursor: DRIVER_ALIGNMENT, // keep null distinct
            malloc_in_use: 0,
            peak_in_use: 0,
            num_mallocs: 0,
            num_frees: 0,
            driver_time_ns: 0,
            vmm: Vmm::new(VMM_GRANULARITY),
        }
    }

    /// The device's static description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The latency model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Read access to the simulated clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Advances the simulated clock (used by the harness for compute time).
    pub fn advance_clock_ns(&mut self, ns: u64) {
        self.clock.advance_ns(ns);
    }

    /// Total physical bytes in use: cudaMalloc allocations plus VMM handles.
    pub fn in_use(&self) -> u64 {
        self.malloc_in_use + self.vmm.phys_in_use()
    }

    /// Bytes still available for allocation.
    pub fn free_bytes(&self) -> u64 {
        self.spec.capacity - self.in_use()
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            capacity: self.spec.capacity,
            in_use: self.in_use(),
            peak_in_use: self.peak_in_use,
            num_mallocs: self.num_mallocs,
            num_frees: self.num_frees,
            driver_time_ns: self.driver_time_ns,
            vmm: self.vmm.stats(),
        }
    }

    fn charge(&mut self, ns: u64) {
        self.clock.advance_ns(ns);
        self.driver_time_ns += ns;
    }

    fn check_budget(&self, size: u64) -> DeviceResult<()> {
        if self.in_use() + size > self.spec.capacity {
            Err(DeviceError::OutOfMemory {
                requested: size,
                free: self.free_bytes(),
                // Physical memory is paged: any free byte is usable, so the
                // largest "block" is simply the free byte count.
                largest_free_block: self.free_bytes(),
            })
        } else {
            Ok(())
        }
    }

    fn note_usage(&mut self) {
        self.peak_in_use = self.peak_in_use.max(self.in_use());
    }

    /// Simulated `cudaMalloc`: debits the physical budget and returns a fresh
    /// virtual address.
    pub fn cuda_malloc(&mut self, size: u64) -> DeviceResult<DevicePtr> {
        let size = crate::align_up(size.max(1), self.spec.alignment);
        self.charge(self.latency.cuda_malloc_ns);
        self.check_budget(size)?;
        let va = self.va_cursor;
        self.va_cursor += size + self.spec.alignment; // guard gap
        self.live.insert(va, size);
        self.malloc_in_use += size;
        self.num_mallocs += 1;
        self.note_usage();
        Ok(DevicePtr(va))
    }

    /// Simulated `cudaFree`.
    pub fn cuda_free(&mut self, ptr: DevicePtr) -> DeviceResult<u64> {
        self.charge(self.latency.cuda_free_ns);
        let size = self
            .live
            .remove(&ptr.0)
            .ok_or(DeviceError::InvalidPointer(ptr.0))?;
        self.malloc_in_use -= size;
        self.num_frees += 1;
        Ok(size)
    }

    /// Returns the size of a live cudaMalloc allocation.
    pub fn allocation_len(&self, ptr: DevicePtr) -> Option<u64> {
        self.live.get(&ptr.0).copied()
    }

    // ----- VMM API (thin wrappers that add budget checks + latency) -----

    /// Returns `true` if the platform supports the VMM API.
    pub fn supports_vmm(&self) -> bool {
        self.spec.supports_vmm
    }

    /// The VMM physical granularity.
    pub fn vmm_granularity(&self) -> u64 {
        self.vmm.granularity()
    }

    /// `cuMemCreate`: allocates a physical handle.
    pub fn vmm_create(&mut self, size: u64) -> DeviceResult<PhysHandle> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_create_ns);
        let rounded = self.vmm.round_to_granularity(size);
        self.check_budget(rounded)?;
        let h = self.vmm.mem_create(size);
        self.note_usage();
        Ok(h)
    }

    /// `cuMemAddressReserve`: reserves virtual address space.
    pub fn vmm_reserve(&mut self, size: u64) -> DeviceResult<VirtualRange> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_reserve_ns);
        Ok(self.vmm.address_reserve(size))
    }

    /// `cuMemAddressFree`: releases a reservation (must be unmapped).
    pub fn vmm_address_free(&mut self, range: VirtualRange) -> DeviceResult<()> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_reserve_ns);
        self.vmm.address_free(range)
    }

    /// `cuMemMap` + `cuMemSetAccess`.
    pub fn vmm_map(&mut self, va: VirtAddr, handle: PhysHandle) -> DeviceResult<()> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_map_ns);
        self.vmm.mem_map(va, handle)
    }

    /// `cuMemUnmap`.
    pub fn vmm_unmap(&mut self, va: VirtAddr) -> DeviceResult<PhysHandle> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_unmap_ns);
        self.vmm.mem_unmap(va)
    }

    /// `cuMemRelease`.
    pub fn vmm_release(&mut self, handle: PhysHandle) -> DeviceResult<u64> {
        self.require_vmm()?;
        self.charge(self.latency.vmm_release_ns);
        self.vmm.mem_release(handle)
    }

    /// Size of a live VMM handle.
    pub fn vmm_handle_size(&self, h: PhysHandle) -> Option<u64> {
        self.vmm.handle_size(h)
    }

    /// Modeling hook: charges the latency and op-counts of address-remapping
    /// operations (as performed by virtual-memory-stitching allocators such
    /// as GMLake) without moving physical bytes in the simulator.
    pub fn vmm_charge_remap(&mut self, maps: u64, unmaps: u64, reserves: u64) {
        let ns = maps * self.latency.vmm_map_ns
            + unmaps * self.latency.vmm_unmap_ns
            + reserves * self.latency.vmm_reserve_ns;
        self.charge(ns);
        self.vmm.charge_remap(maps, unmaps, reserves);
    }

    fn require_vmm(&self) -> DeviceResult<()> {
        if self.spec.supports_vmm {
            Ok(())
        } else {
            Err(DeviceError::InvalidHandle(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(cap: u64) -> Device {
        Device::with_latency(DeviceSpec::test_device(cap), LatencyModel::zero())
    }

    #[test]
    fn budget_is_shared_between_malloc_and_vmm() {
        let mut d = dev(8 << 20);
        let _p = d.cuda_malloc(4 << 20).unwrap();
        // Only 4 MiB left: a 6 MiB VMM create must fail.
        assert!(d.vmm_create(6 << 20).unwrap_err().is_oom());
        let h = d.vmm_create(4 << 20).unwrap();
        assert_eq!(d.free_bytes(), 0);
        // And now cudaMalloc fails.
        assert!(d.cuda_malloc(512).unwrap_err().is_oom());
        d.vmm_release(h).unwrap();
        assert_eq!(d.free_bytes(), 4 << 20);
    }

    #[test]
    fn capacity_oom_does_not_depend_on_order() {
        // Physical memory is paged: freeing anything makes those bytes
        // usable again regardless of allocation pattern.
        let mut d = dev(4 << 20);
        let a = d.cuda_malloc(1 << 20).unwrap();
        let _b = d.cuda_malloc(1 << 20).unwrap();
        let _c = d.cuda_malloc(1 << 20).unwrap();
        d.cuda_free(a).unwrap();
        // 2 MiB minus guard rounding is free; 1.5 MiB fits.
        assert!(d.cuda_malloc(3 << 19).is_ok());
    }

    #[test]
    fn fresh_virtual_addresses_never_alias() {
        let mut d = dev(16 << 20);
        let a = d.cuda_malloc(1 << 20).unwrap();
        d.cuda_free(a).unwrap();
        let b = d.cuda_malloc(1 << 20).unwrap();
        assert_ne!(a, b, "driver VAs are not recycled in the simulator");
    }

    #[test]
    fn latency_charged_per_operation() {
        let spec = DeviceSpec::test_device(16 << 20);
        let mut d = Device::with_latency(
            spec,
            LatencyModel {
                cuda_malloc_ns: 10,
                cuda_free_ns: 20,
                ..LatencyModel::zero()
            },
        );
        let p = d.cuda_malloc(512).unwrap();
        d.cuda_free(p).unwrap();
        assert_eq!(d.clock().now_ns(), 30);
        assert_eq!(d.stats().driver_time_ns, 30);
    }

    #[test]
    fn vmm_unavailable_on_amd_preset() {
        let mut d = Device::with_latency(DeviceSpec::mi210_64g(), LatencyModel::zero());
        assert!(!d.supports_vmm());
        assert!(d.vmm_create(1 << 20).is_err());
    }

    #[test]
    fn peak_tracks_combined_usage() {
        let mut d = dev(64 << 20);
        let p = d.cuda_malloc(8 << 20).unwrap();
        let h = d.vmm_create(8 << 20).unwrap();
        d.cuda_free(p).unwrap();
        d.vmm_release(h).unwrap();
        assert_eq!(d.stats().peak_in_use, 16 << 20);
        assert_eq!(d.in_use(), 0);
    }
}
