//! Error types for the simulated device.

use std::fmt;

/// Result alias for device operations.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// Errors returned by the simulated GPU driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device cannot satisfy the request: either total free capacity is
    /// insufficient, or (as on a real device) no contiguous free range of the
    /// requested size exists.
    OutOfMemory {
        /// Size of the failed request in bytes.
        requested: u64,
        /// Bytes currently free on the device (possibly discontiguous).
        free: u64,
        /// Largest contiguous free range at the time of the failure.
        largest_free_block: u64,
    },
    /// A pointer passed to `cuda_free` (or VMM release) was not produced by a
    /// matching allocation, or was already freed.
    InvalidPointer(u64),
    /// A virtual-memory operation referenced an unknown or mismatched handle
    /// or reservation.
    InvalidHandle(u64),
    /// A VMM mapping request overlapped an existing mapping or exceeded the
    /// reserved virtual range.
    MappingConflict {
        /// Virtual address of the offending request.
        va: u64,
        /// Length of the offending request.
        len: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                free,
                largest_free_block,
            } => write!(
                f,
                "CUDA out of memory: requested {requested} B, {free} B free \
                 (largest contiguous block {largest_free_block} B)"
            ),
            DeviceError::InvalidPointer(p) => write!(f, "invalid device pointer {p:#x}"),
            DeviceError::InvalidHandle(h) => write!(f, "invalid VMM handle {h}"),
            DeviceError::MappingConflict { va, len } => {
                write!(f, "VMM mapping conflict at {va:#x} (+{len} B)")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

impl DeviceError {
    /// Returns `true` if this error is an out-of-memory condition.
    pub fn is_oom(&self) -> bool {
        matches!(self, DeviceError::OutOfMemory { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DeviceError::OutOfMemory {
            requested: 1024,
            free: 512,
            largest_free_block: 256,
        };
        let s = e.to_string();
        assert!(s.contains("1024"));
        assert!(s.contains("512"));
        assert!(s.contains("256"));
        assert!(e.is_oom());
        assert!(!DeviceError::InvalidPointer(3).is_oom());
    }
}
