//! Simulated GPU device memory for allocator research.
//!
//! The STAlloc paper evaluates GPU memory allocators on real NVIDIA/AMD
//! devices through the CUDA driver API. This crate substitutes that substrate
//! with a byte-accurate *address-space simulator*: allocators interact with a
//! [`Device`] exactly as they would with `cudaMalloc`/`cudaFree` and the CUDA
//! virtual-memory-management (VMM) API, and the device tracks capacity,
//! alignment, fragmentation-relevant address arithmetic, operation counts and
//! simulated latency.
//!
//! Fragmentation is a property of address arithmetic, not of silicon, so
//! every memory-efficiency number in the paper's evaluation can be reproduced
//! on this simulator without a GPU.
//!
//! # Examples
//!
//! ```
//! use gpu_sim::{Device, DeviceSpec};
//!
//! let mut dev = Device::new(DeviceSpec::a800_80g());
//! let ptr = dev.cuda_malloc(1 << 20).expect("80 GiB device fits 1 MiB");
//! assert_eq!(dev.stats().in_use, 1 << 20);
//! dev.cuda_free(ptr).unwrap();
//! assert_eq!(dev.stats().in_use, 0);
//! ```

mod clock;
mod device;
mod error;
mod phys;
mod vmm;

pub use clock::{Clock, LatencyModel};
pub use device::{Device, DeviceSpec, DeviceStats};
pub use error::{DeviceError, DeviceResult};
pub use phys::{DevicePtr, PhysMemory};
pub use vmm::{PhysHandle, VirtAddr, VirtualRange, Vmm, VmmStats};

/// Default allocation alignment of the simulated driver, matching the 512 B
/// granularity `cudaMalloc` guarantees in practice.
pub const DRIVER_ALIGNMENT: u64 = 512;

/// Physical-chunk granularity of the simulated VMM API (CUDA uses 2 MiB).
pub const VMM_GRANULARITY: u64 = 2 << 20;

/// Rounds `size` up to the next multiple of `align`.
///
/// `align` must be a power of two and non-zero.
///
/// # Examples
///
/// ```
/// assert_eq!(gpu_sim::align_up(1, 512), 512);
/// assert_eq!(gpu_sim::align_up(512, 512), 512);
/// assert_eq!(gpu_sim::align_up(513, 512), 1024);
/// ```
pub fn align_up(size: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (size + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 512), 0);
        assert_eq!(align_up(1, 2), 2);
        assert_eq!(align_up(4096, 512), 4096);
        assert_eq!(align_up(4097, 512), 4608);
    }
}
