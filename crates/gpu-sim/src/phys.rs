//! Physical device address space: the simulated driver allocator.
//!
//! Models what the CUDA driver does for `cudaMalloc`/`cudaFree`: hands out
//! aligned, contiguous ranges of the device's physical address space using a
//! best-fit policy with immediate coalescing of freed neighbours. Host-side
//! framework allocators (caching allocator, STAlloc, …) sit on top of this.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::error::{DeviceError, DeviceResult};
use crate::DRIVER_ALIGNMENT;

/// An opaque device pointer: the base address of a live physical allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// The raw device address.
    pub fn addr(self) -> u64 {
        self.0
    }
}

/// Best-fit allocator over a contiguous physical address space.
///
/// Invariants (checked in debug builds and by property tests):
/// * live allocations and free blocks tile the address space exactly;
/// * no two live allocations overlap;
/// * adjacent free blocks are always coalesced.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    capacity: u64,
    align: u64,
    /// Free blocks keyed by base address, value is length.
    free_by_addr: BTreeMap<u64, u64>,
    /// Free blocks keyed by (length, base address) for best-fit lookup.
    free_by_size: BTreeSet<(u64, u64)>,
    /// Live allocations: base address -> length.
    live: HashMap<u64, u64>,
    in_use: u64,
    peak_in_use: u64,
    num_allocs: u64,
    num_frees: u64,
}

impl PhysMemory {
    /// Creates an empty address space of `capacity` bytes with the default
    /// driver alignment.
    pub fn new(capacity: u64) -> Self {
        Self::with_alignment(capacity, DRIVER_ALIGNMENT)
    }

    /// Creates an empty address space with an explicit alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn with_alignment(capacity: u64, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut free_by_addr = BTreeMap::new();
        let mut free_by_size = BTreeSet::new();
        if capacity > 0 {
            free_by_addr.insert(0, capacity);
            free_by_size.insert((capacity, 0));
        }
        Self {
            capacity,
            align,
            free_by_addr,
            free_by_size,
            live: HashMap::new(),
            in_use: 0,
            peak_in_use: 0,
            num_allocs: 0,
            num_frees: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently handed out (after alignment rounding).
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of [`Self::in_use`].
    pub fn peak_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Bytes currently free (possibly discontiguous).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Size of the largest contiguous free block.
    pub fn largest_free_block(&self) -> u64 {
        self.free_by_size.iter().next_back().map_or(0, |&(l, _)| l)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Number of discontiguous free blocks (external-fragmentation proxy).
    pub fn free_block_count(&self) -> usize {
        self.free_by_addr.len()
    }

    /// Total `malloc` calls served.
    pub fn num_allocs(&self) -> u64 {
        self.num_allocs
    }

    /// Total `free` calls served.
    pub fn num_frees(&self) -> u64 {
        self.num_frees
    }

    /// Allocates `size` bytes (rounded up to the alignment), best-fit.
    ///
    /// Zero-sized requests are rounded up to one alignment unit, mirroring
    /// the behaviour of real drivers which never return aliased pointers.
    pub fn malloc(&mut self, size: u64) -> DeviceResult<DevicePtr> {
        let size = crate::align_up(size.max(1), self.align);
        // Best fit: smallest free block with length >= size; ties broken by
        // lowest address because the key is (len, addr).
        let found = self
            .free_by_size
            .range((size, 0)..)
            .next()
            .copied()
            .ok_or_else(|| self.oom(size))?;
        let (blk_len, blk_addr) = found;
        self.remove_free(blk_addr, blk_len);
        if blk_len > size {
            self.insert_free(blk_addr + size, blk_len - size);
        }
        self.live.insert(blk_addr, size);
        self.in_use += size;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        self.num_allocs += 1;
        Ok(DevicePtr(blk_addr))
    }

    /// Allocates `size` bytes at a caller-chosen address, if that exact range
    /// is free. Used by tests and by the VMM layer.
    pub fn malloc_at(&mut self, addr: u64, size: u64) -> DeviceResult<DevicePtr> {
        let size = crate::align_up(size.max(1), self.align);
        // Find the free block containing `addr`.
        let (&blk_addr, &blk_len) =
            self.free_by_addr
                .range(..=addr)
                .next_back()
                .ok_or(DeviceError::MappingConflict {
                    va: addr,
                    len: size,
                })?;
        if addr + size > blk_addr + blk_len {
            return Err(DeviceError::MappingConflict {
                va: addr,
                len: size,
            });
        }
        self.remove_free(blk_addr, blk_len);
        if addr > blk_addr {
            self.insert_free(blk_addr, addr - blk_addr);
        }
        let end = addr + size;
        let blk_end = blk_addr + blk_len;
        if blk_end > end {
            self.insert_free(end, blk_end - end);
        }
        self.live.insert(addr, size);
        self.in_use += size;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        self.num_allocs += 1;
        Ok(DevicePtr(addr))
    }

    /// Frees a pointer previously returned by [`Self::malloc`].
    pub fn free(&mut self, ptr: DevicePtr) -> DeviceResult<u64> {
        let len = self
            .live
            .remove(&ptr.0)
            .ok_or(DeviceError::InvalidPointer(ptr.0))?;
        self.in_use -= len;
        self.num_frees += 1;
        self.insert_free_coalescing(ptr.0, len);
        Ok(len)
    }

    /// Returns the length of a live allocation, if `ptr` is live.
    pub fn allocation_len(&self, ptr: DevicePtr) -> Option<u64> {
        self.live.get(&ptr.0).copied()
    }

    fn oom(&self, requested: u64) -> DeviceError {
        DeviceError::OutOfMemory {
            requested,
            free: self.free_bytes(),
            largest_free_block: self.largest_free_block(),
        }
    }

    fn insert_free(&mut self, addr: u64, len: u64) {
        debug_assert!(len > 0);
        self.free_by_addr.insert(addr, len);
        self.free_by_size.insert((len, addr));
    }

    fn remove_free(&mut self, addr: u64, len: u64) {
        self.free_by_addr.remove(&addr);
        self.free_by_size.remove(&(len, addr));
    }

    fn insert_free_coalescing(&mut self, mut addr: u64, mut len: u64) {
        // Merge with the preceding free block if adjacent.
        if let Some((&prev_addr, &prev_len)) = self.free_by_addr.range(..addr).next_back() {
            if prev_addr + prev_len == addr {
                self.remove_free(prev_addr, prev_len);
                addr = prev_addr;
                len += prev_len;
            }
        }
        // Merge with the following free block if adjacent.
        if let Some((&next_addr, &next_len)) = self.free_by_addr.range(addr + len..).next() {
            if addr + len == next_addr {
                self.remove_free(next_addr, next_len);
                len += next_len;
            }
        }
        self.insert_free(addr, len);
    }

    /// Debug invariant check: free + live blocks exactly tile the space.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut spans: Vec<(u64, u64)> = self
            .free_by_addr
            .iter()
            .map(|(&a, &l)| (a, l))
            .chain(self.live.iter().map(|(&a, &l)| (a, l)))
            .collect();
        spans.sort_unstable();
        let mut cursor = 0;
        for (a, l) in spans {
            assert_eq!(a, cursor, "gap or overlap at {a:#x}");
            cursor = a + l;
        }
        assert_eq!(cursor, self.capacity, "space not fully tiled");
        assert_eq!(self.free_by_addr.len(), self.free_by_size.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_free_roundtrip() {
        let mut m = PhysMemory::new(1 << 20);
        let a = m.malloc(1000).unwrap();
        assert_eq!(m.in_use(), 1024, "rounded to 512 B alignment");
        m.check_invariants();
        m.free(a).unwrap();
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.largest_free_block(), 1 << 20);
        m.check_invariants();
    }

    #[test]
    fn best_fit_prefers_tightest_block() {
        let mut m = PhysMemory::new(10240);
        let a = m.malloc(512).unwrap(); // [0, 512)
        let b = m.malloc(2048).unwrap(); // [512, 2560)
        let c = m.malloc(512).unwrap(); // [2560, 3072)
        let _d = m.malloc(1024).unwrap(); // [3072, 4096)
        m.free(a).unwrap(); // free 512 @ 0
        m.free(b).unwrap(); // free 2048 @ 512... coalesces with a -> 2560 @ 0
        m.free(c).unwrap(); // coalesces -> 3072 @ 0
                            // Now frees coalesced into one 3072 block at 0 plus tail.
        assert_eq!(m.free_block_count(), 2);
        let e = m.malloc(3000).unwrap();
        assert_eq!(e.addr(), 0, "tight 3072 block preferred over big tail");
        m.check_invariants();
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut m = PhysMemory::new(4096);
        let a = m.malloc(512).unwrap();
        let b = m.malloc(512).unwrap();
        let c = m.malloc(512).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        assert_eq!(m.free_block_count(), 2, "a and c not adjacent yet");
        m.free(b).unwrap();
        assert_eq!(m.free_block_count(), 1, "b bridges a and c and the tail");
        assert_eq!(m.largest_free_block(), 4096);
        m.check_invariants();
    }

    #[test]
    fn oom_reports_fragmentation() {
        let mut m = PhysMemory::new(2048);
        let a = m.malloc(512).unwrap();
        let _b = m.malloc(512).unwrap();
        let c = m.malloc(512).unwrap();
        let _d = m.malloc(512).unwrap();
        m.free(a).unwrap();
        m.free(c).unwrap();
        // 1024 B free but largest block is 512.
        let err = m.malloc(1024).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                free,
                largest_free_block,
            } => {
                assert_eq!(requested, 1024);
                assert_eq!(free, 1024);
                assert_eq!(largest_free_block, 512);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn double_free_rejected() {
        let mut m = PhysMemory::new(4096);
        let a = m.malloc(512).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(DeviceError::InvalidPointer(a.0)));
    }

    #[test]
    fn malloc_at_splits_containing_block() {
        let mut m = PhysMemory::new(8192);
        let p = m.malloc_at(1024, 512).unwrap();
        assert_eq!(p.addr(), 1024);
        assert_eq!(m.free_block_count(), 2);
        m.check_invariants();
        // Overlapping placement fails.
        assert!(m.malloc_at(1024, 512).is_err());
        assert!(m.malloc_at(800, 512).is_err());
        m.free(p).unwrap();
        assert_eq!(m.free_block_count(), 1);
        m.check_invariants();
    }

    #[test]
    fn zero_sized_request_gets_unique_storage() {
        let mut m = PhysMemory::new(4096);
        let a = m.malloc(0).unwrap();
        let b = m.malloc(0).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.in_use(), 1024);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = PhysMemory::new(1 << 16);
        let a = m.malloc(4096).unwrap();
        let b = m.malloc(4096).unwrap();
        m.free(a).unwrap();
        m.free(b).unwrap();
        let _c = m.malloc(512).unwrap();
        assert_eq!(m.peak_in_use(), 8192);
    }
}
