//! Simulated CUDA virtual-memory-management (VMM) API.
//!
//! Models the driver API that PyTorch `expandable_segments` and GMLake build
//! on: physical memory is created in granularity-sized handles
//! (`cuMemCreate`), virtual address ranges are reserved
//! (`cuMemAddressReserve`), and handles are mapped/unmapped into those ranges
//! (`cuMemMap`/`cuMemUnmap`). Physical handles survive unmapping until
//! released (`cuMemRelease`).
//!
//! Physical memory is page-based and therefore never fragments; only the
//! byte count matters. Virtual address space is effectively unlimited.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::error::{DeviceError, DeviceResult};
use crate::VMM_GRANULARITY;

/// Identifier of a physical-memory handle created by [`Vmm::mem_create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysHandle(pub u64);

/// A virtual device address inside a VMM reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u64);

/// A reserved virtual address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualRange {
    /// Base virtual address of the reservation.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

#[derive(Debug, Clone)]
struct HandleInfo {
    size: u64,
    mapped_at: Option<u64>,
}

/// Operation counters and byte accounting for the VMM layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmmStats {
    /// Physical bytes currently held by handles (mapped or not).
    pub phys_in_use: u64,
    /// High-water mark of `phys_in_use`.
    pub peak_phys_in_use: u64,
    /// Bytes currently mapped into virtual ranges.
    pub mapped_bytes: u64,
    /// Bytes of reserved virtual address space.
    pub va_reserved: u64,
    /// Count of `mem_create` calls.
    pub creates: u64,
    /// Count of `mem_map` calls.
    pub maps: u64,
    /// Count of `mem_unmap` calls.
    pub unmaps: u64,
    /// Count of `mem_release` calls.
    pub releases: u64,
    /// Count of `address_reserve` calls.
    pub reserves: u64,
}

impl VmmStats {
    /// Total number of VMM driver operations issued.
    pub fn total_ops(&self) -> u64 {
        self.creates + self.maps + self.unmaps + self.releases + self.reserves
    }
}

/// The VMM bookkeeping layer owned by a [`crate::Device`].
///
/// All methods are pure bookkeeping; capacity checks and latency charging are
/// done by the owning device, which knows the total physical budget shared
/// with `cudaMalloc`.
#[derive(Debug, Clone)]
pub struct Vmm {
    granularity: u64,
    next_handle: u64,
    va_cursor: u64,
    handles: HashMap<u64, HandleInfo>,
    /// Reservations: base -> len.
    reservations: BTreeMap<u64, u64>,
    /// Mappings: base va -> (len, handle id).
    mappings: BTreeMap<u64, (u64, u64)>,
    stats: VmmStats,
}

/// Virtual addresses handed out by the VMM start here so they can never
/// collide with `cudaMalloc` addresses, which grow from zero.
const VMM_VA_BASE: u64 = 1 << 46;

impl Default for Vmm {
    fn default() -> Self {
        Self::new(VMM_GRANULARITY)
    }
}

impl Vmm {
    /// Creates a VMM layer with the given physical granularity.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(granularity.is_power_of_two());
        Self {
            granularity,
            next_handle: 1,
            va_cursor: VMM_VA_BASE,
            handles: HashMap::new(),
            reservations: BTreeMap::new(),
            mappings: BTreeMap::new(),
            stats: VmmStats::default(),
        }
    }

    /// The physical allocation granularity (2 MiB by default).
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> VmmStats {
        self.stats
    }

    /// Rounds `size` up to the physical granularity.
    pub fn round_to_granularity(&self, size: u64) -> u64 {
        crate::align_up(size.max(1), self.granularity)
    }

    /// Creates a physical handle of `size` bytes (rounded to granularity).
    ///
    /// The caller (the device) must have verified the physical budget.
    pub fn mem_create(&mut self, size: u64) -> PhysHandle {
        let size = self.round_to_granularity(size);
        let id = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(
            id,
            HandleInfo {
                size,
                mapped_at: None,
            },
        );
        self.stats.creates += 1;
        self.stats.phys_in_use += size;
        self.stats.peak_phys_in_use = self.stats.peak_phys_in_use.max(self.stats.phys_in_use);
        PhysHandle(id)
    }

    /// Returns the size of a handle, if it exists.
    pub fn handle_size(&self, h: PhysHandle) -> Option<u64> {
        self.handles.get(&h.0).map(|i| i.size)
    }

    /// Reserves `size` bytes of virtual address space.
    pub fn address_reserve(&mut self, size: u64) -> VirtualRange {
        let size = self.round_to_granularity(size);
        let base = self.va_cursor;
        // Leave a granule of guard space between reservations.
        self.va_cursor += size + self.granularity;
        self.reservations.insert(base, size);
        self.stats.reserves += 1;
        self.stats.va_reserved += size;
        VirtualRange {
            base: VirtAddr(base),
            len: size,
        }
    }

    /// Releases a reservation. Fails if any mapping is still inside it.
    pub fn address_free(&mut self, range: VirtualRange) -> DeviceResult<()> {
        let len = self
            .reservations
            .get(&range.base.0)
            .copied()
            .ok_or(DeviceError::InvalidHandle(range.base.0))?;
        let end = range.base.0 + len;
        if self.mappings.range(range.base.0..end).next().is_some() {
            return Err(DeviceError::MappingConflict {
                va: range.base.0,
                len,
            });
        }
        self.reservations.remove(&range.base.0);
        self.stats.va_reserved -= len;
        Ok(())
    }

    /// Maps a physical handle at `va`, which must lie inside a reservation
    /// and not overlap an existing mapping. The handle must be unmapped.
    pub fn mem_map(&mut self, va: VirtAddr, handle: PhysHandle) -> DeviceResult<()> {
        let size = {
            let info = self
                .handles
                .get(&handle.0)
                .ok_or(DeviceError::InvalidHandle(handle.0))?;
            if info.mapped_at.is_some() {
                return Err(DeviceError::MappingConflict {
                    va: va.0,
                    len: info.size,
                });
            }
            info.size
        };
        // Check containment in a reservation.
        let (&res_base, &res_len) =
            self.reservations
                .range(..=va.0)
                .next_back()
                .ok_or(DeviceError::MappingConflict {
                    va: va.0,
                    len: size,
                })?;
        if va.0 + size > res_base + res_len {
            return Err(DeviceError::MappingConflict {
                va: va.0,
                len: size,
            });
        }
        // Check overlap with previous/next mapping.
        if let Some((&prev, &(plen, _))) = self.mappings.range(..=va.0).next_back() {
            if prev + plen > va.0 {
                return Err(DeviceError::MappingConflict {
                    va: va.0,
                    len: size,
                });
            }
        }
        if let Some((&next, _)) = self.mappings.range(va.0..).next() {
            if va.0 + size > next {
                return Err(DeviceError::MappingConflict {
                    va: va.0,
                    len: size,
                });
            }
        }
        self.mappings.insert(va.0, (size, handle.0));
        self.handles.get_mut(&handle.0).expect("checked").mapped_at = Some(va.0);
        self.stats.maps += 1;
        self.stats.mapped_bytes += size;
        Ok(())
    }

    /// Unmaps the mapping that starts exactly at `va`. The physical handle
    /// survives and can be re-mapped elsewhere.
    pub fn mem_unmap(&mut self, va: VirtAddr) -> DeviceResult<PhysHandle> {
        let (len, handle) = self
            .mappings
            .remove(&va.0)
            .ok_or(DeviceError::InvalidPointer(va.0))?;
        self.handles.get_mut(&handle).expect("mapped").mapped_at = None;
        self.stats.unmaps += 1;
        self.stats.mapped_bytes -= len;
        Ok(PhysHandle(handle))
    }

    /// Releases a physical handle, returning its size so the device can
    /// credit the physical budget. The handle must be unmapped.
    pub fn mem_release(&mut self, handle: PhysHandle) -> DeviceResult<u64> {
        let info = self
            .handles
            .get(&handle.0)
            .ok_or(DeviceError::InvalidHandle(handle.0))?;
        if let Some(va) = info.mapped_at {
            return Err(DeviceError::MappingConflict { va, len: info.size });
        }
        let size = info.size;
        self.handles.remove(&handle.0);
        self.stats.releases += 1;
        self.stats.phys_in_use -= size;
        Ok(size)
    }

    /// Physical bytes currently held by live handles.
    pub fn phys_in_use(&self) -> u64 {
        self.stats.phys_in_use
    }

    /// Bumps remap-related op counters (see `Device::vmm_charge_remap`).
    pub(crate) fn charge_remap(&mut self, maps: u64, unmaps: u64, reserves: u64) {
        self.stats.maps += maps;
        self.stats.unmaps += unmaps;
        self.stats.reserves += reserves;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_map_unmap_release_cycle() {
        let mut v = Vmm::default();
        let h = v.mem_create(1); // rounds to 2 MiB
        assert_eq!(v.handle_size(h), Some(2 << 20));
        assert_eq!(v.phys_in_use(), 2 << 20);

        let r = v.address_reserve(8 << 20);
        v.mem_map(r.base, h).unwrap();
        assert_eq!(v.stats().mapped_bytes, 2 << 20);

        // Can't double-map or release while mapped.
        assert!(v.mem_map(VirtAddr(r.base.0 + (4 << 20)), h).is_err());
        assert!(v.mem_release(h).is_err());

        let h2 = v.mem_unmap(r.base).unwrap();
        assert_eq!(h2, h);
        assert_eq!(v.stats().mapped_bytes, 0);
        assert_eq!(v.mem_release(h).unwrap(), 2 << 20);
        assert_eq!(v.phys_in_use(), 0);
    }

    #[test]
    fn mapping_requires_reservation_and_no_overlap() {
        let mut v = Vmm::default();
        let h1 = v.mem_create(2 << 20);
        let h2 = v.mem_create(2 << 20);
        // No reservation yet.
        assert!(v.mem_map(VirtAddr(VMM_VA_BASE), h1).is_err());

        let r = v.address_reserve(4 << 20);
        v.mem_map(r.base, h1).unwrap();
        // Overlapping map rejected.
        assert!(v.mem_map(r.base, h2).is_err());
        // Adjacent map inside the reservation is fine.
        v.mem_map(VirtAddr(r.base.0 + (2 << 20)), h2).unwrap();
        // Out-of-reservation map rejected: h1 would poke past the end.
        let h3 = v.mem_create(2 << 20);
        assert!(v.mem_map(VirtAddr(r.base.0 + (3 << 20)), h3).is_err());
    }

    #[test]
    fn address_free_requires_empty_range() {
        let mut v = Vmm::default();
        let h = v.mem_create(2 << 20);
        let r = v.address_reserve(4 << 20);
        v.mem_map(r.base, h).unwrap();
        assert!(v.address_free(r).is_err());
        v.mem_unmap(r.base).unwrap();
        v.address_free(r).unwrap();
        assert_eq!(v.stats().va_reserved, 0);
    }

    #[test]
    fn remap_after_unmap_moves_physical_bytes() {
        let mut v = Vmm::default();
        let h = v.mem_create(4 << 20);
        let r1 = v.address_reserve(4 << 20);
        let r2 = v.address_reserve(4 << 20);
        v.mem_map(r1.base, h).unwrap();
        v.mem_unmap(r1.base).unwrap();
        v.mem_map(r2.base, h).unwrap();
        assert_eq!(v.phys_in_use(), 4 << 20, "physical bytes stable");
        assert_eq!(v.stats().maps, 2);
        assert_eq!(v.stats().unmaps, 1);
    }
}
