//! Evaluation configurations: the training jobs behind each paper
//! table/figure, sized for the simulated testbeds.
//!
//! The paper gives model + GPU counts + microbatch sizes but not every
//! parallel layout; layouts here follow standard Megatron practice for the
//! given model/hardware combination, and microbatch/sequence settings are
//! calibrated so peak memory lands in the regime the paper reports (tens of
//! GB on 80 GB devices). EXPERIMENTS.md records the chosen values next to
//! each reproduced number.

use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob, ZeroStage};

/// Number of iterations traced per experiment (profile uses iteration 1;
/// iterations 2+ exercise steady-state and MoE dynamicity).
pub const ITERATIONS: u32 = 3;

/// The six optimization combinations of Fig. 8 / Fig. 13, as
/// `(label, optim, vpp_on)`.
pub fn fig8_configs() -> Vec<(&'static str, OptimConfig, bool)> {
    vec![
        ("Naive", OptimConfig::naive(), false),
        ("R", OptimConfig::r(), false),
        ("V", OptimConfig::naive(), true),
        ("VR", OptimConfig::r(), true),
        ("ZR", OptimConfig::zr(), false),
        ("ZOR", OptimConfig::zor(), false),
    ]
}

/// GPT-2 on 8 GPUs (A800 testbed): TP1 PP4 DP2, mbs 32, seq 1024.
pub fn gpt2_job(optim: OptimConfig, vpp: bool) -> TrainJob {
    let mut parallel = ParallelConfig::new(1, 4, 2);
    if vpp {
        parallel = parallel.with_vpp(2); // 24 layers / (4*2) = 3 per chunk
    }
    TrainJob::new(ModelSpec::gpt2_345m(), parallel, optim)
        .with_mbs(32)
        .with_seq(1024)
        .with_microbatches(16)
        .with_iterations(ITERATIONS)
}

/// Llama2-7B on 8 GPUs (A800 testbed): TP4 PP2, mbs 4, seq 4096.
pub fn llama2_job(optim: OptimConfig, vpp: bool) -> TrainJob {
    let mut parallel = ParallelConfig::new(4, 2, 1);
    if vpp {
        parallel = parallel.with_vpp(2); // 32 / (2*2) = 8 per chunk
    }
    TrainJob::new(ModelSpec::llama2_7b(), parallel, optim)
        .with_mbs(4)
        .with_seq(4096)
        .with_microbatches(8)
        .with_iterations(ITERATIONS)
}

/// Qwen1.5-MoE-A2.7B on 8 GPUs: TP2 PP2 DP2 EP4, mbs 8, seq 2048.
pub fn moe_job(optim: OptimConfig, vpp: bool) -> TrainJob {
    let mut parallel = ParallelConfig::new(2, 2, 2).with_ep(4);
    if vpp {
        parallel = parallel.with_vpp(2); // 24 / (2*2) = 6 per chunk
    }
    TrainJob::new(ModelSpec::qwen15_moe_a27b(), parallel, optim)
        .with_mbs(8)
        .with_seq(2048)
        .with_microbatches(8)
        .with_iterations(ITERATIONS)
}

/// Fig. 9(a) AMD jobs: Llama2-7B / Qwen-MoE at cluster scale with
/// recomputation, MI210 64 GB.
pub fn amd_job(model_is_moe: bool, gpus: u32) -> TrainJob {
    if model_is_moe {
        let dp = gpus / 4; // tp2 * pp2
        let parallel = ParallelConfig::new(2, 2, dp).with_ep(4);
        TrainJob::new(ModelSpec::qwen15_moe_a27b(), parallel, OptimConfig::r())
            .with_mbs(8)
            .with_seq(2048)
            .with_microbatches(8)
            .with_iterations(ITERATIONS)
    } else {
        let dp = gpus / 8; // tp4 * pp2
        let parallel = ParallelConfig::new(4, 2, dp);
        TrainJob::new(ModelSpec::llama2_7b(), parallel, OptimConfig::r())
            .with_mbs(4)
            .with_seq(4096)
            .with_microbatches(16)
            .with_iterations(ITERATIONS)
    }
}

/// Fig. 9(b,c) H200 scaling jobs: Qwen2.5 family, with either full
/// recomputation (`recompute = true`) or virtual pipeline.
///
/// Layouts: 7B -> TP2 PP2, 14B -> TP2 PP2, 32B -> TP4 PP4, 72B -> TP4 PP4,
/// data parallelism fills the remaining GPUs.
pub fn h200_job(model: &ModelSpec, gpus: u32, recompute: bool) -> TrainJob {
    // (tp, pp, vpp chunks, mbs under recompute, mbs under VPP): VPP holds
    // many more in-flight activation cohorts, so its microbatches shrink.
    let (tp, pp, vpp, mbs_r, mbs_v) = match model.name.as_str() {
        "Qwen2.5-7B" => (2, 2, 2, 8, 4),
        "Qwen2.5-14B" => (2, 2, 3, 6, 2),
        "Qwen2.5-32B" => (4, 4, 2, 6, 2),
        "Qwen2.5-72B" => (4, 4, 2, 4, 1),
        other => panic!("unknown H200 model {other}"),
    };
    let mbs = if recompute { mbs_r } else { mbs_v };
    let dp = gpus / (tp * pp);
    assert!(dp >= 1, "too few GPUs for {}", model.name);
    let optim = if recompute {
        OptimConfig::r()
    } else {
        OptimConfig::naive()
    };
    let parallel = if recompute {
        ParallelConfig::new(tp, pp, dp)
    } else {
        ParallelConfig::new(tp, pp, dp).with_vpp(vpp)
    };
    TrainJob::new(model.clone(), parallel, optim)
        .with_mbs(mbs)
        .with_seq(4096)
        .with_microbatches(2 * pp * vpp.max(1))
        .with_iterations(ITERATIONS)
}

/// Table 1 jobs: Qwen2.5-14B on 16 H200 GPUs under the four configurations
/// the paper compares. Returns `(config label, job)`.
///
/// The sequence length (5504) is calibrated so the original VPP
/// configuration's theoretical demand sits just below the H200's capacity:
/// fragmentation then decides feasibility, as in the paper's §9.2 study.
pub fn table1_jobs() -> Vec<(&'static str, TrainJob)> {
    let model = ModelSpec::qwen25_14b();
    let base = |parallel: ParallelConfig, optim: OptimConfig| {
        TrainJob::new(model.clone(), parallel, optim)
            .with_mbs(3)
            .with_seq(5504)
            .with_microbatches(12)
            .with_iterations(ITERATIONS)
    };
    vec![
        (
            "Original (VPP)",
            base(
                ParallelConfig::new(2, 2, 4).with_vpp(3),
                OptimConfig::naive(),
            ),
        ),
        (
            "Disable VPP",
            base(ParallelConfig::new(2, 2, 4), OptimConfig::naive()),
        ),
        (
            "Recomputation",
            base(ParallelConfig::new(2, 2, 4).with_vpp(3), OptimConfig::r()),
        ),
        (
            "TP=4",
            base(
                ParallelConfig::new(4, 2, 2).with_vpp(3),
                OptimConfig::naive(),
            ),
        ),
    ]
}

/// Fig. 11 Colossal-AI flavour: GPT-2 with ZeRO-3 + activation offload on
/// 8 GPUs, pure data parallelism.
pub fn colossal_job(batch: u32) -> TrainJob {
    let optim = OptimConfig {
        recompute: trace_gen::RecomputeMode::None,
        offload: trace_gen::OffloadMode::Activations,
        zero: ZeroStage::Zero3,
    };
    TrainJob::new(ModelSpec::gpt2_345m(), ParallelConfig::new(1, 1, 8), optim)
        .with_mbs(batch / 8)
        .with_seq(1024)
        .with_microbatches(4)
        .with_iterations(ITERATIONS)
}

/// Fig. 10 micro-batch sweep: Llama2-7B + recomputation at the given mbs.
pub fn mbs_sweep_job(mbs: u32) -> TrainJob {
    llama2_job(OptimConfig::r(), false).with_mbs(mbs)
}

/// Fig. 1(b) configuration sweep for Llama2-7B on 8 GPUs: returns
/// `(label, job)` pairs covering the throughput/memory trade-off space.
pub fn fig1b_jobs() -> Vec<(String, TrainJob)> {
    let mut out = Vec::new();
    for (tp, pp) in [(4, 2), (2, 4), (8, 1)] {
        for (olabel, optim, vpp) in [
            ("N", OptimConfig::naive(), false),
            ("V", OptimConfig::naive(), true),
            ("R", OptimConfig::r(), false),
            ("VR", OptimConfig::r(), true),
        ] {
            if vpp && pp == 1 {
                continue;
            }
            let mut parallel = ParallelConfig::new(tp, pp, 8 / (tp * pp));
            if vpp {
                parallel = parallel.with_vpp(2);
            }
            if parallel.validate(&ModelSpec::llama2_7b()).is_err() {
                continue;
            }
            let job = TrainJob::new(ModelSpec::llama2_7b(), parallel, optim)
                .with_mbs(4)
                .with_seq(4096)
                .with_microbatches(8)
                .with_iterations(ITERATIONS);
            out.push((format!("TP{tp}PP{pp}-{olabel}"), job));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fig8_jobs_validate() {
        for (_, optim, vpp) in fig8_configs() {
            gpt2_job(optim, vpp).validate().unwrap();
            llama2_job(optim, vpp).validate().unwrap();
            moe_job(optim, vpp).validate().unwrap();
        }
    }

    #[test]
    fn scale_jobs_validate() {
        for gpus in [32, 64] {
            amd_job(false, gpus).validate().unwrap();
            amd_job(true, gpus).validate().unwrap();
        }
        for (m, g) in [
            (ModelSpec::qwen25_7b(), 8),
            (ModelSpec::qwen25_7b(), 16),
            (ModelSpec::qwen25_14b(), 16),
            (ModelSpec::qwen25_14b(), 32),
            (ModelSpec::qwen25_32b(), 32),
            (ModelSpec::qwen25_32b(), 64),
            (ModelSpec::qwen25_72b(), 64),
            (ModelSpec::qwen25_72b(), 128),
        ] {
            h200_job(&m, g, true).validate().unwrap();
            h200_job(&m, g, false).validate().unwrap();
        }
    }

    #[test]
    fn table1_and_misc_jobs_validate() {
        for (_, j) in table1_jobs() {
            j.validate().unwrap();
        }
        colossal_job(16).validate().unwrap();
        colossal_job(128).validate().unwrap();
        for mbs in [1, 2, 4, 8, 16, 32, 64] {
            mbs_sweep_job(mbs).validate().unwrap();
        }
        assert!(fig1b_jobs().len() >= 8);
        for (_, j) in fig1b_jobs() {
            j.validate().unwrap();
        }
    }
}
