//! Experiment registry: one function per table/figure of the paper's
//! evaluation (§2 motivation + §9). Each returns renderable [`Table`]s; the
//! `bench` crate exposes them as binaries.

use gpu_sim::DeviceSpec;
use trace_gen::{OptimConfig, TensorCategory, Trace, TraceEvent};

use crate::configs;
use crate::runner::{run, run_lineup, AllocatorKind};
use crate::table::{gib, pct, Table};

fn a800() -> DeviceSpec {
    DeviceSpec::a800_80g()
}

/// Figure 1(b): memory vs throughput of Llama2-7B configurations on 8 GPUs;
/// the best configurations are feasible only with STAlloc.
pub fn fig1b() -> Table {
    let mut t = Table::new(
        "Figure 1(b): Llama2-7B configurations on 8xA800 - memory vs throughput",
        &[
            "config",
            "M_a (GiB)",
            "Torch reserved",
            "Torch OK?",
            "STAlloc reserved",
            "STAlloc OK?",
            "TFLOPS (model)",
        ],
    );
    for (label, job) in configs::fig1b_jobs() {
        let trace = job.build_trace().expect("valid job");
        let torch = run(&trace, &a800(), AllocatorKind::Torch23);
        let st = run(&trace, &a800(), AllocatorKind::Stalloc);
        let tput = st
            .throughput
            .map(|x| format!("{:.1}", x.tflops))
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            label,
            gib(torch.report.peak_requested),
            gib(torch.report.peak_reserved),
            if torch.report.oom {
                "OOM".into()
            } else {
                "yes".into()
            },
            gib(st.report.peak_reserved),
            if st.report.oom {
                "OOM".into()
            } else {
                "yes".into()
            },
            tput,
        ]);
    }
    t
}

/// Figure 2: PyTorch memory efficiency of GPT-2 under no optimization,
/// virtual pipeline, and recomputation.
pub fn fig2() -> Table {
    let mut t = Table::new(
        "Figure 2: GPT-2 memory efficiency under PyTorch (8 GPUs)",
        &["config", "allocated (GiB)", "reserved (GiB)", "efficiency"],
    );
    for (label, optim, vpp) in [
        ("1F1B (no opt)", OptimConfig::naive(), false),
        ("Virtual Pipeline", OptimConfig::naive(), true),
        ("Recomputation", OptimConfig::r(), false),
    ] {
        let trace = configs::gpt2_job(optim, vpp).build_trace().unwrap();
        let r = run(&trace, &a800(), AllocatorKind::Torch23);
        t.push_row(vec![
            label.into(),
            gib(r.report.peak_requested),
            gib(r.report.peak_reserved),
            pct(r.report.efficiency()),
        ]);
    }
    t
}

/// Figure 3: allocation-size distribution — the spatial regularity.
pub fn fig3() -> Table {
    let mut t = Table::new(
        "Figure 3: distinct allocation sizes >512 B in one iteration (Llama2-7B)",
        &[
            "config",
            "requests/iter",
            "distinct sizes",
            "top-5 sizes (MiB, share)",
        ],
    );
    for (label, optim, vpp) in [
        ("None", OptimConfig::naive(), false),
        ("Recomputation", OptimConfig::r(), false),
        ("Virtual Pipeline", OptimConfig::naive(), true),
    ] {
        let trace = configs::llama2_job(optim, vpp).build_trace().unwrap();
        let (s, e) = trace.iteration_range(1).unwrap();
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut total = 0u64;
        for ev in &trace.events[s..e] {
            if let TraceEvent::Alloc { size, .. } = ev {
                if *size > 512 {
                    *counts.entry(*size).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        let mut top: Vec<(u64, u64)> = counts.iter().map(|(&s, &c)| (c, s)).collect();
        top.sort_unstable_by(|a, b| b.cmp(a));
        let top5: Vec<String> = top
            .iter()
            .take(5)
            .map(|&(c, s)| {
                format!(
                    "{:.1} ({:.0}%)",
                    s as f64 / (1 << 20) as f64,
                    100.0 * c as f64 / total as f64
                )
            })
            .collect();
        t.push_row(vec![
            label.into(),
            total.to_string(),
            counts.len().to_string(),
            top5.join(" "),
        ]);
    }
    t
}

/// Figure 4: tensor lifetime classification and the effect of optimization
/// techniques on it.
pub fn fig4() -> Table {
    let mut t = Table::new(
        "Figure 4: tensor lifetime classes per iteration (GPT-2)",
        &[
            "config",
            "persistent (GiB)",
            "scoped (GiB)",
            "transient (GiB)",
            "scoped share of bytes",
        ],
    );
    for (label, optim) in [
        ("Naive", OptimConfig::naive()),
        ("Recompute", OptimConfig::r()),
        ("Recompute+Offload", OptimConfig::zor()),
    ] {
        let trace = configs::gpt2_job(optim, false).build_trace().unwrap();
        let (s, e) = trace.iteration_range(1).unwrap();
        let mut bytes = [0u64; 3];
        for ev in &trace.events[..e] {
            if let TraceEvent::Alloc { size, category, .. } = ev {
                let idx = match category {
                    TensorCategory::Persistent => 0,
                    TensorCategory::Scoped => 1,
                    TensorCategory::Transient => 2,
                };
                bytes[idx] += size;
            }
        }
        // Persistent counted from init; scoped/transient from iteration 1.
        let mut iter_bytes = [0u64; 3];
        for ev in &trace.events[s..e] {
            if let TraceEvent::Alloc { size, category, .. } = ev {
                let idx = match category {
                    TensorCategory::Persistent => 0,
                    TensorCategory::Scoped => 1,
                    TensorCategory::Transient => 2,
                };
                iter_bytes[idx] += size;
            }
        }
        let persistent = bytes[0];
        let scoped = iter_bytes[1];
        let transient = iter_bytes[2];
        let share = scoped as f64 / (scoped + transient).max(1) as f64;
        t.push_row(vec![
            label.into(),
            gib(persistent),
            gib(scoped),
            gib(transient),
            pct(share),
        ]);
    }
    t
}

fn efficiency_cell(r: &crate::runner::RunResult) -> String {
    if r.report.oom {
        "OOM".into()
    } else {
        pct(r.report.efficiency())
    }
}

fn lineup_table(title: &str, traces: Vec<(String, Trace)>, spec: &DeviceSpec) -> Table {
    let kinds = AllocatorKind::paper_lineup();
    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(kinds.iter().map(|k| k.label()));
    let mut t = Table {
        title: title.into(),
        headers,
        rows: Vec::new(),
    };
    for (label, trace) in traces {
        let results = run_lineup(&trace, spec, &kinds);
        let mut row = vec![label];
        row.extend(results.iter().map(efficiency_cell));
        t.push_row(row);
    }
    t
}

/// Figure 8: memory efficiency of all allocators across the six
/// optimization combinations, for GPT-2 (a), Llama2-7B (b), Qwen-MoE (c).
pub fn fig8() -> Vec<Table> {
    let mut out = Vec::new();
    let build = |f: &dyn Fn(OptimConfig, bool) -> trace_gen::TrainJob| -> Vec<(String, Trace)> {
        configs::fig8_configs()
            .into_iter()
            .map(|(label, optim, vpp)| (label.to_string(), f(optim, vpp).build_trace().unwrap()))
            .collect()
    };
    out.push(lineup_table(
        "Figure 8(a): GPT-2 memory efficiency",
        build(&configs::gpt2_job),
        &a800(),
    ));
    out.push(lineup_table(
        "Figure 8(b): Llama2-7B memory efficiency",
        build(&configs::llama2_job),
        &a800(),
    ));
    out.push(lineup_table(
        "Figure 8(c): Qwen1.5-MoE-A2.7B memory efficiency",
        build(&configs::moe_job),
        &a800(),
    ));
    out
}

/// Figure 9: scaling studies on AMD MI210 (a) and NVIDIA H200 (b:
/// recomputation, c: virtual pipeline).
pub fn fig9() -> Vec<Table> {
    let mut out = Vec::new();

    // (a) AMD: no VMM -> only Torch vs STAlloc, as in the paper.
    let mi210 = DeviceSpec::mi210_64g();
    let mut ta = Table::new(
        "Figure 9(a): AMD MI210, recomputation",
        &["model", "GPUs", "Torch", "STAlloc"],
    );
    for (moe, gpus) in [(false, 32), (false, 64), (true, 32), (true, 64)] {
        let trace = configs::amd_job(moe, gpus).build_trace().unwrap();
        let torch = run(&trace, &mi210, AllocatorKind::Torch23);
        let st = run(&trace, &mi210, AllocatorKind::Stalloc);
        ta.push_row(vec![
            if moe {
                "Qwen1.5-MoE".into()
            } else {
                "Llama2-7B".into()
            },
            gpus.to_string(),
            efficiency_cell(&torch),
            efficiency_cell(&st),
        ]);
    }
    out.push(ta);

    // (b, c) H200 scaling.
    let h200 = DeviceSpec::h200_141g();
    let scale_models = [
        (trace_gen::ModelSpec::qwen25_7b(), [8u32, 16]),
        (trace_gen::ModelSpec::qwen25_14b(), [16, 32]),
        (trace_gen::ModelSpec::qwen25_32b(), [32, 64]),
        (trace_gen::ModelSpec::qwen25_72b(), [64, 128]),
    ];
    for (recompute, title) in [
        (true, "Figure 9(b): H200 scaling, recomputation"),
        (false, "Figure 9(c): H200 scaling, virtual pipeline"),
    ] {
        let mut tb = Table::new(
            title,
            &["model", "GPUs", "Torch 2.6", "Torch ES", "STAlloc"],
        );
        for (model, gpu_list) in &scale_models {
            for &gpus in gpu_list {
                let trace = configs::h200_job(model, gpus, recompute)
                    .build_trace()
                    .unwrap();
                let torch = run(&trace, &h200, AllocatorKind::Torch26);
                let es = run(&trace, &h200, AllocatorKind::TorchEs);
                let st = run(&trace, &h200, AllocatorKind::Stalloc);
                tb.push_row(vec![
                    model.name.clone(),
                    gpus.to_string(),
                    efficiency_cell(&torch),
                    efficiency_cell(&es),
                    efficiency_cell(&st),
                ]);
            }
        }
        out.push(tb);
    }
    out
}

/// Figure 10: memory efficiency vs micro-batch size (Llama2-7B +
/// recomputation).
pub fn fig10() -> Table {
    let kinds = AllocatorKind::paper_lineup();
    let mut headers: Vec<String> = vec!["mbs".into()];
    headers.extend(kinds.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Figure 10: Llama2-7B + recomputation, micro-batch sweep".into(),
        headers,
        rows: Vec::new(),
    };
    for mbs in [1u32, 2, 4, 8, 16, 32, 64] {
        let trace = configs::mbs_sweep_job(mbs).build_trace().unwrap();
        let results = run_lineup(&trace, &a800(), &kinds);
        let mut row = vec![mbs.to_string()];
        row.extend(results.iter().map(efficiency_cell));
        t.push_row(row);
    }
    t
}

/// Figure 11: Colossal-AI flavour (GPT-2, ZeRO-3 + offload).
pub fn fig11() -> Table {
    let traces = vec![
        (
            "batch 16".to_string(),
            configs::colossal_job(16).build_trace().unwrap(),
        ),
        (
            "batch 128".to_string(),
            configs::colossal_job(128).build_trace().unwrap(),
        ),
    ];
    lineup_table(
        "Figure 11: Colossal-AI (GPT-2, ZeRO-3 + offload) memory efficiency",
        traces,
        &a800(),
    )
}

/// Figure 12: normalized training throughput (recomputation configs).
pub fn fig12() -> Table {
    let kinds = AllocatorKind::paper_lineup();
    let mut headers: Vec<String> = vec!["model".into()];
    headers.extend(kinds.iter().map(|k| k.label()));
    let mut t = Table {
        title: "Figure 12: normalized throughput vs PyTorch baseline (R configs)".into(),
        headers,
        rows: Vec::new(),
    };
    let jobs: Vec<(&str, trace_gen::TrainJob)> = vec![
        ("GPT-2", configs::gpt2_job(OptimConfig::r(), false)),
        ("Llama2-7B", configs::llama2_job(OptimConfig::r(), false)),
        ("Qwen1.5-MoE", configs::moe_job(OptimConfig::r(), false)),
    ];
    for (label, job) in jobs {
        let trace = job.build_trace().unwrap();
        let results = run_lineup(&trace, &a800(), &kinds);
        // GMLake normalizes against Torch 2.0; ES/STAlloc against 2.3.
        let base20 = results
            .iter()
            .find(|r| r.kind == AllocatorKind::Torch20)
            .and_then(|r| r.throughput.map(|t| t.tflops))
            .unwrap_or(1.0);
        let base23 = results
            .iter()
            .find(|r| r.kind == AllocatorKind::Torch23)
            .and_then(|r| r.throughput.map(|t| t.tflops))
            .unwrap_or(1.0);
        let mut row = vec![label.to_string()];
        for r in &results {
            let cell = match (r.throughput, r.kind) {
                (None, _) => "OOM".into(),
                (Some(tp), AllocatorKind::Torch20) => pct(tp.tflops / base20),
                (Some(tp), AllocatorKind::GmLake(_)) => pct(tp.tflops / base20),
                (Some(tp), _) => pct(tp.tflops / base23),
            };
            row.push(cell);
        }
        t.push_row(row);
    }
    t
}

/// Figure 13: performance breakdown of the static and dynamic allocators on
/// the MoE model.
pub fn fig13() -> Table {
    let mut t = Table::new(
        "Figure 13: Qwen1.5-MoE breakdown - caching vs static-only vs full STAlloc",
        &[
            "config",
            "Caching Allocator",
            "STAlloc w/o reuse",
            "STAlloc",
        ],
    );
    for (label, optim, vpp) in configs::fig8_configs() {
        let trace = configs::moe_job(optim, vpp).build_trace().unwrap();
        let caching = run(&trace, &a800(), AllocatorKind::Torch23);
        let noreuse = run(&trace, &a800(), AllocatorKind::StallocNoReuse);
        let full = run(&trace, &a800(), AllocatorKind::Stalloc);
        t.push_row(vec![
            label.to_string(),
            efficiency_cell(&caching),
            efficiency_cell(&noreuse),
            efficiency_cell(&full),
        ]);
    }
    t
}

/// Table 1: Qwen2.5-14B on 16 GPUs — feasibility and throughput of the
/// original VPP configuration vs the fallbacks.
pub fn table1() -> Table {
    let h200 = DeviceSpec::h200_141g();
    let mut t = Table::new(
        "Table 1: Qwen2.5-14B on 16 H200 GPUs",
        &[
            "config",
            "PyTorch",
            "PyTorch ES",
            "STAlloc",
            "TFLOPS (model)",
        ],
    );
    for (label, job) in configs::table1_jobs() {
        let trace = job.build_trace().unwrap();
        let torch = run(&trace, &h200, AllocatorKind::Torch26);
        let es = run(&trace, &h200, AllocatorKind::TorchEs);
        let st = run(&trace, &h200, AllocatorKind::Stalloc);
        let ok = |r: &crate::runner::RunResult| {
            if r.report.oom {
                "OOM".to_string()
            } else {
                "ok".to_string()
            }
        };
        let tput = st
            .throughput
            .map(|x| format!("{:.1}", x.tflops))
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![label.to_string(), ok(&torch), ok(&es), ok(&st), tput]);
    }
    t
}

/// Table 2: profiling and plan-synthesis cost vs request count.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: profile and plan synthesis cost",
        &[
            "config",
            "requests/iter",
            "T_profile (ms)",
            "T_plan (ms)",
            "pool (GiB)",
            "packing eff",
        ],
    );
    let jobs: Vec<(&str, trace_gen::TrainJob)> = vec![
        ("GPT-2-N", configs::gpt2_job(OptimConfig::naive(), false)),
        ("GPT-2-R", configs::gpt2_job(OptimConfig::r(), false)),
        (
            "Llama2-7B-N",
            configs::llama2_job(OptimConfig::naive(), false),
        ),
        ("Llama2-7B-R", configs::llama2_job(OptimConfig::r(), false)),
        (
            "Qwen1.5-MoE-N",
            configs::moe_job(OptimConfig::naive(), false),
        ),
        ("Qwen1.5-MoE-R", configs::moe_job(OptimConfig::r(), false)),
    ];
    for (label, job) in jobs {
        let trace = job.build_trace().unwrap();
        let n = trace.allocs_in_iteration(1);
        let t0 = std::time::Instant::now();
        let profile = stalloc_core::profile_trace(&trace, 1).unwrap();
        let t_profile = t0.elapsed();
        let t1 = std::time::Instant::now();
        let plan = stalloc_core::synthesize(&profile, &stalloc_core::SynthConfig::default());
        let t_plan = t1.elapsed();
        t.push_row(vec![
            label.to_string(),
            n.to_string(),
            format!("{:.1}", t_profile.as_secs_f64() * 1e3),
            format!("{:.1}", t_plan.as_secs_f64() * 1e3),
            gib(plan.pool_size),
            format!("{:.3}", plan.stats.packing_efficiency()),
        ]);
    }
    t
}

/// Table 3: composition of allocation types on the MoE model, with and
/// without dynamic reuse.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: Qwen1.5-MoE allocation composition (GiB)",
        &[
            "config",
            "Total",
            "Static",
            "Dyn fallback w/o reuse",
            "Dyn fallback with reuse",
        ],
    );
    for (label, optim, vpp) in configs::fig8_configs() {
        let trace = configs::moe_job(optim, vpp).build_trace().unwrap();
        let noreuse = run(&trace, &a800(), AllocatorKind::StallocNoReuse);
        let full = run(&trace, &a800(), AllocatorKind::Stalloc);
        let static_bytes = full.plan_stats.map(|s| s.peak_static_demand).unwrap_or(0);
        t.push_row(vec![
            label.to_string(),
            gib(full.report.peak_requested),
            gib(static_bytes),
            gib(noreuse.counters.map(|c| c.fallback_bytes_peak).unwrap_or(0)),
            gib(full.counters.map(|c| c.fallback_bytes_peak).unwrap_or(0)),
        ]);
    }
    t
}

/// Strategy-portfolio comparison: packing efficiency and synthesis time
/// of every registered solver strategy across the model zoo, plus the
/// portfolio's (deterministic) winner per workload.
pub fn strategy_comparison() -> Table {
    use stalloc_core::profile_trace;
    use stalloc_solver::registry;

    let mut headers: Vec<String> = vec!["workload".into()];
    headers.extend(registry().iter().map(|s| format!("{} eff (ms)", s.name())));
    headers.push("portfolio winner".into());
    let mut t = Table {
        title: "Strategy portfolio: packing efficiency per strategy (higher is better)".into(),
        headers,
        rows: Vec::new(),
    };
    let jobs: Vec<(&str, trace_gen::TrainJob)> = vec![
        ("GPT-2-N", configs::gpt2_job(OptimConfig::naive(), false)),
        ("GPT-2-VPP", configs::gpt2_job(OptimConfig::naive(), true)),
        ("Llama2-7B-R", configs::llama2_job(OptimConfig::r(), false)),
        (
            "Qwen1.5-MoE-N",
            configs::moe_job(OptimConfig::naive(), false),
        ),
    ];
    for (label, job) in jobs {
        let trace = job.build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let config = stalloc_core::SynthConfig::default();
        // One real race per workload: the table's cells and its winner
        // column come from the same `CandidateReport`s the portfolio
        // itself produced, so the table can never disagree with what
        // `--strategy portfolio` would actually pick.
        let outcome = stalloc_solver::synthesize_portfolio(&profile, &config);
        let mut row = vec![label.to_string()];
        for c in &outcome.candidates {
            row.push(if c.valid {
                format!(
                    "{:.4} ({:.0})",
                    c.packing_efficiency,
                    c.elapsed.as_secs_f64() * 1e3
                )
            } else {
                "invalid".to_string()
            });
        }
        row.push(
            outcome
                .candidates
                .iter()
                .find(|c| c.winner)
                .map(|c| c.strategy.name().to_string())
                .unwrap_or_else(|| "none (baseline fallback)".to_string()),
        );
        t.push_row(row);
    }
    t
}

/// Incremental re-planning lineup: serves a Chronos-style per-stage
/// profile family through one in-process plan server and returns its
/// final metrics — stage 0 lands cold, every later stage arrives as a
/// `PlanDelta` edit script against its predecessor and is patched from
/// the cached plan, and a repeat pass hits the LRU. The three tiers'
/// latency histograms are the measurement: `patched` must sit strictly
/// between `lru` and `miss`.
pub fn delta_replan_metrics() -> stalloc_core::ServeMetrics {
    use stalloc_core::{profile_trace, SynthConfig};
    use stalloc_served::{PlanClient, PlanServer, ServeConfig};

    let family: Vec<stalloc_core::ProfiledRequests> = trace_gen::TrainJob::new(
        trace_gen::ModelSpec::gpt2_345m(),
        trace_gen::ParallelConfig::new(1, 4, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(8)
    .with_iterations(2)
    .stage_family()
    .iter()
    .map(|job| profile_trace(&job.build_trace().expect("valid job"), 1).expect("profiled"))
    .collect();

    let server = PlanServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("loopback server");
    let mut client = PlanClient::connect(server.addr()).expect("connect");
    let config = SynthConfig::default();

    // Stage 0 is the family's one cold synthesis; it also teaches the
    // server the base profile the first delta refers to.
    client.plan(&family[0], &config).expect("cold plan");
    // Each later stage rides as an edit script against its predecessor;
    // the server patches the predecessor's plan instead of synthesizing
    // (and learns the applied profile, so the chain never re-sends a
    // full profile).
    for pair in family.windows(2) {
        let r = client
            .plan_delta(&pair[0], &pair[1], &config)
            .expect("delta plan");
        assert_eq!(r.source, stalloc_core::PlanSource::Patched, "stage patched");
    }
    // A second pass over the whole family is pure LRU traffic.
    for profile in &family {
        client.plan(profile, &config).expect("warm plan");
    }
    let metrics = server.metrics();
    server.shutdown();
    metrics
}

/// The re-planning lineup as a renderable table: one row per cache
/// tier (`lru` / `patched` / `miss`), its request count and latency
/// percentiles, from one live [`delta_replan_metrics`] run.
pub fn delta_replan() -> Table {
    let metrics = delta_replan_metrics();
    let mut t = Table::new(
        "Incremental re-planning: server-side latency per tier \
         (GPT-2 Chronos stage family, pp=4)",
        &["tier", "requests", "p50 (µs)", "p90 (µs)", "p99 (µs)"],
    );
    for tier in &metrics.tiers {
        let Some((p50, p90, p99)) = tier.hist.percentiles() else {
            continue; // tier never exercised
        };
        t.push_row(vec![
            tier.name.clone(),
            tier.hist.total().to_string(),
            p50.to_string(),
            p90.to_string(),
            p99.to_string(),
        ]);
    }
    t
}

/// Ablation study: the design choices DESIGN.md calls out.
pub fn ablations() -> Table {
    use stalloc_core::{profile_trace, synthesize, SynthConfig};
    let mut t = Table::new(
        "Ablations: plan pool size under disabled mechanisms (GiB; lower is better)",
        &[
            "workload",
            "full",
            "no fusion",
            "no gap insertion",
            "ascending sizes",
        ],
    );
    let jobs: Vec<(&str, trace_gen::TrainJob)> = vec![
        ("GPT-2-R", configs::gpt2_job(OptimConfig::r(), false)),
        ("Llama2-7B-VR", configs::llama2_job(OptimConfig::r(), true)),
        ("Qwen-MoE-R", configs::moe_job(OptimConfig::r(), false)),
    ];
    for (label, job) in jobs {
        let trace = job.build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let pool = |cfg: SynthConfig| -> String {
            let plan = synthesize(&profile, &cfg);
            plan.validate().expect("sound");
            gib(plan.pool_size)
        };
        t.push_row(vec![
            label.to_string(),
            pool(SynthConfig::default()),
            pool(SynthConfig {
                enable_fusion: false,
                ..SynthConfig::default()
            }),
            pool(SynthConfig {
                enable_gap_insertion: false,
                ..SynthConfig::default()
            }),
            pool(SynthConfig {
                ascending_sizes: true,
                ..SynthConfig::default()
            }),
        ]);
    }
    t
}
