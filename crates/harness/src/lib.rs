//! Experiment harness for the STAlloc reproduction.
//!
//! Glues the workload generator, the simulated device, the baseline
//! allocators and STAlloc together:
//!
//! * [`mod@replay`] — drives an allocator with a trace, measures the paper's
//!   metrics (peak allocated `M_a`, peak reserved `M_r`, efficiency,
//!   OOM) and enforces correctness oracles (no overlapping live tensors);
//! * [`throughput`] — converts workload metadata + allocator overhead into
//!   iteration time and TFLOPS;
//! * [`configs`] — the training jobs behind every table/figure;
//! * [`experiments`] — one function per paper table/figure;
//! * [`plan_cache`] — fingerprint-keyed plan reuse across runs (in-memory
//!   memo, an optional `STALLOC_PLAN_SERVER` remote planning daemon, and
//!   an optional `STALLOC_PLAN_CACHE` disk store);
//! * [`table`] — plain-text table rendering.

pub mod configs;
pub mod experiments;
pub mod plan_cache;
pub mod replay;
pub mod runner;
pub mod table;
pub mod throughput;

pub use plan_cache::{
    latency_summary, remote_planned, PlanCacheStats, PLAN_CACHE_ENV, PLAN_SERVER_ENV,
};
pub use replay::{replay, ReplayOptions, ReplayReport};
pub use runner::{build_allocator, run, run_lineup, AllocatorKind, RunResult};
pub use table::{gib, pct, Table};
pub use throughput::{estimate, ThroughputReport};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn small_trace() -> trace_gen::Trace {
        TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 4, 1),
            OptimConfig::r(),
        )
        .with_mbs(2)
        .with_seq(512)
        .with_microbatches(8)
        .with_iterations(2)
        .build_trace()
        .unwrap()
    }

    #[test]
    fn replay_all_allocators_without_oom() {
        let trace = small_trace();
        let spec = DeviceSpec::test_device(16 << 30);
        for kind in [
            AllocatorKind::Native,
            AllocatorKind::Torch20,
            AllocatorKind::Torch23,
            AllocatorKind::TorchEs,
            AllocatorKind::GmLake(64 << 20),
            AllocatorKind::Stalloc,
            AllocatorKind::StallocNoReuse,
        ] {
            let r = run(&trace, &spec, kind);
            assert!(!r.report.oom, "{:?} OOMed: {:?}", kind, r.report.oom_detail);
            assert!(r.report.peak_reserved >= r.report.peak_requested / 2);
            assert_eq!(r.report.alloc_ops, r.report.free_ops + leaked(&trace));
        }
    }

    fn leaked(trace: &trace_gen::Trace) -> u64 {
        trace.validate().unwrap() as u64
    }

    #[test]
    fn stalloc_beats_torch_on_fragmentation() {
        let trace = small_trace();
        let spec = DeviceSpec::test_device(16 << 30);
        let torch = run(&trace, &spec, AllocatorKind::Torch23);
        let st = run(&trace, &spec, AllocatorKind::Stalloc);
        assert!(
            st.report.efficiency() >= torch.report.efficiency(),
            "STAlloc {:.3} vs Torch {:.3}",
            st.report.efficiency(),
            torch.report.efficiency()
        );
        assert!(
            st.report.efficiency() > 0.9,
            "STAlloc efficiency {:.3}",
            st.report.efficiency()
        );
        let c = st.counters.unwrap();
        assert_eq!(c.stomps_avoided, 0, "plan divergence on a static trace");
        // The only unplanned statics are the init-time autotuning probes
        // (2 per layer), which predate the profiled window by design.
        assert_eq!(c.static_fallback, 12, "only autotune probes fall back");
    }

    #[test]
    fn native_allocator_has_no_fragmentation() {
        let trace = small_trace();
        let spec = DeviceSpec::test_device(16 << 30);
        let r = run(&trace, &spec, AllocatorKind::Native);
        assert!(r.report.efficiency() > 0.999);
    }

    #[test]
    fn oom_reported_for_tiny_device() {
        let trace = small_trace();
        let spec = DeviceSpec::test_device(64 << 20);
        let r = run(&trace, &spec, AllocatorKind::Torch23);
        assert!(r.report.oom);
        assert!(r.report.oom_detail.is_some());
        assert!(r.throughput.is_none());
    }

    #[test]
    fn delta_replan_lands_between_hit_and_cold() {
        let metrics = experiments::delta_replan_metrics();
        let median = |name: &str| {
            metrics
                .tiers
                .iter()
                .find(|t| t.name == name)
                .and_then(|t| t.hist.quantile(0.5))
                .unwrap_or_else(|| panic!("tier {name} never exercised"))
        };
        let (lru, patched, miss) = (median("lru"), median("patched"), median("miss"));
        // The acceptance bar: a patched re-plan is strictly cheaper than
        // a cold synthesis and strictly dearer than an LRU hit.
        assert!(
            lru < patched && patched < miss,
            "tier medians out of order: lru {lru}µs, patched {patched}µs, miss {miss}µs"
        );
        // The whole family after stage 0 was patched, never synthesized.
        assert_eq!(metrics.stats.misses, 1);
        assert_eq!(metrics.stats.delta_patched, 3);
        // The rendered lineup carries the same three tiers.
        let table = experiments::delta_replan().render();
        for tier in ["lru", "patched", "miss"] {
            assert!(table.contains(tier), "{table}");
        }
    }

    #[test]
    fn moe_dynamic_requests_are_reused_or_fall_back() {
        let trace = TrainJob::new(
            ModelSpec::qwen15_moe_a27b(),
            ParallelConfig::new(1, 1, 8).with_ep(4),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(512)
        .with_microbatches(2)
        .with_iterations(3)
        .build_trace()
        .unwrap();
        // The unsharded MoE optimizer state alone needs ~75 GiB.
        let spec = DeviceSpec::test_device(256 << 30);
        let full = run(&trace, &spec, AllocatorKind::Stalloc);
        let noreuse = run(&trace, &spec, AllocatorKind::StallocNoReuse);
        let cf = full.counters.unwrap();
        let cn = noreuse.counters.unwrap();
        assert!(cf.dynamic_reused > 0, "reuse path exercised: {cf:?}");
        assert_eq!(cn.dynamic_reused, 0);
        assert!(
            cf.fallback_bytes_peak <= cn.fallback_bytes_peak,
            "reuse reduces fallback pressure"
        );
        assert!(!full.report.oom && !noreuse.report.oom);
    }
}
