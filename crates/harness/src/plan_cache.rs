//! Cache-aware plan synthesis for experiment runs.
//!
//! Most experiment binaries replay the same trace through several
//! allocator kinds (e.g. `Stalloc` and `StallocNoReuse` in every lineup),
//! and plan synthesis is the expensive offline step of each STAlloc run.
//! [`planned`] keys synthesis by the job's [`Fingerprint`] and serves
//! repeats from:
//!
//! 1. a process-wide in-memory memo (always on),
//! 2. an optional `stalloc serve` daemon, enabled by pointing the
//!    `STALLOC_PLAN_SERVER` environment variable at its address — so
//!    concurrent experiment lineups across *machines* share one
//!    synthesis, and
//! 3. an optional on-disk [`PlanStore`], enabled by pointing the
//!    `STALLOC_PLAN_CACHE` environment variable at a directory — so plans
//!    survive across experiment *processes* (`all_experiments`, the
//!    figure binaries, repeated bench runs).
//!
//! Remote and disk failures are deliberately non-fatal: the experiment
//! falls back to plain synthesis. [`stats`] exposes hit counters so runs
//! can report cache effectiveness.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use stalloc_core::{fingerprint_job, Fingerprint, Plan, ProfiledRequests, SynthConfig};
use stalloc_obs::{HistogramSnapshot, LatencyHistogram};
use stalloc_served::PlanClient;
use stalloc_solver::synthesize_strategy;
use stalloc_store::PlanStore;

/// Environment variable naming the on-disk plan cache directory.
pub const PLAN_CACHE_ENV: &str = "STALLOC_PLAN_CACHE";

/// Environment variable naming a `stalloc serve` daemon address.
pub const PLAN_SERVER_ENV: &str = "STALLOC_PLAN_SERVER";

/// Cumulative cache counters for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the in-memory memo.
    pub memo_hits: u64,
    /// Plans served by a remote plan server (whether the server itself
    /// hit its cache or synthesized is the server's business).
    pub remote: u64,
    /// Plans decoded from the on-disk store.
    pub store_hits: u64,
    /// Plans synthesized from scratch.
    pub synthesized: u64,
}

struct CacheState {
    memo: HashMap<Fingerprint, Plan>,
    stats: PlanCacheStats,
}

fn state() -> &'static Mutex<CacheState> {
    static STATE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(CacheState {
            memo: HashMap::new(),
            stats: PlanCacheStats::default(),
        })
    })
}

/// Tier names for [`latency`], in its output order.
const LATENCY_TIERS: [&str; 4] = ["memo", "remote", "store", "synthesized"];

/// Per-tier `planned` latency histograms (microseconds), indexed to
/// match [`LATENCY_TIERS`].
fn latency_hists() -> &'static [LatencyHistogram; 4] {
    static HISTS: OnceLock<[LatencyHistogram; 4]> = OnceLock::new();
    HISTS.get_or_init(|| std::array::from_fn(|_| LatencyHistogram::new()))
}

fn disk_store() -> Option<&'static PlanStore> {
    static STORE: OnceLock<Option<PlanStore>> = OnceLock::new();
    STORE
        .get_or_init(|| {
            let dir = std::env::var(PLAN_CACHE_ENV).ok()?;
            if dir.is_empty() {
                return None;
            }
            PlanStore::open(dir).ok()
        })
        .as_ref()
}

/// Which tier ultimately produced a plan (for stats accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Remote,
    Store,
    Synthesized,
}

/// The trace id every remote plan request from this process carries —
/// minted once per experiment process, so a whole lineup's requests
/// (across connections) group under one trace in the server's span ring
/// and trace log. `{:032x}` renders the wire form.
pub fn experiment_trace_id() -> u128 {
    static ID: OnceLock<u128> = OnceLock::new();
    *ID.get_or_init(|| stalloc_obs::id_gen().next_trace_id())
}

/// Plans `(profile, config)` against a `stalloc serve` daemon at `addr`.
/// The received plan is validated by the client; errors surface so the
/// caller can decide between failing and falling back.
///
/// Both payloads travel in the binary codecs (the `PlanClient`
/// defaults): the profile as a `ProfileBin` + raw `PROF` frame pair, the
/// plan back as a `PlanBin` + raw `STPL` frame pair — so a lineup's
/// repeat jobs cost the server an LRU lookup, not a serde round trip.
pub fn remote_planned(
    addr: &str,
    profile: &ProfiledRequests,
    config: &SynthConfig,
) -> Result<Plan, String> {
    let mut client = PlanClient::connect(addr)
        .map_err(|e| e.to_string())?
        .with_trace_id(experiment_trace_id());
    let remote = client.plan(profile, config).map_err(|e| e.to_string())?;
    Ok(remote.plan)
}

/// Returns the plan for `(profile, config)`, consulting the memo, the
/// optional remote plan server, and the optional disk store — in that
/// order — before synthesizing.
pub fn planned(profile: &ProfiledRequests, config: &SynthConfig) -> Plan {
    let started = Instant::now();
    let fp = fingerprint_job(profile, config);
    {
        let mut s = state().lock().expect("plan cache lock");
        if let Some(plan) = s.memo.get(&fp) {
            let plan = plan.clone();
            s.stats.memo_hits += 1;
            latency_hists()[0].record(started.elapsed().as_micros() as u64);
            return plan;
        }
    }

    // Remote tier: a shared daemon amortizes synthesis across processes
    // and machines; any failure degrades to the local tiers.
    let remote_plan = std::env::var(PLAN_SERVER_ENV)
        .ok()
        .filter(|addr| !addr.is_empty())
        .and_then(|addr| remote_planned(&addr, profile, config).ok());

    // A disk artifact that decodes but fails the soundness check (e.g. a
    // bit flip past the codec header) must not reach the allocator.
    let (plan, tier) = match remote_plan {
        Some(plan) => (plan, Tier::Remote),
        None => {
            let disk_plan = disk_store()
                .and_then(|store| store.get(fp).ok().flatten())
                .filter(|plan| plan.validate().is_ok());
            match disk_plan {
                Some(plan) => (plan, Tier::Store),
                None => {
                    // Strategy-aware: a lineup asking for the portfolio
                    // gets the raced winner, keyed by its own fingerprint.
                    let plan = synthesize_strategy(profile, config);
                    if let Some(store) = disk_store() {
                        let _ = store.put(fp, &plan); // best effort
                    }
                    (plan, Tier::Synthesized)
                }
            }
        }
    };

    // A remotely served plan still lands in the local disk store, so the
    // configured cross-process cache keeps working if the server later
    // becomes unreachable.
    if tier == Tier::Remote {
        if let Some(store) = disk_store() {
            let _ = store.put(fp, &plan); // best effort
        }
    }

    let mut s = state().lock().expect("plan cache lock");
    match tier {
        Tier::Remote => s.stats.remote += 1,
        Tier::Store => s.stats.store_hits += 1,
        Tier::Synthesized => s.stats.synthesized += 1,
    }
    let hist_index = match tier {
        Tier::Remote => 1,
        Tier::Store => 2,
        Tier::Synthesized => 3,
    };
    latency_hists()[hist_index].record(started.elapsed().as_micros() as u64);
    s.memo.insert(fp, plan.clone());
    plan
}

/// This process's cumulative cache counters.
pub fn stats() -> PlanCacheStats {
    state().lock().expect("plan cache lock").stats
}

/// Per-tier `planned` latency distributions (microseconds), in
/// memo/remote/store/synthesized order. Tiers never exercised report an
/// empty histogram.
pub fn latency() -> Vec<(&'static str, HistogramSnapshot)> {
    LATENCY_TIERS
        .iter()
        .zip(latency_hists().iter())
        .map(|(name, h)| (*name, h.snapshot()))
        .collect()
}

/// One `tier n p50/p90/p99` line per exercised tier — for experiment
/// binaries that report cache effectiveness.
pub fn latency_summary() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (name, h) in latency() {
        let n = h.total();
        let Some((p50, p90, p99)) = h.percentiles() else {
            continue; // tier never exercised
        };
        let _ = writeln!(
            out,
            "plan cache tier {name:<11} n {n:>6}  p50 {p50:>9} µs  p90 {p90:>9} µs  p99 {p99:>9} µs"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    #[test]
    fn memo_serves_repeat_jobs() {
        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(4)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        let profile = stalloc_core::profile_trace(&trace, 1).unwrap();
        let config = SynthConfig::default();

        let before = stats();
        let a = planned(&profile, &config);
        let mid = stats();
        let b = planned(&profile, &config);
        let after = stats();

        assert_eq!(a, b);
        // First call either synthesized or (if another test populated the
        // memo already) hit; the second call must be a memo hit.
        assert!(
            mid.synthesized + mid.memo_hits + mid.store_hits + mid.remote
                > before.synthesized + before.memo_hits + before.store_hits + before.remote
        );
        // Strict inequality, not an exact delta: other tests in this
        // process share the global counters and may interleave their own
        // memo hits between the two reads.
        assert!(after.memo_hits > mid.memo_hits);

        // Every planned() call landed in exactly one latency histogram,
        // so the per-tier sample counts mirror the counters.
        let lat = latency();
        assert_eq!(
            lat.iter().map(|(name, _)| *name).collect::<Vec<_>>(),
            vec!["memo", "remote", "store", "synthesized"]
        );
        let samples: u64 = lat.iter().map(|(_, h)| h.total()).sum();
        let calls = after.memo_hits + after.remote + after.store_hits + after.synthesized;
        // ≥, not ==: tests in this binary run concurrently, and another
        // planned() call may land between the two global reads above.
        assert!(
            samples >= calls,
            "one latency sample per planned() call ({samples} < {calls})"
        );
        // The summary renders a line per exercised tier, µs-scaled.
        let summary = latency_summary();
        assert!(summary.contains("memo"), "{summary}");
        assert!(summary.contains("µs"), "{summary}");
    }

    #[test]
    fn remote_planned_round_trips_through_a_server() {
        use stalloc_served::{PlanServer, ServeConfig};

        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(2)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        let profile = stalloc_core::profile_trace(&trace, 1).unwrap();
        let config = SynthConfig::default();

        let server = PlanServer::start(ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let remote = remote_planned(&addr, &profile, &config).unwrap();
        assert_eq!(remote, stalloc_core::synthesize(&profile, &config));
        assert_eq!(server.stats().plan_requests, 1);

        // The request was tagged with this process's experiment trace
        // id: the server's span ring must hold it under that id.
        let hex = format!("{:032x}", experiment_trace_id());
        let mut probe = PlanClient::connect(&addr).unwrap();
        // The worker records its span just after writing the response;
        // retry briefly rather than racing it.
        let mut spans = Vec::new();
        for _ in 0..50 {
            spans = probe.trace_get(&hex).unwrap();
            if !spans.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(!spans.is_empty(), "server retained no span for trace {hex}");
        assert!(spans.iter().all(|s| s.trace_id == hex));
        server.shutdown();

        // With the server gone, the remote tier reports (not panics) and
        // `planned` would fall back to local synthesis.
        assert!(remote_planned(&addr, &profile, &config).is_err());
    }
}
