//! Trace replay: drives an allocator with a trace's event stream on a
//! simulated device and reports the paper's metrics.
//!
//! The replay also acts as a correctness oracle: it checks that no two live
//! tensors ever overlap in device address space (memory stomping), that
//! every free matches a live allocation, and that reported byte accounting
//! stays consistent.

use std::collections::BTreeMap;

use allocators::{AllocError, AllocRequest, GpuAllocator};
use gpu_sim::{Device, DeviceSpec, LatencyModel};
use trace_gen::{Trace, TraceEvent};

/// Replay options.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Verify that live allocations never overlap (stomping oracle).
    pub check_overlaps: bool,
    /// Latency model for the device.
    pub latency: LatencyModel,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            check_overlaps: true,
            latency: LatencyModel::default(),
        }
    }
}

/// Outcome of replaying one trace through one allocator.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Allocator display name.
    pub allocator: String,
    /// Whether the run hit a training-visible OOM.
    pub oom: bool,
    /// OOM detail (event index and message).
    pub oom_detail: Option<String>,
    /// Peak concurrently-requested bytes, 512 B-rounded — the paper's
    /// `M_a` (allocator-independent).
    pub peak_requested: u64,
    /// Allocator's peak reserved bytes — the paper's `M_r`.
    pub peak_reserved: u64,
    /// Allocator's peak granted bytes (diagnostics).
    pub peak_granted: u64,
    /// Device-level peak physical usage.
    pub device_peak: u64,
    /// Allocation requests served.
    pub alloc_ops: u64,
    /// Free requests served.
    pub free_ops: u64,
    /// Total VMM driver operations.
    pub vmm_ops: u64,
    /// Simulated driver/allocator time during the final iteration, ns
    /// (steady-state allocator overhead; excludes warm-up effects).
    pub steady_overhead_ns: u64,
    /// Simulated driver/allocator time across the entire run, ns.
    pub total_overhead_ns: u64,
}

impl ReplayReport {
    /// Memory efficiency `E = M_a / M_r` (§2.2). Reported as 1.0 when
    /// nothing was reserved.
    pub fn efficiency(&self) -> f64 {
        if self.peak_reserved == 0 {
            1.0
        } else {
            (self.peak_requested as f64 / self.peak_reserved as f64).min(1.0)
        }
    }

    /// Fragmentation ratio `1 - E`.
    pub fn frag_ratio(&self) -> f64 {
        1.0 - self.efficiency()
    }

    /// Fragmentation bytes `M_r - M_a` (clamped at zero).
    pub fn frag_bytes(&self) -> u64 {
        self.peak_reserved.saturating_sub(self.peak_requested)
    }
}

/// Replays `trace` through `alloc` on a fresh device of `spec`.
///
/// On allocator OOM the replay stops and the report carries `oom = true`
/// with the metrics observed so far — matching how a real training job dies.
///
/// # Panics
///
/// Panics if the oracle detects overlapping live allocations, a double
/// free, or an internal allocator error: those are bugs, not workload
/// outcomes.
pub fn replay(
    trace: &Trace,
    spec: &DeviceSpec,
    alloc: &mut dyn GpuAllocator,
    opts: &ReplayOptions,
) -> ReplayReport {
    let mut dev = Device::with_latency(spec.clone(), opts.latency.clone());
    // Live granted ranges for the overlap oracle: start -> (end, tensor).
    let mut live_ranges: BTreeMap<u64, (u64, trace_gen::TensorId)> = BTreeMap::new();
    // Requested (512 B-rounded) size and granted address of each live
    // tensor.
    let mut live_sizes: std::collections::HashMap<trace_gen::TensorId, (u64, u64)> =
        std::collections::HashMap::new();
    let mut requested_live = 0u64;
    let mut peak_requested = 0u64;
    let mut alloc_ops = 0u64;
    let mut free_ops = 0u64;
    let mut oom = false;
    let mut oom_detail = None;
    let mut iter_overhead_start = 0u64;
    let mut steady_overhead_ns = 0u64;

    'outer: for (i, ev) in trace.events.iter().enumerate() {
        match ev {
            TraceEvent::IterationBegin(it) => {
                alloc.iteration_begin(&mut dev, *it);
                iter_overhead_start = dev.stats().driver_time_ns;
            }
            TraceEvent::IterationEnd(_) => {
                steady_overhead_ns = dev.stats().driver_time_ns - iter_overhead_start;
            }
            TraceEvent::PhaseBegin(p) => {
                let info = trace.phases[p.0 as usize];
                alloc.phase_begin(&mut dev, *p, &info);
            }
            TraceEvent::ModuleEnter(m) => alloc.module_enter(&mut dev, *m),
            TraceEvent::ModuleExit(m) => alloc.module_exit(&mut dev, *m),
            TraceEvent::Alloc {
                id, size, dynamic, ..
            } => {
                let req = AllocRequest {
                    tensor: *id,
                    size: *size,
                    dynamic: *dynamic,
                };
                match alloc.malloc(&mut dev, &req) {
                    Ok(a) => {
                        alloc_ops += 1;
                        let rounded = round512(*size);
                        live_sizes.insert(*id, (rounded, a.addr));
                        requested_live += rounded;
                        peak_requested = peak_requested.max(requested_live);
                        if opts.check_overlaps {
                            check_overlap(&live_ranges, a.addr, a.granted, *id);
                            live_ranges.insert(a.addr, (a.addr + a.granted, *id));
                        }
                    }
                    Err(e) if e.is_oom() => {
                        oom = true;
                        oom_detail = Some(format!("event {i}: {e}"));
                        break 'outer;
                    }
                    Err(e) => panic!("allocator bug during replay at event {i}: {e}"),
                }
            }
            TraceEvent::Free { id } => match alloc.free(&mut dev, *id) {
                Ok(_granted) => {
                    free_ops += 1;
                    if let Some((sz, addr)) = live_sizes.remove(id) {
                        requested_live -= sz;
                        if opts.check_overlaps {
                            live_ranges.remove(&addr);
                        }
                    }
                }
                Err(e) => panic!("allocator bug on free at event {i}: {e}"),
            },
        }
    }

    let stats = alloc.stats();
    let dstats = dev.stats();
    ReplayReport {
        allocator: alloc.name(),
        oom,
        oom_detail,
        peak_requested,
        peak_reserved: stats.peak_reserved,
        peak_granted: stats.peak_allocated,
        device_peak: dstats.peak_in_use,
        alloc_ops,
        free_ops,
        vmm_ops: dstats.vmm.total_ops(),
        steady_overhead_ns,
        total_overhead_ns: dstats.driver_time_ns,
    }
}

fn round512(size: u64) -> u64 {
    512 * size.max(1).div_ceil(512)
}

fn check_overlap(
    ranges: &BTreeMap<u64, (u64, trace_gen::TensorId)>,
    addr: u64,
    len: u64,
    id: trace_gen::TensorId,
) {
    let end = addr + len;
    // Predecessor may extend into us; successor may start before our end.
    if let Some((&_s, &(e, other))) = ranges.range(..=addr).next_back() {
        assert!(
            e <= addr,
            "STOMP: tensor {id:?} [{addr:#x}, {end:#x}) overlaps {other:?} ending at {e:#x}"
        );
    }
    if let Some((&s, &(e, other))) = ranges.range(addr..end).next() {
        panic!("STOMP: tensor {id:?} [{addr:#x}, {end:#x}) overlaps {other:?} [{s:#x}, {e:#x})");
    }
}

/// Convenience wrapper: OOM-tolerant `AllocError` propagation for callers
/// that want a `Result` instead of a report flag.
pub fn replay_expect_ok(
    trace: &Trace,
    spec: &DeviceSpec,
    alloc: &mut dyn GpuAllocator,
    opts: &ReplayOptions,
) -> Result<ReplayReport, AllocError> {
    let report = replay(trace, spec, alloc, opts);
    if report.oom {
        Err(AllocError::OutOfMemory {
            requested: 0,
            reserved: report.peak_reserved,
            device_free: 0,
        })
    } else {
        Ok(report)
    }
}
