//! Shared experiment runner: builds allocators by kind, replays a trace,
//! and bundles memory + throughput results.

use allocators::{
    CachingAllocator, CachingConfig, ExpandableAllocator, GmLakeAllocator, GmLakeConfig,
    GpuAllocator, NativeAllocator,
};
use gpu_sim::DeviceSpec;
use stalloc_core::{profile_trace, RuntimeConfig, StallocAllocator, SynthConfig};
use trace_gen::Trace;

use crate::replay::{replay, ReplayOptions, ReplayReport};
use crate::throughput::{estimate, ThroughputReport};

/// The allocators under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// PyTorch 2.0 caching allocator.
    Torch20,
    /// PyTorch 2.3 caching allocator.
    Torch23,
    /// PyTorch 2.6 caching allocator.
    Torch26,
    /// PyTorch expandable segments.
    TorchEs,
    /// GMLake with the given `fragLimit` in bytes.
    GmLake(u64),
    /// Native cudaMalloc/cudaFree (the profiler's allocator).
    Native,
    /// STAlloc (full system).
    Stalloc,
    /// STAlloc with dynamic reuse disabled (Fig. 13 ablation).
    StallocNoReuse,
}

impl AllocatorKind {
    /// Display name used in tables.
    pub fn label(&self) -> String {
        match self {
            AllocatorKind::Torch20 => "Torch 2.0".into(),
            AllocatorKind::Torch23 => "Torch 2.3".into(),
            AllocatorKind::Torch26 => "Torch 2.6".into(),
            AllocatorKind::TorchEs => "Torch ES".into(),
            AllocatorKind::GmLake(_) => "GMLake".into(),
            AllocatorKind::Native => "Native".into(),
            AllocatorKind::Stalloc => "STAlloc".into(),
            AllocatorKind::StallocNoReuse => "STAlloc w/o reuse".into(),
        }
    }

    /// The default lineup of Fig. 8 and Fig. 10–12.
    pub fn paper_lineup() -> Vec<AllocatorKind> {
        vec![
            AllocatorKind::Torch20,
            AllocatorKind::GmLake(512 << 20),
            AllocatorKind::Torch23,
            AllocatorKind::TorchEs,
            AllocatorKind::Stalloc,
        ]
    }

    /// Whether this allocator requires the VMM API.
    pub fn needs_vmm(&self) -> bool {
        matches!(self, AllocatorKind::TorchEs | AllocatorKind::GmLake(_))
    }
}

/// One experiment result: replay metrics plus modelled throughput.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Allocator kind.
    pub kind: AllocatorKind,
    /// Replay metrics.
    pub report: ReplayReport,
    /// Modelled throughput (None when the run OOMed).
    pub throughput: Option<ThroughputReport>,
    /// Plan statistics (STAlloc kinds only).
    pub plan_stats: Option<stalloc_core::PlanStats>,
    /// Runtime counters (STAlloc kinds only).
    pub counters: Option<stalloc_core::RuntimeCounters>,
}

/// Builds an allocator instance. STAlloc kinds profile iteration 1 of the
/// trace and synthesize a plan first (the offline phase of the paper).
pub fn build_allocator(kind: AllocatorKind, trace: &Trace) -> Box<dyn GpuAllocator> {
    match kind {
        AllocatorKind::Torch20 => Box::new(CachingAllocator::new(CachingConfig::torch_2_0())),
        AllocatorKind::Torch23 => Box::new(CachingAllocator::new(CachingConfig::torch_2_3())),
        AllocatorKind::Torch26 => Box::new(CachingAllocator::new(CachingConfig::torch_2_6())),
        AllocatorKind::TorchEs => Box::new(ExpandableAllocator::new()),
        AllocatorKind::GmLake(frag) => {
            Box::new(GmLakeAllocator::new(GmLakeConfig::with_frag_limit(frag)))
        }
        AllocatorKind::Native => Box::new(NativeAllocator::new()),
        AllocatorKind::Stalloc | AllocatorKind::StallocNoReuse => {
            let profile = profile_trace(trace, 1).expect("trace has iteration 1");
            let plan = crate::plan_cache::planned(&profile, &SynthConfig::default());
            let config = RuntimeConfig {
                dynamic_reuse: kind == AllocatorKind::Stalloc,
            };
            Box::new(StallocAllocator::new(plan, config))
        }
    }
}

/// Replays `trace` with allocator `kind` on `spec` and assembles the result.
pub fn run(trace: &Trace, spec: &DeviceSpec, kind: AllocatorKind) -> RunResult {
    let opts = ReplayOptions::default();
    let (report, plan_stats, counters) = match kind {
        AllocatorKind::Stalloc | AllocatorKind::StallocNoReuse => {
            let profile = profile_trace(trace, 1).expect("trace has iteration 1");
            // Lineups replay one trace through several STAlloc kinds; the
            // fingerprint-keyed cache synthesizes the shared plan once.
            let plan = crate::plan_cache::planned(&profile, &SynthConfig::default());
            let stats = plan.stats;
            let mut alloc = StallocAllocator::new(
                plan,
                RuntimeConfig {
                    dynamic_reuse: kind == AllocatorKind::Stalloc,
                },
            );
            let report = replay(trace, spec, &mut alloc, &opts);
            (report, Some(stats), Some(alloc.counters()))
        }
        _ => {
            let mut alloc = build_allocator(kind, trace);
            let report = replay(trace, spec, alloc.as_mut(), &opts);
            (report, None, None)
        }
    };
    let throughput = if report.oom {
        None
    } else {
        Some(estimate(&trace.meta, spec, report.steady_overhead_ns))
    };
    RunResult {
        kind,
        report,
        throughput,
        plan_stats,
        counters,
    }
}

/// Runs a lineup of allocators over one trace, skipping VMM-dependent
/// allocators on platforms without VMM support.
pub fn run_lineup(trace: &Trace, spec: &DeviceSpec, kinds: &[AllocatorKind]) -> Vec<RunResult> {
    kinds
        .iter()
        .filter(|k| spec.supports_vmm || !k.needs_vmm())
        .map(|&k| run(trace, spec, k))
        .collect()
}
