//! Plain-text table rendering for experiment output.

/// A rendered experiment table (one per paper table/figure).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. `"Figure 8(a): GPT-2 memory efficiency"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats bytes as GiB with two decimals.
pub fn gib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats a 0..1 ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "aligned rows");
    }

    #[test]
    fn csv_is_parseable() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(gib(1 << 30), "1.00");
        assert_eq!(pct(0.851), "85.1%");
    }
}
