//! Analytic training-throughput model.
//!
//! Converts a trace's workload metadata plus the measured allocator overhead
//! into iteration time and the TFLOPS-per-GPU figure training frameworks
//! report. The paper's throughput *differences* come from (a) configuration
//! feasibility (OOM or not) and (b) allocator-induced latency; both enter
//! this model directly. Absolute numbers are analytic estimates and are
//! labelled as such in EXPERIMENTS.md.

use gpu_sim::DeviceSpec;
use trace_gen::WorkloadMeta;

/// Model FLOPs utilization assumed for compute time (fraction of peak a
/// well-tuned Megatron job achieves).
pub const MFU: f64 = 0.45;

/// Throughput estimate for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Iteration time in seconds (compute + bubble + comm + allocator).
    pub iter_time_s: f64,
    /// Useful model TFLOPS per GPU.
    pub tflops: f64,
    /// Fraction of iteration time spent in allocator/driver calls.
    pub allocator_overhead_frac: f64,
}

/// Computes iteration time and TFLOPS from workload metadata, the device,
/// and the allocator's steady-state per-iteration overhead (from replay).
pub fn estimate(
    meta: &WorkloadMeta,
    device: &DeviceSpec,
    allocator_overhead_ns: u64,
) -> ThroughputReport {
    let useful_flops = meta.flops_per_iter;
    let compute_s =
        useful_flops * (1.0 + meta.recompute_overhead) / (device.peak_tflops * 1e12 * MFU);
    let with_bubble = compute_s / (1.0 - meta.bubble_fraction).max(0.05);
    let with_comm = with_bubble * (1.0 + meta.comm_fraction);
    let overhead_s = allocator_overhead_ns as f64 / 1e9;
    let iter_time_s = with_comm + overhead_s;
    ThroughputReport {
        iter_time_s,
        tflops: useful_flops / iter_time_s / 1e12,
        allocator_overhead_frac: overhead_s / iter_time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn meta() -> WorkloadMeta {
        TrainJob::new(
            ModelSpec::llama2_7b(),
            ParallelConfig::new(4, 2, 1),
            OptimConfig::r(),
        )
        .with_mbs(4)
        .with_microbatches(8)
        .build_trace()
        .unwrap()
        .meta
    }

    #[test]
    fn overhead_reduces_throughput() {
        let m = meta();
        let dev = DeviceSpec::a800_80g();
        let clean = estimate(&m, &dev, 0);
        let slow = estimate(&m, &dev, 2_000_000_000); // 2 s of allocator time
        assert!(slow.tflops < clean.tflops);
        assert!(slow.allocator_overhead_frac > 0.1);
        assert!(clean.allocator_overhead_frac == 0.0);
    }

    #[test]
    fn tflops_in_plausible_range() {
        let m = meta();
        let dev = DeviceSpec::a800_80g();
        let t = estimate(&m, &dev, 0);
        // Recompute + bubbles keep us below MFU * peak but in a sane band.
        assert!(
            t.tflops > 30.0 && t.tflops < dev.peak_tflops,
            "{}",
            t.tflops
        );
    }

    #[test]
    fn recompute_costs_throughput() {
        let mut m = meta();
        let dev = DeviceSpec::h200_141g();
        let with_r = estimate(&m, &dev, 0);
        m.recompute_overhead = 0.0;
        let without = estimate(&m, &dev, 0);
        assert!(without.tflops > with_r.tflops * 1.2);
    }
}
