//! Minimal flag parsing: `--key value` pairs and boolean `--flag`s.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs; a `--key` followed by another `--…` (or
    /// nothing) is a boolean flag.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                out.values.insert(key.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                out.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(out)
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// String value of `--key`, or an error naming the flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parsed numeric value of `--key` with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Whether the boolean `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv("--model gpt2 --no-fusion --mbs 8")).unwrap();
        assert_eq!(a.get("model"), Some("gpt2"));
        assert!(a.flag("no-fusion"));
        assert_eq!(a.num::<u32>("mbs", 1).unwrap(), 8);
        assert_eq!(a.num::<u32>("seq", 4096).unwrap(), 4096);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&argv("trace.json")).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&argv("--x 1")).unwrap();
        assert!(a.require("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&argv("--mbs abc")).unwrap();
        assert!(a.num::<u32>("mbs", 1).is_err());
    }
}
