//! Flag parsing for the `stalloc` tool: `--key value`, `--key=value`,
//! boolean `--flag`s, and `--help`/`-h` — validated against a per-command
//! [`FlagSpec`] so unknown flags fail fast with a nearest-match
//! suggestion instead of being silently misparsed.

use std::collections::HashMap;

/// The flags one subcommand accepts. `--help`/`-h` is always accepted and
/// never needs declaring.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagSpec {
    /// Flags that consume a value (`--key value` or `--key=value`).
    pub value_flags: &'static [&'static str],
    /// Boolean flags (`--flag`).
    pub bool_flags: &'static [&'static str],
}

impl FlagSpec {
    fn is_value(&self, key: &str) -> bool {
        self.value_flags.contains(&key)
    }

    fn is_bool(&self, key: &str) -> bool {
        self.bool_flags.contains(&key)
    }

    /// Nearest known flag by edit distance, if any is close enough to be
    /// a plausible typo.
    pub fn suggest(&self, key: &str) -> Option<&'static str> {
        nearest(
            key,
            self.value_flags
                .iter()
                .chain(self.bool_flags.iter())
                .copied()
                .chain(std::iter::once("help")),
        )
    }
}

/// Nearest candidate to `key` by edit distance, if any is close enough to
/// be a plausible typo (shared by flag and command suggestions).
pub fn nearest<'a>(key: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let (best, dist) = candidates
        .into_iter()
        .map(|c| (c, edit_distance(key, c)))
        .min_by_key(|&(c, d)| (d, c))?;
    // A typo plausibly mangles up to ~a third of the word; anything
    // further is more likely a different word entirely.
    let budget = (key.len().max(best.len()) / 3).max(2);
    (dist <= budget).then_some(best)
}

/// Levenshtein distance between two ASCII flag names.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` against `spec`. Accepts `--key value` and
    /// `--key=value` for value flags (the `=` form lets values that
    /// themselves start with `--` through unambiguously), bare `--flag`
    /// for booleans, and `--help`/`-h`.
    pub fn parse(argv: &[String], spec: &FlagSpec) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if a == "-h" || a == "--help" {
                out.flags.push("help".into());
                i += 1;
                continue;
            }
            let Some(body) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if let Some((key, value)) = body.split_once('=') {
                if !spec.is_value(key) {
                    return Err(unknown_flag(key, spec, spec.is_bool(key)));
                }
                out.values.insert(key.to_string(), value.to_string());
                i += 1;
            } else if spec.is_value(body) {
                let Some(value) = argv.get(i + 1) else {
                    return Err(format!("--{body} expects a value"));
                };
                out.values.insert(body.to_string(), value.clone());
                i += 2;
            } else if spec.is_bool(body) || body == "help" {
                out.flags.push(body.to_string());
                i += 1;
            } else {
                return Err(unknown_flag(body, spec, false));
            }
        }
        Ok(out)
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// String value of `--key`, or an error naming the flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parsed numeric value of `--key` with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Whether the boolean `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Whether `--help`/`-h` was given.
    pub fn wants_help(&self) -> bool {
        self.flag("help")
    }
}

fn unknown_flag(key: &str, spec: &FlagSpec, is_bool_used_with_value: bool) -> String {
    if is_bool_used_with_value {
        return format!("--{key} is a boolean flag and takes no value");
    }
    match spec.suggest(key) {
        Some(s) => format!("unknown flag '--{key}' (did you mean '--{s}'?)"),
        None => format!("unknown flag '--{key}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: FlagSpec = FlagSpec {
        value_flags: &["model", "mbs", "seq", "input", "x"],
        bool_flags: &["no-fusion"],
    };

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv("--model gpt2 --no-fusion --mbs 8"), &SPEC).unwrap();
        assert_eq!(a.get("model"), Some("gpt2"));
        assert!(a.flag("no-fusion"));
        assert_eq!(a.num::<u32>("mbs", 1).unwrap(), 8);
        assert_eq!(a.num::<u32>("seq", 4096).unwrap(), 4096);
    }

    #[test]
    fn parses_equals_syntax() {
        let a = Args::parse(&argv("--model=gpt2 --mbs=8"), &SPEC).unwrap();
        assert_eq!(a.get("model"), Some("gpt2"));
        assert_eq!(a.num::<u32>("mbs", 1).unwrap(), 8);
        // `=` carries values that would otherwise parse as flags.
        let a = Args::parse(&argv("--model=--weird--"), &SPEC).unwrap();
        assert_eq!(a.get("model"), Some("--weird--"));
        // Empty value and values containing '=' survive.
        let a = Args::parse(&argv("--model= --x=a=b"), &SPEC).unwrap();
        assert_eq!(a.get("model"), Some(""));
        assert_eq!(a.get("x"), Some("a=b"));
    }

    #[test]
    fn value_flags_consume_flag_like_values() {
        // The spec says --model takes a value, so the next token is the
        // value even though it starts with `--`.
        let a = Args::parse(&argv("--model --no-fusion"), &SPEC).unwrap();
        assert_eq!(a.get("model"), Some("--no-fusion"));
        assert!(!a.flag("no-fusion"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("--model"), &SPEC)
            .unwrap_err()
            .contains("expects a value"));
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&argv("trace.json"), &SPEC).is_err());
    }

    #[test]
    fn unknown_flag_suggests_nearest() {
        let err = Args::parse(&argv("--moderl gpt2"), &SPEC).unwrap_err();
        assert!(err.contains("did you mean '--model'"), "{err}");
        let err = Args::parse(&argv("--no-fuson"), &SPEC).unwrap_err();
        assert!(err.contains("did you mean '--no-fusion'"), "{err}");
        // Far-off garbage gets no suggestion.
        let err = Args::parse(&argv("--zzzzqqqqq 1"), &SPEC).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn bool_flag_with_equals_is_an_error() {
        let err = Args::parse(&argv("--no-fusion=yes"), &SPEC).unwrap_err();
        assert!(err.contains("takes no value"), "{err}");
    }

    #[test]
    fn help_is_always_known() {
        for form in ["-h", "--help"] {
            let a = Args::parse(&argv(form), &SPEC).unwrap();
            assert!(a.wants_help());
        }
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&argv("--x 1"), &SPEC).unwrap();
        assert!(a.require("input").unwrap_err().contains("--input"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(&argv("--mbs abc"), &SPEC).unwrap();
        assert!(a.num::<u32>("mbs", 1).is_err());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("model", "model"), 0);
        assert_eq!(edit_distance("model", "mode"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
