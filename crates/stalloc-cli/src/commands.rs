//! Subcommand implementations for the `stalloc` tool.

use std::fs;

use gpu_sim::DeviceSpec;
use harness::{run, AllocatorKind};
use stalloc_core::wire::NamedHistogram;
use stalloc_core::{
    diff_profiles, fingerprint_profile, profile_trace, EditOp, Plan, ProfileEncoding,
    ProfiledRequests, ServeMetrics, StrategyChoice, SynthConfig, FINGERPRINT_VERSION,
    SYNTH_ALGO_VERSION,
};
use stalloc_obs::chrome::{lanes_timeline, merged_request_timeline, Lane, SpanView};
use stalloc_obs::{ClientSpanSnapshot, Phase};
use stalloc_served::{ClientError, PlanClient, PlanServer, ServeConfig};
use stalloc_solver::{registry, synthesize_portfolio, synthesize_strategy};
use stalloc_store::{
    decode_plan, decode_profile, encode_plan, encode_profile, encode_profile_delta, is_binary_plan,
    is_binary_profile, synthesize_cached,
};
use stalloc_store::{CacheOutcome, PlanStore};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, Trace, TrainJob};

use crate::args::{nearest, Args, FlagSpec};

/// Usage text printed on errors and by `stalloc --help`.
pub const USAGE: &str = "\
usage: stalloc <command> [--flags]
       stalloc <command> --help   for per-command details

commands:
  trace       generate a training memory trace, or convert trace-log
              JSONL files to a Chrome timeline (trace merge|chrome)
  profile     characterize one iteration's requests (paper section 4)
  plan        synthesize the allocation plan (paper section 5),
              locally or against a plan server (--remote; add --trace
              FILE for a merged client+server Chrome timeline, or
              --delta-base BASE to send a PROF-DELTA edit script)
  diff-prof   diff two profiles into the PROF-DELTA edit script and
              summarize its ops and wire size
  show        render a plan's occupancy as ASCII art
  explain     replay a plan into a fragmentation/occupancy timeline
              (table, JSON, or SVG memory map)
  replay      replay a trace through an allocator (paper section 9 metrics)
  serve       run the plan-synthesis daemon over a shared plan cache
  stats       show a live server's counters and latency histograms
  top         refreshing live dashboard for a plan server
  cache       inspect a plan cache directory (ls | gc | clear)
  strategies  list the registered plan-synthesis strategies
  fuzz        fuzz the wire decoders and the plan server (deterministic)
  version     print tool and planner-algorithm versions";

struct Command {
    name: &'static str,
    help: &'static str,
    spec: FlagSpec,
    run: fn(&Args) -> Result<(), String>,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "trace",
        help: "\
usage: stalloc trace --model M --output FILE [flags]
  --model M         gpt2|llama2-7b|qwen2.5-{7b,14b,32b,72b}|qwen1.5-moe
  --output FILE     trace destination (JSON)
  --tp/--pp/--dp N  tensor/pipeline/data parallel degree (default 1)
  --ep N            expert parallel degree (default 1)
  --vpp N           virtual pipeline stages
  --mbs N           micro-batch size (default 1)
  --seq N           sequence length (default: model native)
  --microbatches N  microbatches per iteration (default 4*pp)
  --stage N         pipeline stage the trace observes, 0-based (default
                    0, the most memory-loaded stage under 1F1B; varying
                    it yields the Chronos-style per-stage profile
                    family that `plan --delta-base` serves as deltas)
  --iterations N    iterations to emit (default 3)
  --seed N          workload RNG seed (default 42)
  --optim C         N|R|V|VR|ZR|ZOR optimization combo (default N)

`stalloc trace merge|chrome FILE... [--output OUT.json]` instead
converts `stalloc serve --trace-log` JSONL files into one Chrome
trace-event timeline (see `stalloc trace merge --help`)",
        spec: FlagSpec {
            value_flags: &[
                "model",
                "output",
                "tp",
                "pp",
                "dp",
                "ep",
                "vpp",
                "mbs",
                "seq",
                "microbatches",
                "stage",
                "iterations",
                "seed",
                "optim",
            ],
            bool_flags: &[],
        },
        run: cmd_trace,
    },
    Command {
        name: "profile",
        help: "\
usage: stalloc profile --input TRACE --output FILE [--iteration N]
  --input TRACE     trace JSON produced by `stalloc trace`
  --output FILE     profile destination (JSON)
  --iteration N     1-based iteration to profile (default 1)",
        spec: FlagSpec {
            value_flags: &["input", "output", "iteration"],
            bool_flags: &[],
        },
        run: cmd_profile,
    },
    Command {
        name: "plan",
        help: "\
usage: stalloc plan --input PROFILE --output FILE [flags]
  --input PROFILE   profile JSON produced by `stalloc profile`
  --output FILE     plan destination
  --format F        bin|json (default: bin when FILE ends in
                    .stplan/.bin, else json)
  --strategy S      packing strategy: baseline|bestfit|tmp-order|
                    lookahead, or `portfolio` to race them all and keep
                    the best plan (default baseline; see
                    `stalloc strategies`)
  --cache DIR       consult/populate a plan cache: on a fingerprint hit
                    the plan is loaded and synthesis is skipped
  --remote ADDR     plan via a `stalloc serve` daemon at ADDR instead of
                    synthesizing locally (mutually exclusive with --cache)
  --wire W          with --remote: how the profile travels — `bin`
                    (default: PROF binary codec in a raw frame) or
                    `json` (inline, for pre-binary servers / nc
                    debugging)
  --trace FILE      with --remote: write the request as a merged
                    client+server Chrome trace-event timeline to FILE
                    (load in chrome://tracing or Perfetto; the server's
                    phase spans nest inside the client's await slice,
                    the unaccounted remainder is `net_queue_micros`)
  --delta-base BASE with --remote: send the profile as a PROF-DELTA
                    edit script against the base profile in file BASE
                    (JSON or binary PROF) instead of in full — a server
                    holding the base patches its cached plan in place
                    of a cold synthesis; against a base the server does
                    not hold (or a pre-PlanDelta server) the client
                    transparently retries as a full request
  --no-fusion       disable HomoPhase fusion (ablation; steers the
                    grouped pipelines — baseline, tmp-order — only)
  --no-gaps         disable gap insertion (ablation; baseline only)
  --ascending       process size classes ascending (ablation;
                    baseline only)",
        spec: FlagSpec {
            value_flags: &[
                "input",
                "output",
                "format",
                "strategy",
                "cache",
                "remote",
                "wire",
                "trace",
                "delta-base",
            ],
            bool_flags: &["no-fusion", "no-gaps", "ascending"],
        },
        run: cmd_plan,
    },
    Command {
        name: "strategies",
        help: "\
usage: stalloc strategies
  lists the registered plan-synthesis strategies (usable as
  `stalloc plan --strategy NAME`) plus the `portfolio` meta-strategy
  that races all of them in parallel and keeps the best plan",
        spec: FlagSpec {
            value_flags: &[],
            bool_flags: &[],
        },
        run: cmd_strategies,
    },
    Command {
        name: "show",
        help: "\
usage: stalloc show --input PLAN [--rows N] [--cols N]
  --input PLAN      plan file, binary (.stplan) or JSON — autodetected
  --rows N          occupancy rows (default 16)
  --cols N          occupancy columns (default 72)",
        spec: FlagSpec {
            value_flags: &["input", "rows", "cols"],
            bool_flags: &[],
        },
        run: cmd_show,
    },
    Command {
        name: "replay",
        help: "\
usage: stalloc replay --input TRACE [flags]
  --input TRACE     trace JSON produced by `stalloc trace`
  --allocator A     stalloc|stalloc-noreuse|torch20|torch23|torch26|
                    es|gmlake|native (default stalloc)
  --device D        a800|h200|mi210 (default a800)
  --frag-limit MiB  GMLake fragmentation limit (default 512)",
        spec: FlagSpec {
            value_flags: &["input", "allocator", "device", "frag-limit"],
            bool_flags: &[],
        },
        run: cmd_replay,
    },
    Command {
        name: "serve",
        help: "\
usage: stalloc serve [flags]
  --addr A          bind address (default 127.0.0.1:4547; port 0 picks
                    a free port, printed on startup)
  --workers N       worker threads (default 4)
  --cache DIR       shared on-disk plan store (default: in-memory only)
  --queue N         accept-queue bound before Busy rejections (default 64)
  --lru N           in-process LRU capacity in plans (default 128; 0 off)
  --max-frame-mib N largest accepted request frame (default 64)
  --trace-log FILE  append one JSON line per served request (seq, verb,
                    cache tier, total and per-phase µs) — `tail -f`
                    friendly; off by default
  --trace-log-max-bytes N
                    rotate the trace log when it would exceed N bytes
                    (FILE → FILE.1, one rotated file kept; default:
                    unbounded)
  --metrics-addr A  also serve Prometheus text-format metrics over HTTP
                    at A (`GET /metrics`; port 0 picks a free port,
                    printed on startup); off by default
  --slowest N       retain the N slowest-ever request spans for the
                    `Metrics` verb / `stalloc stats --slowest`
                    (default 16; 0 disables the list)

serves the length-prefixed JSONL plan protocol until killed; identical
concurrent jobs are deduplicated to one synthesis (single-flight);
`stalloc stats ADDR` shows its live counters and latency histograms,
`stalloc top ADDR` keeps a refreshing dashboard on them",
        spec: FlagSpec {
            value_flags: &[
                "addr",
                "workers",
                "cache",
                "queue",
                "lru",
                "max-frame-mib",
                "trace-log",
                "trace-log-max-bytes",
                "metrics-addr",
                "slowest",
            ],
            bool_flags: &[],
        },
        run: cmd_serve,
    },
    Command {
        name: "fuzz",
        help: "\
usage: stalloc fuzz [flags]
  --iters N         mutations per codec target (default 100000; the
                    server harness runs min(N, 256) live TCP scenarios)
  --seed N          master RNG seed (default 42) — same seed, same run,
                    any machine
  --target T        prof|stpl|delta|frame|server|all (default all)
  --corpus DIR      committed-seed corpus root (default: the corpus
                    shipped in crates/stalloc-fuzz/corpus)

replays the committed regression corpus, then fires structure-aware
mutants at the strict decoders, checking differential oracles
(decode→re-encode fixpoint, fingerprint-of-bytes == fingerprint-of-
value, STPL v1/v2 interop) and malformed-stream recovery on a live
loopback server; exits nonzero on any panic, oracle violation, or
never-exercised rejection variant (minimized failures land in
target/fuzz-failures/)",
        spec: FlagSpec {
            value_flags: &["iters", "seed", "target", "corpus"],
            bool_flags: &[],
        },
        run: cmd_fuzz,
    },
    Command {
        name: "version",
        help: "\
usage: stalloc version
  prints the tool version plus the planner-algorithm and profile
  fingerprint versions that key the plan caches",
        spec: FlagSpec {
            value_flags: &[],
            bool_flags: &[],
        },
        run: cmd_version,
    },
];

const STATS_HELP: &str = "\
usage: stalloc stats ADDR [--slowest N] [--format text|json]
  queries the `stalloc serve` daemon at ADDR for its live counters and
  latency histograms (the `Metrics` wire verb) and renders hit ratios
  plus p50/p90/p99 per cache tier and per request phase
  --slowest N       also show the N slowest retained requests
                    (default 3; 0 hides the section)
  --format F        text (default): the rendered tables; json: the raw
                    `Metrics` document on stdout, one line, for scripts

a server that predates the `Metrics` verb rejects it; this command then
falls back to the counters-only `Stats` verb and says so (on stderr
under --format json, whose stdout stays pure JSON)";

const STATS_SPEC: FlagSpec = FlagSpec {
    value_flags: &["slowest", "format"],
    bool_flags: &[],
};

const TRACE_CONVERT_HELP: &str = "\
usage: stalloc trace <merge|chrome> FILE... [--output OUT.json]
  converts `stalloc serve --trace-log` JSONL span logs into one Chrome
  trace-event JSON timeline (load in chrome://tracing or Perfetto):
  each FILE becomes its own pid lane named after the file, its spans
  laid back-to-back with per-phase child slices; `merge` and `chrome`
  are synonyms
  --output OUT.json  write the timeline to OUT.json (default: stdout)

to trace a single live request end to end — client and server lanes
merged on one clock — use `stalloc plan --remote ADDR --trace OUT.json`";

const TRACE_CONVERT_SPEC: FlagSpec = FlagSpec {
    value_flags: &["output"],
    bool_flags: &[],
};

const CACHE_HELP: &str = "\
usage: stalloc cache <ls|gc|clear> --dir DIR
  ls     list cached plans (fingerprint, size, pool, created)
         --long  also decode each artifact: strategy, codec version,
                 encoded plan size
  gc     drop dangling index rows, orphan artifacts, stale temp files
  clear  remove every cached plan and the index";

const CACHE_SPEC: FlagSpec = FlagSpec {
    value_flags: &["dir"],
    bool_flags: &["long"],
};

const EXPLAIN_HELP: &str = "\
usage: stalloc explain PLAN [--format table|json|svg] [flags]
  replays the plan's allocations into a fragmentation/occupancy
  timeline: per-tick live bytes, free-gap histogram, and stranded
  memory attributed to the tensors roofing each gap; the reported peak
  and fragmentation agree exactly with the plan's own stats
  --format F        table (default): occupancy sparkline + gap
                    histogram + stranded top-K; json: the full
                    timeline; svg: a memory-map rendering (offset x
                    time, colored by lifetime class)
  --top N           stranded tensors to attribute (default 5)
  --output FILE     write to FILE instead of stdout";

const EXPLAIN_SPEC: FlagSpec = FlagSpec {
    value_flags: &["format", "top", "output"],
    bool_flags: &[],
};

const DIFF_PROF_HELP: &str = "\
usage: stalloc diff-prof BASE NEXT [--output FILE]
  diffs two profiles (JSON or binary PROF, autodetected) into the
  PROF-DELTA edit script `stalloc plan --remote --delta-base` puts on
  the wire: prints the base fingerprint, per-op counts, the reused
  share of the request population, and the edit script's wire size
  against the full PROF encoding of NEXT
  --output FILE     also write the encoded PROF-DELTA frame to FILE";

const DIFF_PROF_SPEC: FlagSpec = FlagSpec {
    value_flags: &["output"],
    bool_flags: &[],
};

const TOP_HELP: &str = "\
usage: stalloc top ADDR [--interval SECS] [--count N]
  polls the `stalloc serve` daemon at ADDR (the `Metrics` wire verb)
  and keeps a refreshing dashboard: request counters, per-tier and
  per-phase latency, and per-strategy solver-phase profiles
  --interval SECS   seconds between refreshes (default 2)
  --count N         stop after N frames (default: refresh until
                    interrupted; 1 prints a single frame and exits)";

const TOP_SPEC: FlagSpec = FlagSpec {
    value_flags: &["interval", "count"],
    bool_flags: &[],
};

/// Dispatches `argv[0]` to its subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "--version" | "-V" => cmd_version(&Args::default()),
        "help" | "--help" | "-h" => {
            // `stalloc help <command>` prints that command's help.
            if let Some(topic) = rest.first() {
                return print_command_help(topic);
            }
            println!("{USAGE}");
            Ok(())
        }
        // `trace` doubles as a command group: `trace merge|chrome` is
        // the log-to-Chrome converter, anything else the generator.
        "trace" if matches!(rest.first().map(String::as_str), Some("merge" | "chrome")) => {
            dispatch_trace_convert(&rest[1..])
        }
        "cache" => dispatch_cache(rest),
        "stats" => dispatch_stats(rest),
        "explain" => dispatch_explain(rest),
        "top" => dispatch_top(rest),
        "diff-prof" => dispatch_diff_prof(rest),
        name => {
            let Some(command) = COMMANDS.iter().find(|c| c.name == name) else {
                let candidates = COMMANDS.iter().map(|c| c.name).chain([
                    "cache",
                    "stats",
                    "explain",
                    "top",
                    "diff-prof",
                    "help",
                ]);
                return Err(match nearest(name, candidates) {
                    Some(s) => format!("unknown command '{name}' (did you mean '{s}'?)"),
                    None => format!("unknown command '{name}'"),
                });
            };
            let args = Args::parse(rest, &command.spec)?;
            if args.wants_help() {
                println!("{}", command.help);
                return Ok(());
            }
            (command.run)(&args)
        }
    }
}

fn print_command_help(topic: &str) -> Result<(), String> {
    if topic == "cache" {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    if topic == "stats" {
        println!("{STATS_HELP}");
        return Ok(());
    }
    if topic == "explain" {
        println!("{EXPLAIN_HELP}");
        return Ok(());
    }
    if topic == "top" {
        println!("{TOP_HELP}");
        return Ok(());
    }
    if topic == "diff-prof" {
        println!("{DIFF_PROF_HELP}");
        return Ok(());
    }
    match COMMANDS.iter().find(|c| c.name == topic) {
        Some(c) => {
            println!("{}", c.help);
            Ok(())
        }
        None => Err(format!("no help for unknown command '{topic}'")),
    }
}

fn dispatch_cache(rest: &[String]) -> Result<(), String> {
    let Some((action, rest)) = rest.split_first() else {
        return Err("cache: no action given (ls|gc|clear)".into());
    };
    if action == "--help" || action == "-h" || action == "help" {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &CACHE_SPEC)?;
    if args.wants_help() {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    match action.as_str() {
        "ls" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let entries = store.entries().map_err(|e| e.to_string())?;
            if entries.is_empty() {
                println!("(empty cache at {})", store.dir().display());
                return Ok(());
            }
            let long = args.flag("long");
            if long {
                println!(
                    "{:<32} {:>10} {:>12} {:>8} {:>12} {:>10} {:>5} {:>10}",
                    "fingerprint",
                    "bytes",
                    "pool (GiB)",
                    "statics",
                    "created",
                    "strategy",
                    "codec",
                    "plan bytes"
                );
            } else {
                println!(
                    "{:<32} {:>10} {:>12} {:>8} {:>12}",
                    "fingerprint", "bytes", "pool (GiB)", "statics", "created"
                );
            }
            for e in &entries {
                print!(
                    "{:<32} {:>10} {:>12.3} {:>8} {:>12}",
                    e.fingerprint,
                    e.bytes,
                    e.pool_size as f64 / (1u64 << 30) as f64,
                    e.static_requests,
                    e.created_unix
                );
                if long {
                    // Decode the artifact itself: the index row knows the
                    // summary, the bytes know the strategy and codec.
                    let detail = stalloc_core::Fingerprint::from_hex(&e.fingerprint)
                        .map(|fp| store.plan_path(fp))
                        .and_then(|p| fs::read(p).ok())
                        .and_then(|bytes| {
                            if !is_binary_plan(&bytes) || bytes.len() < 6 {
                                return None;
                            }
                            let version = u16::from_le_bytes([bytes[4], bytes[5]]);
                            let plan = decode_plan(&bytes).ok()?;
                            Some((plan.stats.strategy.name(), version, bytes.len()))
                        });
                    match detail {
                        Some((strategy, version, len)) => {
                            print!(" {strategy:>10} {version:>5} {len:>10}")
                        }
                        None => print!(" {:>10} {:>5} {:>10}", "?", "?", "?"),
                    }
                }
                println!();
            }
            println!("{} plan(s)", entries.len());
            Ok(())
        }
        "gc" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let r = store.gc().map_err(|e| e.to_string())?;
            println!(
                "gc: dropped {} dangling index entr{}, adopted {} orphan \
                 plan(s), removed {} corrupt file(s) + {} stale temp \
                 file(s); reclaimed {} bytes",
                r.dangling_entries,
                if r.dangling_entries == 1 { "y" } else { "ies" },
                r.adopted_entries,
                r.orphan_files,
                r.temp_files,
                r.reclaimed_bytes
            );
            Ok(())
        }
        "clear" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let n = store.clear().map_err(|e| e.to_string())?;
            println!("cleared {n} plan(s) from {}", store.dir().display());
            Ok(())
        }
        other => Err(match nearest(other, ["ls", "gc", "clear", "help"]) {
            Some(s) => format!("unknown cache action '{other}' (did you mean '{s}'?)"),
            None => format!("unknown cache action '{other}'"),
        }),
    }
}

/// `stalloc trace merge|chrome FILE... [--output OUT.json]`: convert
/// trace-log JSONL files into one Chrome timeline, one pid lane each.
fn dispatch_trace_convert(rest: &[String]) -> Result<(), String> {
    if rest
        .first()
        .is_some_and(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{TRACE_CONVERT_HELP}");
        return Ok(());
    }
    // Leading positional tokens are the files; flags follow.
    let split = rest
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(rest.len());
    let (files, flags) = rest.split_at(split);
    let args = Args::parse(flags, &TRACE_CONVERT_SPEC)?;
    if args.wants_help() {
        println!("{TRACE_CONVERT_HELP}");
        return Ok(());
    }
    if files.is_empty() {
        return Err("trace merge: no trace-log files given \
             (try `stalloc trace merge server.jsonl --output out.json`)"
            .into());
    }
    let mut lanes = Vec::with_capacity(files.len());
    for file in files {
        let text = fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value: serde::Value =
                serde_json::from_str(line).map_err(|e| format!("{file}:{}: {e}", i + 1))?;
            match SpanView::from_trace_line(&value) {
                Some(v) => spans.push(v),
                None => {
                    return Err(format!(
                        "{file}:{}: not a trace-log line (no `verb` key)",
                        i + 1
                    ))
                }
            }
        }
        lanes.push(Lane {
            name: file.clone(),
            spans,
        });
    }
    let trace = lanes_timeline(&lanes);
    let json = trace.to_json();
    match args.get("output") {
        Some(out) => {
            fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
            eprintln!(
                "wrote {out} ({} events from {} lane(s))",
                trace.len(),
                lanes.len()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn dispatch_stats(rest: &[String]) -> Result<(), String> {
    // Like `cache`, the first token is positional: the server address.
    let Some((addr, rest)) = rest.split_first() else {
        return Err("stats: no server address given (try `stalloc stats 127.0.0.1:4547`)".into());
    };
    if addr == "--help" || addr == "-h" || addr == "help" {
        println!("{STATS_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &STATS_SPEC)?;
    if args.wants_help() {
        println!("{STATS_HELP}");
        return Ok(());
    }
    cmd_stats(
        addr,
        args.num("slowest", 3usize)?,
        args.get("format").unwrap_or("text"),
    )
}

fn cmd_stats(addr: &str, slowest: usize, format: &str) -> Result<(), String> {
    let json = match format {
        "text" => false,
        "json" => true,
        other => return Err(format!("--format: expected text|json, got '{other}'")),
    };
    let mut client = PlanClient::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    match client.metrics() {
        Ok(metrics) => {
            if json {
                let doc = serde_json::to_string(&metrics).map_err(|e| e.to_string())?;
                println!("{doc}");
            } else {
                print!("{}", render_metrics(addr, &metrics, slowest));
            }
            Ok(())
        }
        Err(ClientError::Server { .. }) => {
            // A pre-`Metrics` server rejects the unknown verb (and drops
            // the connection): fall back to the counters-only view.
            let stats = PlanClient::connect(addr)
                .and_then(|mut c| c.stats())
                .map_err(|e| format!("{addr}: {e}"))?;
            // The note goes to stderr so `--format json` stdout stays
            // machine-readable.
            eprintln!("note: server at {addr} predates the Metrics verb; counters only");
            if json {
                let doc = serde_json::to_string(&stats).map_err(|e| e.to_string())?;
                println!("{doc}");
            } else {
                print!("{}", render_counters(&stats));
            }
            Ok(())
        }
        Err(e) => Err(format!("{addr}: {e}")),
    }
}

/// Human latency: `42µs`, `1.2ms`, `3.10s`.
fn fmt_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// The counters block shared by the full and fallback views.
fn render_counters(s: &stalloc_core::ServeStats) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "requests {} · plan {} · hits {} (lru {}, store {}, coalesced {}) · \
         misses {} · hit ratio {:.1}%",
        s.requests,
        s.plan_requests,
        s.hits(),
        s.lru_hits,
        s.store_hits,
        s.coalesced,
        s.misses,
        s.hit_ratio() * 100.0
    );
    if s.delta_requests > 0 {
        let _ = writeln!(
            out,
            "delta {} · patched {} · already cached {}",
            s.delta_requests, s.delta_patched, s.delta_hits
        );
    }
    let _ = writeln!(
        out,
        "errors {} · rejected {} · metrics {} · in flight {} · queued {} · {} workers",
        s.errors, s.rejected, s.metrics_requests, s.in_flight, s.queue_depth, s.workers
    );
    out
}

/// One aligned histogram table (`tier` or `phase` rows).
fn render_histogram_table(title: &str, rows: &[NamedHistogram]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
        title, "count", "p50", "p90", "p99", "mean"
    );
    for row in rows {
        let h = &row.hist;
        let Some((p50, p90, p99)) = h.percentiles() else {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
                row.name, 0, "-", "-", "-", "-"
            );
            continue;
        };
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
            row.name,
            h.total(),
            fmt_micros(p50),
            fmt_micros(p90),
            fmt_micros(p99),
            fmt_micros(h.mean())
        );
    }
    out
}

/// Renders a full `Metrics` response: counters, per-tier and per-phase
/// latency tables, and the slowest retained requests.
fn render_metrics(addr: &str, m: &ServeMetrics, slowest: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "stalloc serve at {addr}");
    out.push_str(&render_counters(&m.stats));
    out.push('\n');
    out.push_str(&render_histogram_table("tier", &m.tiers));
    out.push('\n');
    out.push_str(&render_histogram_table("phase", &m.phases));
    if !m.solver.is_empty() {
        out.push('\n');
        out.push_str(&render_solver_table(&m.solver));
    }
    if slowest > 0 && !m.slowest.is_empty() {
        let _ = writeln!(out, "\nslowest requests:");
        for span in m.slowest.iter().take(slowest) {
            let tier = if span.tier.is_empty() {
                String::new()
            } else {
                format!(" {}", span.tier)
            };
            // Phases the request never entered report 0 and are elided.
            let phases = Phase::ALL
                .iter()
                .zip(span.phase_micros.iter())
                .filter(|(_, &us)| us > 0)
                .map(|(p, &us)| format!("{} {}", p.name(), fmt_micros(us)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  #{} {}{tier} {} ({phases})",
                span.seq,
                span.verb,
                fmt_micros(span.total_micros)
            );
        }
    }
    out
}

/// Human bytes: `512 B`, `1.5 KiB`, `2.3 MiB`, `1.20 GiB`.
fn fmt_bytes(b: u64) -> String {
    if b < 1 << 10 {
        format!("{b} B")
    } else if b < 1 << 20 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else if b < 1 << 30 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    }
}

/// Per-strategy solver table (the `solver` section of a `Metrics`
/// payload): run counts, phase-time split, and placement work.
fn render_solver_table(rows: &[stalloc_core::SolverStrategyMetrics]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>5} {:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "solver",
        "runs",
        "wins",
        "invalid",
        "layout",
        "pack",
        "finish",
        "candidates",
        "tried",
        "rejected",
        "p50",
        "p99"
    );
    for r in rows {
        let (p50, p99) = match (r.elapsed.quantile(0.50), r.elapsed.quantile(0.99)) {
            (Some(a), Some(b)) => (fmt_micros(a), fmt_micros(b)),
            _ => ("-".into(), "-".into()),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>5} {:>7} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>9} {:>9}",
            r.strategy,
            r.runs,
            r.wins,
            r.invalid,
            fmt_micros(r.layout_micros),
            fmt_micros(r.pack_micros),
            fmt_micros(r.finish_micros),
            r.candidates_evaluated,
            r.placements_tried,
            r.placements_rejected,
            p50,
            p99
        );
    }
    out
}

fn dispatch_explain(rest: &[String]) -> Result<(), String> {
    // Like `stats`, the first token is positional: the plan file.
    let Some((path, rest)) = rest.split_first() else {
        return Err("explain: no plan file given (try `stalloc explain plan.stplan`)".into());
    };
    if path == "--help" || path == "-h" || path == "help" {
        println!("{EXPLAIN_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &EXPLAIN_SPEC)?;
    if args.wants_help() {
        println!("{EXPLAIN_HELP}");
        return Ok(());
    }
    cmd_explain(path, &args)
}

fn cmd_explain(path: &str, args: &Args) -> Result<(), String> {
    let plan = read_plan(path)?;
    let top = args.num("top", 5usize)?;
    let timeline = stalloc_core::analyze_plan(&plan, top);
    let mut body = match args.get("format").unwrap_or("table") {
        "table" => render_timeline_table(path, &plan, &timeline),
        "json" => serde_json::to_string(&timeline).map_err(|e| e.to_string())?,
        "svg" => stalloc_core::render_svg(&plan, &timeline),
        other => return Err(format!("--format: expected table|json|svg, got '{other}'")),
    };
    if !body.ends_with('\n') {
        body.push('\n');
    }
    match args.get("output") {
        Some(file) => {
            fs::write(file, &body).map_err(|e| format!("{file}: {e}"))?;
            eprintln!("wrote {file} ({} bytes)", body.len());
        }
        None => print!("{body}"),
    }
    Ok(())
}

/// The `--format table` view: header, occupancy sparkline, free-gap
/// histogram, stranded-memory attribution.
fn render_timeline_table(path: &str, plan: &Plan, t: &stalloc_core::PlanTimeline) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let frag_pct = if t.pool_size > 0 {
        t.fragmentation as f64 * 100.0 / t.pool_size as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{path}: strategy {} · pool {} · peak {} @ tick {} · fragmentation {} ({frag_pct:.1}%)",
        plan.stats.strategy.name(),
        fmt_bytes(t.pool_size),
        fmt_bytes(t.peak_live_bytes),
        t.peak_tick,
        fmt_bytes(t.fragmentation)
    );
    if t.samples.is_empty() {
        let _ = writeln!(out, "(empty plan: no allocations to replay)");
        return out;
    }

    // Occupancy over time, live bytes as a fraction of the pool.
    const BLOCKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    const COLS: usize = 64;
    let horizon = t.samples.last().map(|s| s.tick).unwrap_or(0);
    let _ = writeln!(
        out,
        "occupancy ({} samples over {} ticks, one column ≈ {} ticks):",
        t.samples.len(),
        horizon + 1,
        (horizon / COLS as u64).max(1)
    );
    let cols = COLS.min(t.samples.len());
    let mut line = String::with_capacity(cols + 2);
    for col in 0..cols {
        let s = &t.samples[col * t.samples.len() / cols];
        let level = if t.pool_size == 0 {
            0
        } else {
            ((s.live_bytes as u128 * 8).div_ceil(t.pool_size as u128) as usize).min(8)
        };
        line.push(BLOCKS[level]);
    }
    let _ = writeln!(out, "  [{line}]");

    // Interior free gaps seen at the sampled ticks.
    match (
        t.gap_sizes.quantile(0.50),
        t.gap_sizes.quantile(0.90),
        t.gap_sizes.quantile(0.99),
    ) {
        (Some(p50), Some(p90), Some(p99)) => {
            let _ = writeln!(
                out,
                "free gaps: {} observed · p50 {} · p90 {} · p99 {}",
                t.gap_sizes.total(),
                fmt_bytes(p50),
                fmt_bytes(p90),
                fmt_bytes(p99)
            );
        }
        _ => {
            let _ = writeln!(out, "free gaps: none observed (contiguous occupancy)");
        }
    }

    // Stranded-memory attribution: the tensors roofing the gaps.
    if !t.stranded.is_empty() {
        let _ = writeln!(
            out,
            "stranded memory, top {} by byte·ticks stranded beneath the tensor:",
            t.stranded.len()
        );
        let _ = writeln!(
            out,
            "  {:<6} {:>6} {:>10} {:>12} {:>18} {:>16}",
            "kind", "index", "size", "offset", "live [ts, te)", "byte·ticks"
        );
        for s in &t.stranded {
            let _ = writeln!(
                out,
                "  {:<6} {:>6} {:>10} {:>12} {:>18} {:>16}",
                s.kind,
                s.index,
                fmt_bytes(s.size),
                s.offset,
                format!("[{}, {})", s.ts, s.te),
                s.stranded_byte_ticks
            );
        }
    }
    out
}

fn dispatch_diff_prof(rest: &[String]) -> Result<(), String> {
    // Like `explain`, the leading tokens are positional: the two
    // profile files.
    if rest
        .first()
        .is_some_and(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{DIFF_PROF_HELP}");
        return Ok(());
    }
    let split = rest
        .iter()
        .position(|a| a.starts_with('-'))
        .unwrap_or(rest.len());
    let (files, flags) = rest.split_at(split);
    let args = Args::parse(flags, &DIFF_PROF_SPEC)?;
    if args.wants_help() {
        println!("{DIFF_PROF_HELP}");
        return Ok(());
    }
    let [base_p, next_p] = files else {
        return Err(format!(
            "diff-prof: expected exactly two profile files, got {} \
             (try `stalloc diff-prof base.json next.json`)",
            files.len()
        ));
    };
    cmd_diff_prof(base_p, next_p, &args)
}

fn cmd_diff_prof(base_p: &str, next_p: &str, args: &Args) -> Result<(), String> {
    let base = read_profile(base_p)?;
    let next = read_profile(next_p)?;
    let delta = diff_profiles(&base, &next);
    let bytes = encode_profile_delta(&delta);
    let full = encode_profile(&next);

    let (mut reused, mut inserted, mut removed, mut retimed, mut resized) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for op in delta.statics.iter().chain(delta.dynamics.iter()) {
        match op {
            EditOp::Copy { count } => reused += *count as u64,
            EditOp::Insert { .. } => inserted += 1,
            EditOp::Remove { count } => removed += *count as u64,
            EditOp::Retime { .. } => retimed += 1,
            EditOp::Resize { .. } => resized += 1,
        }
    }
    let population = (next.statics.len() + next.dynamics.len()) as u64;
    println!("base     {} ({base_p})", delta.base.to_hex());
    println!(
        "next     {} ({next_p})",
        fingerprint_profile(&next).to_hex()
    );
    println!(
        "requests {population} next vs {} base · {reused} reused ({:.1}%) · \
         {inserted} inserted · {removed} removed · {retimed} retimed · {resized} resized",
        base.statics.len() + base.dynamics.len(),
        if population > 0 {
            100.0 * reused as f64 / population as f64
        } else {
            100.0
        }
    );
    println!(
        "wire     PROF-DELTA {} B vs full PROF {} B ({:.1}%)",
        bytes.len(),
        full.len(),
        100.0 * bytes.len() as f64 / full.len() as f64
    );
    if let Some(out) = args.get("output") {
        fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out} ({} bytes, PROF-DELTA v1)", bytes.len());
    }
    Ok(())
}

fn dispatch_top(rest: &[String]) -> Result<(), String> {
    // Like `stats`, the first token is positional: the server address.
    let Some((addr, rest)) = rest.split_first() else {
        return Err("top: no server address given (try `stalloc top 127.0.0.1:4547`)".into());
    };
    if addr == "--help" || addr == "-h" || addr == "help" {
        println!("{TOP_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &TOP_SPEC)?;
    if args.wants_help() {
        println!("{TOP_HELP}");
        return Ok(());
    }
    cmd_top(addr, args.num("interval", 2u64)?, args.num("count", 0u64)?)
}

fn cmd_top(addr: &str, interval_s: u64, count: u64) -> Result<(), String> {
    let mut frame = 0u64;
    loop {
        // A fresh connection per frame: the dashboard must not pin a
        // worker slot between refreshes.
        let metrics = PlanClient::connect(addr)
            .and_then(|mut c| c.metrics())
            .map_err(|e| format!("{addr}: {e}"))?;
        frame += 1;
        if count != 1 {
            // Clear + home between frames (single-frame runs stay pipeable).
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "stalloc top — {addr} · frame {frame} · every {interval_s}s{}",
            if count == 0 { " · Ctrl-C to quit" } else { "" }
        );
        print!("{}", render_metrics(addr, &metrics, 3));
        if count > 0 && frame >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval_s));
    }
}

fn parse_model(name: &str) -> Result<ModelSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gpt2" | "gpt-2" => ModelSpec::gpt2_345m(),
        "llama2-7b" | "llama2" => ModelSpec::llama2_7b(),
        "qwen2.5-7b" => ModelSpec::qwen25_7b(),
        "qwen2.5-14b" => ModelSpec::qwen25_14b(),
        "qwen2.5-32b" => ModelSpec::qwen25_32b(),
        "qwen2.5-72b" => ModelSpec::qwen25_72b(),
        "qwen1.5-moe" | "moe" => ModelSpec::qwen15_moe_a27b(),
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn parse_optim(label: &str) -> Result<(OptimConfig, bool), String> {
    Ok(match label.to_ascii_uppercase().as_str() {
        "N" | "NAIVE" => (OptimConfig::naive(), false),
        "R" => (OptimConfig::r(), false),
        "V" => (OptimConfig::naive(), true),
        "VR" => (OptimConfig::r(), true),
        "ZR" => (OptimConfig::zr(), false),
        "ZOR" => (OptimConfig::zor(), false),
        other => return Err(format!("unknown optimization combo '{other}'")),
    })
}

fn parse_device(name: &str) -> Result<DeviceSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "a800" => DeviceSpec::a800_80g(),
        "h200" => DeviceSpec::h200_141g(),
        "mi210" => DeviceSpec::mi210_64g(),
        other => return Err(format!("unknown device '{other}'")),
    })
}

fn parse_allocator(name: &str, frag_limit_mib: u64) -> Result<AllocatorKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "stalloc" => AllocatorKind::Stalloc,
        "stalloc-noreuse" => AllocatorKind::StallocNoReuse,
        "torch20" => AllocatorKind::Torch20,
        "torch23" => AllocatorKind::Torch23,
        "torch26" => AllocatorKind::Torch26,
        "es" | "expandable" => AllocatorKind::TorchEs,
        "gmlake" => AllocatorKind::GmLake(frag_limit_mib << 20),
        "native" => AllocatorKind::Native,
        other => return Err(format!("unknown allocator '{other}'")),
    })
}

/// Plan output encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanFormat {
    Json,
    Bin,
}

fn plan_format(args: &Args, output: &str) -> Result<PlanFormat, String> {
    match args.get("format") {
        Some("bin") => Ok(PlanFormat::Bin),
        Some("json") => Ok(PlanFormat::Json),
        Some(other) => Err(format!("--format: expected bin|json, got '{other}'")),
        None => {
            if output.ends_with(".stplan") || output.ends_with(".bin") {
                Ok(PlanFormat::Bin)
            } else {
                Ok(PlanFormat::Json)
            }
        }
    }
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let data = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("{path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let data = serde_json::to_string(value).map_err(|e| e.to_string())?;
    fs::write(path, &data).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {path} ({} bytes)", data.len());
    Ok(())
}

/// Reads a profile from `path`, auto-detecting binary `PROF` vs JSON by
/// magic (profiles travel as JSON from `stalloc profile`, but the codec
/// round-trips binary artifacts too).
fn read_profile(path: &str) -> Result<ProfiledRequests, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if is_binary_profile(&bytes) {
        decode_profile(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = String::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Reads a plan from `path`, auto-detecting binary vs JSON by magic.
/// The plan is validated: a foreign file that decodes but carries
/// unsound decisions must not reach downstream consumers.
fn read_plan(path: &str) -> Result<Plan, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = if is_binary_plan(&bytes) {
        decode_plan(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = String::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
        Plan::from_json(&text).map_err(|e| format!("{path}: {e}"))?
    };
    plan.validate()
        .map_err(|e| format!("{path}: unsound plan: {e}"))?;
    Ok(plan)
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let model = parse_model(args.require("model")?)?;
    let (optim, vpp_on) = parse_optim(args.get("optim").unwrap_or("N"))?;
    let mut parallel = ParallelConfig::new(
        args.num("tp", 1u32)?,
        args.num("pp", 1u32)?,
        args.num("dp", 1u32)?,
    )
    .with_ep(args.num("ep", 1u32)?);
    let vpp = args.num("vpp", if vpp_on { 2u32 } else { 1 })?;
    if vpp > 1 {
        parallel = parallel.with_vpp(vpp);
    }
    let seq_default = model.seq_len;
    let job = TrainJob::new(model, parallel, optim)
        .with_mbs(args.num("mbs", 1u32)?)
        .with_seq(args.num("seq", seq_default)?)
        .with_microbatches(args.num("microbatches", 4 * parallel.pp)?)
        .with_stage(args.num("stage", 0u32)?)
        .with_iterations(args.num("iterations", 3u32)?)
        .with_seed(args.num("seed", 42u64)?);
    let trace = job.build_trace()?;
    eprintln!(
        "{} [{}]: {} requests/iteration, {} distinct sizes",
        job.model.name,
        job.label(),
        trace.allocs_in_iteration(1),
        trace.distinct_sizes(512).len()
    );
    write_json(args.require("output")?, &trace)
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let iter = args.num("iteration", 1u32)?;
    let profile = profile_trace(&trace, iter).map_err(|e| e.to_string())?;
    eprintln!(
        "profiled iteration {iter}: {} static ({} persistent) + {} dynamic, {} phases",
        profile.statics.len(),
        profile.init_count,
        profile.dynamics.len(),
        profile.num_phases
    );
    write_json(args.require("output")?, &profile)
}

/// Parses `--strategy`, suggesting the nearest name on a typo.
fn parse_strategy(name: &str) -> Result<StrategyChoice, String> {
    StrategyChoice::parse(name).ok_or_else(|| {
        let names = StrategyChoice::ALL.iter().map(|c| c.name());
        match nearest(name, names) {
            Some(s) => format!("unknown strategy '{name}' (did you mean '{s}'?)"),
            None => format!(
                "unknown strategy '{name}' (see `stalloc strategies` for the registered set)"
            ),
        }
    })
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    if args.get("remote").is_some() && args.get("cache").is_some() {
        return Err(
            "--remote and --cache are mutually exclusive (the server owns its cache)".into(),
        );
    }
    if args.get("trace").is_some() && args.get("remote").is_none() {
        return Err(
            "--trace only applies to --remote planning (the merged timeline \
             pairs the client's span with a live server's)"
                .into(),
        );
    }
    if args.get("delta-base").is_some() && args.get("remote").is_none() {
        return Err(
            "--delta-base only applies to --remote planning (local synthesis \
             has no base plan to patch)"
                .into(),
        );
    }
    let profile: ProfiledRequests = read_json(args.require("input")?)?;
    let strategy = match args.get("strategy") {
        Some(name) => parse_strategy(name)?,
        None => StrategyChoice::Baseline,
    };
    let config = SynthConfig {
        enable_fusion: !args.flag("no-fusion"),
        enable_gap_insertion: !args.flag("no-gaps"),
        ascending_sizes: args.flag("ascending"),
        strategy,
    };
    // The ablation switches steer the grouped pipelines only; make the
    // no-op visible (the flags are still part of the job fingerprint).
    let ablations_on = args.flag("no-fusion") || args.flag("no-gaps") || args.flag("ascending");
    if ablations_on
        && matches!(
            strategy,
            StrategyChoice::BestFit | StrategyChoice::Lookahead
        )
    {
        eprintln!(
            "note: --strategy {strategy} ignores --no-fusion/--no-gaps/--ascending \
             (they steer the baseline and tmp-order pipelines only)"
        );
    }
    let output = args.require("output")?;
    let format = plan_format(args, output)?;

    let plan = if let Some(addr) = args.get("remote") {
        let wire = match args.get("wire") {
            None | Some("bin") => ProfileEncoding::Binary,
            Some("json") => ProfileEncoding::Json,
            Some(other) => {
                return Err(format!("--wire must be `bin` or `json`, got '{other}'"));
            }
        };
        let mut client = PlanClient::connect(addr)
            .map_err(|e| format!("--remote {addr}: {e}"))?
            .with_profile_encoding(wire);
        let r = match args.get("delta-base") {
            Some(base_path) => {
                let base = read_profile(base_path)?;
                eprintln!(
                    "plan server {addr}: sending PROF-DELTA against base {}",
                    fingerprint_profile(&base).to_hex()
                );
                client
                    .plan_delta(&base, &profile, &config)
                    .map_err(|e| format!("--remote {addr}: {e}"))?
            }
            None => client
                .plan(&profile, &config)
                .map_err(|e| format!("--remote {addr}: {e}"))?,
        };
        let verdict = if r.source == stalloc_core::PlanSource::Patched {
            "patched"
        } else if r.source.is_hit() {
            "hit"
        } else {
            "miss"
        };
        let wire_name = match wire {
            ProfileEncoding::Binary => "bin",
            ProfileEncoding::Json => "json",
        };
        eprintln!(
            "plan server {addr}: {verdict} {} ({:?}, {} µs server-side, profile wire: {wire_name})",
            r.fingerprint, r.source, r.micros
        );
        if let Some(trace_file) = args.get("trace") {
            write_request_trace(&mut client, trace_file)?;
        }
        r.plan
    } else if args.get("wire").is_some() {
        return Err("--wire only applies to --remote planning".into());
    } else if let Some(dir) = args.get("cache") {
        let store = PlanStore::open(dir).map_err(|e| e.to_string())?;
        let (plan, fp, outcome) = synthesize_cached(&profile, &config, &store, synthesize_strategy)
            .map_err(|e| e.to_string())?;
        match outcome {
            CacheOutcome::Hit => eprintln!("plan cache: hit {fp} — synthesis skipped"),
            CacheOutcome::Miss => eprintln!("plan cache: miss {fp} — synthesized and stored"),
        }
        plan
    } else if strategy == StrategyChoice::Portfolio {
        // Local portfolio run: report every candidate, then the winner.
        let outcome = synthesize_portfolio(&profile, &config);
        for c in &outcome.candidates {
            let verdict = if !c.valid {
                "invalid".to_string()
            } else {
                format!(
                    "packing {:.4}, pool {:.3} GiB",
                    c.packing_efficiency,
                    c.pool_size as f64 / (1u64 << 30) as f64
                )
            };
            let p = &c.profile;
            eprintln!(
                "  {:<10} {verdict} ({} ms){}",
                c.strategy.name(),
                c.elapsed.as_millis(),
                if c.winner { "  ← winner" } else { "" }
            );
            eprintln!(
                "  {:<10} layout {} · pack {} · finish {} · {} candidates, \
                 {} placed, {} rejected",
                "",
                fmt_micros(p.layout_micros),
                fmt_micros(p.pack_micros),
                fmt_micros(p.finish_micros),
                p.candidates_evaluated,
                p.placements_tried,
                p.placements_rejected
            );
        }
        outcome.winner
    } else {
        synthesize_strategy(&profile, &config)
    };
    plan.validate()?;
    let s = plan.stats;
    eprintln!(
        "plan: strategy {}, pool {:.3} GiB, packing {:.3}, {} layers, \
         {} gap insertions, {} HomoLayer groups",
        s.strategy.name(),
        s.pool_size as f64 / (1u64 << 30) as f64,
        s.packing_efficiency(),
        s.layers,
        s.gap_inserted,
        s.homolayer_groups
    );
    match format {
        PlanFormat::Json => write_json(output, &plan),
        PlanFormat::Bin => {
            let bytes = encode_plan(&plan);
            fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
            eprintln!("wrote {output} ({} bytes, binary)", bytes.len());
            Ok(())
        }
    }
}

/// Exports the request that just ran on `client` as a merged
/// client+server Chrome timeline at `path`: the client span on one pid
/// lane, the server's matching span centered inside its `await` slice
/// on another, `net_queue_micros` covering the difference.
///
/// Works on the same keep-alive connection as the plan on purpose: the
/// server records a request's span before reading the next frame, so
/// the follow-up `TraceGet` deterministically sees it.
fn write_request_trace(client: &mut PlanClient, path: &str) -> Result<(), String> {
    let span = client
        .last_span()
        .ok_or("--trace: no client span recorded for the request")?;
    let client_view = SpanView::from(&ClientSpanSnapshot::from(&span));
    let trace_hex = client.trace_context().trace_hex();
    let server_spans = match client.trace_get(&trace_hex) {
        Ok(spans) => spans,
        Err(ClientError::Server { .. }) => {
            // A pre-`TraceGet` server rejects the verb: still useful to
            // keep the client's half of the story.
            eprintln!("note: server predates the TraceGet verb; writing a client-only timeline");
            Vec::new()
        }
        Err(e) => return Err(format!("--trace: {e}")),
    };
    // The wire context we sent was a child of the client span, so the
    // matching server span names it as parent; fall back to the newest
    // ring entry if an old peer dropped the ids.
    let parent_hex = span.trace.span_hex();
    let server_view = server_spans
        .iter()
        .find(|s| s.parent_span_id == parent_hex)
        .or_else(|| server_spans.last())
        .map(SpanView::from);
    let trace = merged_request_timeline(&client_view, server_view.as_ref());
    fs::write(path, trace.to_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {path} ({} events, trace {trace_hex})", trace.len());
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let plan = read_plan(args.require("input")?)?;
    let rows = args.num("rows", 16usize)?;
    let cols = args.num("cols", 72usize)?;
    println!("{}", stalloc_core::render_plan(&plan, rows, cols));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:4547").to_string(),
        workers: args.num("workers", 4usize)?,
        queue_depth: args.num("queue", 64usize)?,
        lru_capacity: args.num("lru", 128usize)?,
        max_frame: args.num("max-frame-mib", 64usize)? << 20,
        store_dir: args.get("cache").map(std::path::PathBuf::from),
        trace_log: args.get("trace-log").map(std::path::PathBuf::from),
        trace_log_max_bytes: match args.get("trace-log-max-bytes") {
            Some(_) => Some(args.num("trace-log-max-bytes", 0u64)?),
            None => None,
        },
        metrics_addr: args.get("metrics-addr").map(String::from),
        slowest: args.num("slowest", 16usize)?,
        ..ServeConfig::default()
    };
    if config.trace_log_max_bytes.is_some() && config.trace_log.is_none() {
        return Err("--trace-log-max-bytes requires --trace-log".into());
    }
    let cache_desc = match &config.store_dir {
        Some(d) => format!("store {}", d.display()),
        None => "in-memory only".to_string(),
    };
    let trace_desc = match &config.trace_log {
        Some(p) => format!(", trace log {}", p.display()),
        None => String::new(),
    };
    let handle = PlanServer::start(config.clone()).map_err(|e| e.to_string())?;
    let metrics_desc = match handle.metrics_http_addr() {
        Some(a) => format!(", metrics http://{a}/metrics"),
        None => String::new(),
    };
    println!(
        "stalloc serve: listening on {} ({} workers, queue {}, lru {}, {}{}{})",
        handle.addr(),
        config.workers,
        config.queue_depth,
        config.lru_capacity,
        cache_desc,
        trace_desc,
        metrics_desc
    );
    handle.join();
    Ok(())
}

fn cmd_strategies(_args: &Args) -> Result<(), String> {
    println!("registered plan-synthesis strategies (stalloc plan --strategy NAME):");
    for s in registry() {
        println!("  {:<10} {}", s.name(), s.description());
    }
    println!(
        "  {:<10} race all of the above on parallel workers; the valid\n  {:<10} \
         plan with the smallest (pool, fragmentation, name) wins",
        StrategyChoice::Portfolio.name(),
        ""
    );
    Ok(())
}

fn cmd_version(_args: &Args) -> Result<(), String> {
    println!(
        "stalloc {} (planner algorithm v{SYNTH_ALGO_VERSION}, profile fingerprint \
         v{FINGERPRINT_VERSION})",
        env!("CARGO_PKG_VERSION")
    );
    Ok(())
}

fn cmd_fuzz(args: &Args) -> Result<(), String> {
    let targets = match args.get("target").unwrap_or("all") {
        "all" => stalloc_fuzz::FuzzTarget::ALL.to_vec(),
        name => vec![stalloc_fuzz::FuzzTarget::parse(name).ok_or_else(|| {
            format!("unknown fuzz target '{name}' (expected prof|stpl|delta|frame|server|all)")
        })?],
    };
    let config = stalloc_fuzz::FuzzConfig {
        iters: args.num("iters", 100_000u64)?,
        seed: args.num("seed", 42u64)?,
        targets,
        corpus_dir: args.get("corpus").map(std::path::PathBuf::from),
        failure_dir: None,
    };
    // Decoder panics are caught and reported; silence the per-panic
    // stderr backtrace spam so the summary stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = stalloc_fuzz::run(&config);
    std::panic::set_hook(default_hook);
    println!("{}", report.summary());
    if report.ok() {
        Ok(())
    } else {
        Err("fuzzing found failures (see summary above)".into())
    }
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let device = parse_device(args.get("device").unwrap_or("a800"))?;
    let frag = args.num("frag-limit", 512u64)?;
    let kind = parse_allocator(args.get("allocator").unwrap_or("stalloc"), frag)?;
    if kind.needs_vmm() && !device.supports_vmm {
        return Err(format!("{} requires VMM support", kind.label()));
    }
    let result = run(&trace, &device, kind);
    let r = &result.report;
    println!("allocator      : {}", r.allocator);
    println!("device         : {}", device.name);
    println!(
        "allocated (M_a): {:.3} GiB",
        r.peak_requested as f64 / (1u64 << 30) as f64
    );
    println!(
        "reserved  (M_r): {:.3} GiB",
        r.peak_reserved as f64 / (1u64 << 30) as f64
    );
    println!("efficiency     : {:.1}%", r.efficiency() * 100.0);
    println!("outcome        : {}", if r.oom { "OOM" } else { "ok" });
    if let Some(d) = &r.oom_detail {
        println!("oom detail     : {d}");
    }
    if let Some(t) = result.throughput {
        println!("iteration time : {:.3} s (modelled)", t.iter_time_s);
        println!("throughput     : {:.1} TFLOPS/GPU (modelled)", t.tflops);
    }
    if let Some(c) = result.counters {
        println!(
            "runtime        : {} planned, {} lookahead, {} static fallback, \
             {} dyn reused, {} dyn fallback",
            c.static_planned,
            c.lookahead_matches,
            c.static_fallback,
            c.dynamic_reused,
            c.dynamic_fallback
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parsers_cover_the_zoo() {
        assert!(parse_model("gpt2").is_ok());
        assert!(parse_model("qwen1.5-moe").unwrap().is_moe());
        assert!(parse_model("nope").is_err());
        assert!(parse_optim("zor").is_ok());
        assert!(parse_optim("X").is_err());
        assert!(parse_device("h200").is_ok());
        assert!(parse_device("tpu").is_err());
        assert_eq!(
            parse_allocator("gmlake", 64).unwrap(),
            AllocatorKind::GmLake(64 << 20)
        );
        assert!(parse_allocator("jemalloc", 0).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command_with_suggestion() {
        let err = dispatch(&argv("fly")).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        assert!(dispatch(&[]).is_err());
        let err = dispatch(&argv("trce")).unwrap_err();
        assert!(err.contains("did you mean 'trace'"), "{err}");
        let err = dispatch(&argv("cashe")).unwrap_err();
        assert!(err.contains("did you mean 'cache'"), "{err}");
    }

    #[test]
    fn help_paths_succeed() {
        for line in [
            "--help",
            "-h",
            "help",
            "help plan",
            "help cache",
            "help serve",
            "help strategies",
            "help version",
            "strategies",
            "strategies --help",
            "trace --help",
            "profile -h",
            "plan --help",
            "show --help",
            "replay -h",
            "serve --help",
            "cache --help",
            "cache ls --help",
            "help explain",
            "help top",
            "explain --help",
            "explain -h",
            "top --help",
            "top help",
            "trace merge --help",
            "trace chrome -h",
            "trace merge help",
            "help diff-prof",
            "diff-prof --help",
            "diff-prof -h",
            "diff-prof help",
        ] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(dispatch(&argv("help fly")).is_err());
    }

    #[test]
    fn version_paths_succeed() {
        for line in ["version", "--version", "-V"] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // The help text for version mentions both cache-keying versions.
        assert!(dispatch(&argv("vresion")).unwrap_err().contains("version"));
    }

    #[test]
    fn strategy_flag_parses_and_suggests() {
        assert_eq!(
            parse_strategy("portfolio").unwrap(),
            StrategyChoice::Portfolio
        );
        assert_eq!(
            parse_strategy("tmp-order").unwrap(),
            StrategyChoice::TmpOrder
        );
        let err = parse_strategy("basline").unwrap_err();
        assert!(err.contains("did you mean 'baseline'"), "{err}");
        let err = parse_strategy("zzzzz").unwrap_err();
        assert!(err.contains("stalloc strategies"), "{err}");
    }

    #[test]
    fn plan_strategy_portfolio_end_to_end() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-strat-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let base_p = dir.join("base.stplan").to_string_lossy().to_string();
        let port_p = dir.join("port.stplan").to_string_lossy().to_string();
        let port2_p = dir.join("port2.stplan").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {base_p} --strategy baseline"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port_p} --strategy portfolio"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port2_p} --strategy portfolio"
        )))
        .unwrap();

        let base = read_plan(&base_p).unwrap();
        let port = read_plan(&port_p).unwrap();
        assert!(
            port.pool_size <= base.pool_size,
            "portfolio never loses to baseline"
        );
        assert_ne!(port.stats.strategy, StrategyChoice::Portfolio);
        // Deterministic winner: repeated portfolio runs are byte-identical.
        assert_eq!(fs::read(&port_p).unwrap(), fs::read(&port2_p).unwrap());

        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port_p} --strategy lookahed"
        )))
        .unwrap_err();
        assert!(err.contains("did you mean 'lookahead'"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_help_and_errors() {
        for line in ["help stats", "stats --help", "stats -h", "stats help"] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let err = dispatch(&argv("stats")).unwrap_err();
        assert!(err.contains("address"), "{err}");
        // Flags after the positional address are validated like any
        // other command's.
        let err = dispatch(&argv("stats 127.0.0.1:1 --slowset 2")).unwrap_err();
        assert!(err.contains("did you mean '--slowest'"), "{err}");
        // A typo'd command still suggests it.
        let err = dispatch(&argv("stts")).unwrap_err();
        assert!(err.contains("did you mean 'stats'"), "{err}");
    }

    #[test]
    fn explain_renders_timeline_from_plan_files() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-explain-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let table_p = dir.join("explain.txt").to_string_lossy().to_string();
        let json_p = dir.join("explain.json").to_string_lossy().to_string();
        let svg_p = dir.join("explain.svg").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --strategy bestfit"
        )))
        .unwrap();

        // Table view names the headline numbers (what CI greps for).
        dispatch(&argv(&format!("explain {plan_p} --output {table_p}"))).unwrap();
        let table = fs::read_to_string(&table_p).unwrap();
        assert!(table.contains("fragmentation"), "{table}");
        assert!(table.contains("occupancy"), "{table}");
        assert!(table.contains("strategy bestfit"), "{table}");

        // The JSON view is the full timeline, and its peak agrees
        // exactly with the plan's own stats.
        dispatch(&argv(&format!(
            "explain {plan_p} --format json --top 3 --output {json_p}"
        )))
        .unwrap();
        let timeline: stalloc_core::PlanTimeline =
            serde_json::from_str(&fs::read_to_string(&json_p).unwrap()).unwrap();
        let plan = read_plan(&plan_p).unwrap();
        assert_eq!(timeline.peak_live_bytes, plan.stats.peak_static_demand);
        assert_eq!(
            timeline.fragmentation,
            plan.pool_size - plan.stats.peak_static_demand
        );
        assert!(timeline.stranded.len() <= 3);

        // The SVG view is a standalone document.
        dispatch(&argv(&format!(
            "explain {plan_p} --format svg --output {svg_p}"
        )))
        .unwrap();
        let svg = fs::read_to_string(&svg_p).unwrap();
        assert!(svg.starts_with("<svg"), "{}", &svg[..svg.len().min(80)]);
        assert!(svg.trim_end().ends_with("</svg>"));

        // Errors: bad format, missing positional, unreadable file.
        let err = dispatch(&argv(&format!("explain {plan_p} --format png"))).unwrap_err();
        assert!(err.contains("--format"), "{err}");
        let err = dispatch(&argv("explain")).unwrap_err();
        assert!(err.contains("plan file"), "{err}");
        assert!(dispatch(&argv("explain /nonexistent.stplan")).is_err());

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn top_and_serve_flag_errors() {
        let err = dispatch(&argv("top")).unwrap_err();
        assert!(err.contains("address"), "{err}");
        // The rotation cap is meaningless without a trace log.
        let err = dispatch(&argv("serve --trace-log-max-bytes 4096")).unwrap_err();
        assert!(err.contains("--trace-log"), "{err}");
        // A typo'd new command still suggests it.
        let err = dispatch(&argv("explian")).unwrap_err();
        assert!(err.contains("did you mean 'explain'"), "{err}");
    }

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.5 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(1288490189), "1.20 GiB");
    }

    #[test]
    fn fmt_micros_picks_units() {
        assert_eq!(fmt_micros(0), "0µs");
        assert_eq!(fmt_micros(999), "999µs");
        assert_eq!(fmt_micros(1_500), "1.5ms");
        assert_eq!(fmt_micros(999_949), "999.9ms");
        assert_eq!(fmt_micros(2_345_678), "2.35s");
    }

    #[test]
    fn render_metrics_formats_counters_tables_and_slowest() {
        use stalloc_core::wire::NamedHistogram;
        use stalloc_core::ServeStats;
        use stalloc_obs::{LatencyHistogram, Phase, SpanSnapshot, PHASE_COUNT};

        let lru = LatencyHistogram::new();
        for _ in 0..9 {
            lru.record(70);
        }
        let miss = LatencyHistogram::new();
        miss.record(150_000);
        let mut phase_micros = vec![0u64; PHASE_COUNT];
        phase_micros[Phase::Synthesis.index()] = 149_000;
        phase_micros[Phase::Encode.index()] = 400;
        let m = ServeMetrics {
            stats: ServeStats {
                requests: 11,
                plan_requests: 10,
                lru_hits: 9,
                misses: 1,
                workers: 4,
                metrics_requests: 1,
                ..ServeStats::default()
            },
            tiers: vec![
                NamedHistogram {
                    name: "lru".into(),
                    hist: lru.snapshot(),
                },
                NamedHistogram {
                    name: "miss".into(),
                    hist: miss.snapshot(),
                },
                NamedHistogram {
                    name: "store".into(),
                    hist: LatencyHistogram::new().snapshot(),
                },
            ],
            phases: vec![NamedHistogram {
                name: "synthesis".into(),
                hist: miss.snapshot(),
            }],
            slowest: vec![SpanSnapshot {
                seq: 7,
                trace_id: String::new(),
                span_id: String::new(),
                parent_span_id: String::new(),
                verb: "Plan".into(),
                tier: "miss".into(),
                total_micros: 150_000,
                phase_micros,
            }],
            solver: vec![],
        };
        let text = render_metrics("127.0.0.1:4547", &m, 3);
        assert!(text.contains("hit ratio 90.0%"), "{text}");
        // No PlanDelta traffic → the delta counter line stays hidden.
        assert!(!text.contains("delta "), "{text}");
        assert!(text.contains("lru"), "{text}");
        // An empty histogram renders dashes, not zeros-as-latency.
        let store_row = text.lines().find(|l| l.starts_with("store")).unwrap();
        assert!(store_row.contains('-'), "{store_row}");
        // µs and ms units both appear; the slow span lists only the
        // phases it entered.
        assert!(text.contains("µs"), "{text}");
        assert!(text.contains("ms"), "{text}");
        assert!(text.contains("#7 Plan miss 150.0ms"), "{text}");
        assert!(text.contains("synthesis 149.0ms"), "{text}");
        assert!(!text.contains("frame_read 0"), "{text}");
        // slowest = 0 hides the section entirely.
        let quiet = render_metrics("addr", &m, 0);
        assert!(!quiet.contains("slowest"), "{quiet}");
    }

    #[test]
    fn render_counters_shows_delta_line_once_deltas_flow() {
        use stalloc_core::ServeStats;
        let text = render_counters(&ServeStats {
            requests: 3,
            plan_requests: 3,
            delta_requests: 2,
            delta_patched: 1,
            delta_hits: 1,
            ..ServeStats::default()
        });
        assert!(
            text.contains("delta 2 · patched 1 · already cached 1"),
            "{text}"
        );
    }

    #[test]
    fn remote_and_cache_are_mutually_exclusive() {
        let err = dispatch(&argv(
            "plan --input p.json --output x.json --cache c --remote 127.0.0.1:1",
        ))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn remote_plan_against_live_server() {
        use stalloc_served::{PlanServer, ServeConfig};

        let dir = std::env::temp_dir().join(format!("stalloc-cli-remote-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let store_d = dir.join("served-store");

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        let server = PlanServer::start(ServeConfig {
            workers: 2,
            store_dir: Some(store_d),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();

        // First remote plan synthesizes on the server; the second is a
        // cache hit (the CI smoke test exercises the same pair through
        // the real binary).
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.plan_requests, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits(), 1);

        // The remotely planned artifact is a normal local plan file.
        let plan = read_plan(&plan_p).unwrap();
        plan.validate().unwrap();

        // A JSON-wire request (for pre-binary servers) is the same job:
        // another cache hit, same artifact.
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr} --wire json"
        )))
        .unwrap();
        assert_eq!(server.stats().hits(), 2);
        assert_eq!(read_plan(&plan_p).unwrap(), plan);

        // --wire is remote-only, and its values are checked.
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --wire json"
        )))
        .unwrap_err();
        assert!(err.contains("--wire"), "{err}");
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr} --wire xml"
        )))
        .unwrap_err();
        assert!(err.contains("--wire"), "{err}");

        // `stalloc stats` renders the live server's counters and
        // histograms end to end (one miss + two hits are on the books),
        // and `stalloc top --count 1` prints a single dashboard frame.
        dispatch(&argv(&format!("stats {addr}"))).unwrap();
        dispatch(&argv(&format!("stats {addr} --slowest 0"))).unwrap();
        dispatch(&argv(&format!("stats {addr} --format json"))).unwrap();
        dispatch(&argv(&format!("top {addr} --count 1"))).unwrap();

        // The one miss ran the solver: its per-strategy profile is on
        // the Metrics wire and renders as the solver table.
        let metrics = PlanClient::connect(addr)
            .and_then(|mut c| c.metrics())
            .unwrap();
        assert!(!metrics.solver.is_empty(), "solver section populated");
        let table = render_solver_table(&metrics.solver);
        assert!(table.contains("baseline"), "{table}");
        let text = render_metrics(&addr.to_string(), &metrics, 0);
        assert!(text.contains("solver"), "{text}");

        // An unreachable server is a clean error, not a hang or panic.
        server.shutdown();
        let err = dispatch(&argv(&format!("stats {addr}"))).unwrap_err();
        assert!(err.contains(&addr.to_string()), "{err}");
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap_err();
        assert!(err.contains("--remote"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_prof_and_delta_base_remote_plan() {
        use stalloc_served::{PlanServer, ServeConfig};
        use stalloc_store::is_binary_delta;

        let dir = std::env::temp_dir().join(format!("stalloc-cli-delta-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let t0_p = dir.join("t0.json").to_string_lossy().to_string();
        let t1_p = dir.join("t1.json").to_string_lossy().to_string();
        let p0_p = dir.join("p0.json").to_string_lossy().to_string();
        let p1_p = dir.join("p1.json").to_string_lossy().to_string();
        let d_p = dir.join("d.prfd").to_string_lossy().to_string();
        let pl0_p = dir.join("pl0.stplan").to_string_lossy().to_string();
        let pl1_p = dir.join("pl1.stplan").to_string_lossy().to_string();

        // The Chronos-style family through the real CLI: the same job
        // observed from two pipeline stages.
        for (stage, trace_p) in [(0, &t0_p), (1, &t1_p)] {
            dispatch(&argv(&format!(
                "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
                 --iterations 2 --stage {stage} --output {trace_p}"
            )))
            .unwrap();
        }
        dispatch(&argv(&format!("profile --input {t0_p} --output {p0_p}"))).unwrap();
        dispatch(&argv(&format!("profile --input {t1_p} --output {p1_p}"))).unwrap();

        // diff-prof summarizes the pair and writes a real PRFD frame.
        dispatch(&argv(&format!("diff-prof {p0_p} {p1_p} --output {d_p}"))).unwrap();
        let frame = fs::read(&d_p).unwrap();
        assert!(is_binary_delta(&frame), "PRFD magic on the artifact");
        // Identity diff still works (everything reused).
        dispatch(&argv(&format!("diff-prof {p0_p} {p0_p}"))).unwrap();

        // Cold plan for the base teaches the server the base profile;
        // the delta request then patches instead of synthesizing.
        let server = PlanServer::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        dispatch(&argv(&format!(
            "plan --input {p0_p} --output {pl0_p} --remote {addr}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {p1_p} --output {pl1_p} --remote {addr} --delta-base {p0_p}"
        )))
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.delta_requests, 1);
        assert_eq!(stats.delta_patched, 1, "{stats:?}");
        // The patched artifact is a normal, sound plan file.
        read_plan(&pl1_p).unwrap();

        // Error paths: remote-only flag, wrong positional count, typo.
        server.shutdown();
        let err = dispatch(&argv(&format!(
            "plan --input {p1_p} --output {pl1_p} --delta-base {p0_p}"
        )))
        .unwrap_err();
        assert!(err.contains("--delta-base"), "{err}");
        let err = dispatch(&argv(&format!("diff-prof {p0_p}"))).unwrap_err();
        assert!(err.contains("two profile files"), "{err}");
        let err = dispatch(&argv("dif-prof a b")).unwrap_err();
        assert!(err.contains("did you mean 'diff-prof'"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_trace_flag_is_remote_only_and_values_are_checked() {
        let err =
            dispatch(&argv("plan --input p.json --output x.json --trace t.json")).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let err = dispatch(&argv("serve --slowest nope")).unwrap_err();
        assert!(err.contains("--slowest"), "{err}");
        // The format check fires before any connection attempt.
        let err = dispatch(&argv("stats 127.0.0.1:1 --format xml")).unwrap_err();
        assert!(err.contains("--format"), "{err}");
    }

    #[test]
    fn trace_convert_renders_jsonl_logs_as_chrome_lanes() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-tracecvt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let a_p = dir.join("a.jsonl").to_string_lossy().to_string();
        let b_p = dir.join("b.jsonl").to_string_lossy().to_string();
        let out_p = dir.join("out.json").to_string_lossy().to_string();

        fs::write(
            &a_p,
            concat!(
                r#"{"seq":1,"verb":"Plan","tier":"miss","total_micros":900,"#,
                r#""trace_id":"00000000000000000000000000000001","synthesis":800,"encode":100}"#,
                "\n",
                r#"{"seq":2,"verb":"Ping","total_micros":5}"#,
                "\n"
            ),
        )
        .unwrap();
        fs::write(
            &b_p,
            concat!(
                r#"{"seq":1,"verb":"Get","tier":"lru","total_micros":40,"encode":40}"#,
                "\n"
            ),
        )
        .unwrap();

        dispatch(&argv(&format!("trace merge {a_p} {b_p} --output {out_p}"))).unwrap();
        let doc = fs::read_to_string(&out_p).unwrap();
        let events = match serde_json::from_str::<serde::Value>(&doc).unwrap() {
            serde::Value::Seq(events) => events,
            other => panic!("expected array, got {other:?}"),
        };
        // One lane per file, named after it, in argument order.
        let lane_names: Vec<String> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(serde::Value::Str(s)) if s == "M"))
            .filter_map(|e| match e.get("args")?.get("name") {
                Some(serde::Value::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lane_names, vec![a_p.clone(), b_p.clone()]);
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(serde::Value::Str(s)) if s == "X"))
            .filter_map(|e| e.get("pid")?.as_u64())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(doc.contains("00000000000000000000000000000001"), "{doc}");

        // `chrome` is a synonym; stdout is the default sink.
        dispatch(&argv(&format!("trace chrome {a_p}"))).unwrap();

        // Error paths: no files, unparseable JSON, a line with no verb.
        let err = dispatch(&argv("trace merge")).unwrap_err();
        assert!(err.contains("no trace-log files"), "{err}");
        let bad_p = dir.join("bad.jsonl").to_string_lossy().to_string();
        fs::write(&bad_p, "not json\n").unwrap();
        assert!(dispatch(&argv(&format!("trace merge {bad_p}"))).is_err());
        fs::write(&bad_p, "{\"no_verb\":1}\n").unwrap();
        let err = dispatch(&argv(&format!("trace merge {bad_p}"))).unwrap_err();
        assert!(err.contains("verb"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remote_plan_trace_writes_a_merged_chrome_timeline() {
        use stalloc_served::{PlanServer, ServeConfig};

        let dir = std::env::temp_dir().join(format!("stalloc-cli-mtrace-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let log_p = dir.join("server-trace.jsonl");
        let merged_p = dir.join("merged.json").to_string_lossy().to_string();
        let conv_p = dir.join("converted.json").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        let server = PlanServer::start(ServeConfig {
            workers: 2,
            trace_log: Some(log_p.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();

        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr} --trace {merged_p}"
        )))
        .unwrap();

        let events =
            match serde_json::from_str::<serde::Value>(&fs::read_to_string(&merged_p).unwrap())
                .unwrap()
            {
                serde::Value::Seq(events) => events,
                other => panic!("expected array, got {other:?}"),
            };
        assert!(events.len() >= 8, "thin timeline: {} events", events.len());

        let str_of = |e: &serde::Value, k: &str| match e.get(k) {
            Some(serde::Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        let u64_of =
            |e: &serde::Value, k: &str| e.get(k).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
        let slices: Vec<&serde::Value> = events.iter().filter(|e| str_of(e, "ph") == "X").collect();
        let pids: std::collections::BTreeSet<u64> =
            slices.iter().map(|e| u64_of(e, "pid")).collect();
        assert_eq!(
            pids.into_iter().collect::<Vec<_>>(),
            vec![1, 2],
            "client and server lanes"
        );

        // Root slices are the ones carrying a `verb` arg; phases carry
        // none. The client planned over the binary profile wire, so the
        // server side of the same request is the ProfileBin verb.
        let root_of = |pid: u64| {
            slices
                .iter()
                .find(|e| {
                    u64_of(e, "pid") == pid && e.get("args").and_then(|a| a.get("verb")).is_some()
                })
                .copied()
                .unwrap_or_else(|| panic!("no root slice on pid {pid}"))
        };
        let client_root = root_of(1);
        let server_root = root_of(2);
        assert_eq!(str_of(client_root, "name"), "Plan");
        assert_eq!(str_of(server_root, "name"), "ProfileBin");

        // One trace id end to end, client and server.
        let args_of = |e: &serde::Value| e.get("args").unwrap().clone();
        let trace_id = match args_of(client_root).get("trace_id") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("client trace_id arg: {other:?}"),
        };
        assert_eq!(trace_id.len(), 32, "{trace_id}");
        match args_of(server_root).get("trace_id") {
            Some(serde::Value::Str(s)) => assert_eq!(*s, trace_id),
            other => panic!("server trace_id arg: {other:?}"),
        }
        // The server span descends from the client span: its parent is
        // the wire context's parent, i.e. the client span itself.
        match (
            args_of(server_root).get("parent_span_id"),
            args_of(client_root).get("span_id"),
        ) {
            (Some(serde::Value::Str(parent)), Some(serde::Value::Str(span))) => {
                assert_eq!(parent, span, "server span parented on the client span")
            }
            other => panic!("id args missing: {other:?}"),
        }

        // The server span obeys the layout law: inside the client's
        // await slice when it fits there, otherwise end-aligned with
        // the await end (the head overlaps the client's write — the
        // frames pipeline), otherwise pinned inside the client root,
        // otherwise laid after it. The unaccounted remainder of the
        // wait is reported as net_queue_micros.
        let await_slice = slices
            .iter()
            .find(|e| u64_of(e, "pid") == 1 && str_of(e, "name") == "await")
            .expect("client await slice");
        let (a_ts, a_dur) = (u64_of(await_slice, "ts"), u64_of(await_slice, "dur"));
        let (c_ts, c_dur) = (u64_of(client_root, "ts"), u64_of(client_root, "dur"));
        assert!(c_ts + c_dur >= a_ts + a_dur, "await nests in the root");
        let (s_ts, s_dur) = (u64_of(server_root, "ts"), u64_of(server_root, "dur"));
        if s_dur <= a_dur {
            assert!(
                s_ts >= a_ts && s_ts + s_dur <= a_ts + a_dur,
                "server span [{s_ts}, {}] escapes the await window [{a_ts}, {}]",
                s_ts + s_dur,
                a_ts + a_dur
            );
        } else if s_dur <= a_ts + a_dur {
            assert_eq!(s_ts + s_dur, a_ts + a_dur, "end-aligned with the await end");
        } else if s_dur <= c_ts + c_dur {
            assert_eq!(s_ts, c_ts, "pinned to the client root start");
        } else {
            assert_eq!(s_ts, c_ts + c_dur + 1, "disjoint fallback");
        }
        // The server's phase slices always nest inside its own root.
        for s in slices.iter().filter(|e| u64_of(e, "pid") == 2) {
            let (ts, dur) = (u64_of(s, "ts"), u64_of(s, "dur"));
            assert!(
                ts >= s_ts && ts + dur <= s_ts + s_dur,
                "server phase [{ts}, {}] escapes its root [{s_ts}, {}]",
                ts + dur,
                s_ts + s_dur
            );
        }
        let net_queue: u64 = match args_of(client_root).get("net_queue_micros") {
            Some(serde::Value::Str(s)) => s.parse().unwrap(),
            other => panic!("net_queue_micros arg: {other:?}"),
        };
        assert_eq!(net_queue, a_dur.saturating_sub(s_dur));

        // The same trace id is on the server's own JSONL trace log (the
        // span was recorded before our TraceGet got its answer)...
        let log = fs::read_to_string(&log_p).unwrap();
        assert!(log.contains(&trace_id), "trace id in server log:\n{log}");
        // ...and that log converts to a standalone Chrome timeline.
        dispatch(&argv(&format!(
            "trace chrome {} --output {conv_p}",
            log_p.display()
        )))
        .unwrap();
        let conv = fs::read_to_string(&conv_p).unwrap();
        assert!(serde_json::from_str::<serde::Value>(&conv).is_ok());
        assert!(conv.contains(&trace_id));

        server.shutdown();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flag_suggests_per_command() {
        let err = dispatch(&argv("plan --inptu p.json --output x.json")).unwrap_err();
        assert!(err.contains("did you mean '--input'"), "{err}");
        let err = dispatch(&argv("trace --modle gpt2 --output t.json")).unwrap_err();
        assert!(err.contains("did you mean '--model'"), "{err}");
    }

    #[test]
    fn end_to_end_pipeline_through_files() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.json").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --optim R --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!("plan --input {prof_p} --output {plan_p}"))).unwrap();
        dispatch(&argv(&format!("show --input {plan_p} --rows 4 --cols 20"))).unwrap();
        dispatch(&argv(&format!(
            "replay --input {trace_p} --allocator torch23 --device a800"
        )))
        .unwrap();

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_plans_and_cache_workflow() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-bin-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let bin_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let json_p = dir.join("pl.json").to_string_lossy().to_string();
        let cache_d = dir.join("cache").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        // First cached plan: miss; second: hit. Binary output via the
        // .stplan extension, JSON via explicit --format.
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {bin_p} --cache {cache_d}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {json_p} --format json --cache {cache_d}"
        )))
        .unwrap();
        let store = PlanStore::open(&cache_d).unwrap();
        assert_eq!(store.entries().unwrap().len(), 1, "same job cached once");

        // The binary artifact is a real binary plan, much smaller than
        // JSON, and `show` reads both formats transparently.
        let bin = fs::read(&bin_p).unwrap();
        let json = fs::read(&json_p).unwrap();
        assert!(is_binary_plan(&bin));
        assert!(
            bin.len() * 4 <= json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
        assert_eq!(read_plan(&bin_p).unwrap(), read_plan(&json_p).unwrap());
        dispatch(&argv(&format!("show --input {bin_p} --rows 4 --cols 20"))).unwrap();

        // cache ls / ls --long / gc / clear run end to end.
        dispatch(&argv(&format!("cache ls --dir {cache_d}"))).unwrap();
        dispatch(&argv(&format!("cache ls --long --dir {cache_d}"))).unwrap();
        dispatch(&argv(&format!("cache gc --dir {cache_d}"))).unwrap();
        assert_eq!(store.entries().unwrap().len(), 1, "gc keeps live entries");
        dispatch(&argv(&format!("cache clear --dir {cache_d}"))).unwrap();
        assert!(store.entries().unwrap().is_empty());

        fs::remove_dir_all(&dir).ok();
    }
}
