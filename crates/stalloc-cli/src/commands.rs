//! Subcommand implementations for the `stalloc` tool.

use std::fs;

use gpu_sim::DeviceSpec;
use harness::{run, AllocatorKind};
use stalloc_core::{profile_trace, synthesize, Plan, ProfiledRequests, SynthConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, Trace, TrainJob};

use crate::args::Args;

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: stalloc <command> [--flags]

commands:
  trace    generate a training memory trace
           --model gpt2|llama2-7b|qwen2.5-{7b,14b,32b,72b}|qwen1.5-moe
           [--tp N --pp N --dp N --ep N --vpp N] [--mbs N --seq N
           --microbatches N --iterations N --seed N] [--optim N|R|V|VR|ZR|ZOR]
           --output FILE
  profile  characterize one iteration's requests (paper section 4)
           --input TRACE --output FILE [--iteration N]
  plan     synthesize the allocation plan (paper section 5)
           --input PROFILE --output FILE [--no-fusion] [--no-gaps]
           [--ascending]
  show     render a plan's occupancy as ASCII art
           --input PLAN [--rows N] [--cols N]
  replay   replay a trace through an allocator (paper section 9 metrics)
           --input TRACE [--allocator stalloc|stalloc-noreuse|torch20|
           torch23|torch26|es|gmlake|native] [--device a800|h200|mi210]
           [--frag-limit MiB]";

/// Dispatches `argv[0]` to its subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "trace" => cmd_trace(&args),
        "profile" => cmd_profile(&args),
        "plan" => cmd_plan(&args),
        "show" => cmd_show(&args),
        "replay" => cmd_replay(&args),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn parse_model(name: &str) -> Result<ModelSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gpt2" | "gpt-2" => ModelSpec::gpt2_345m(),
        "llama2-7b" | "llama2" => ModelSpec::llama2_7b(),
        "qwen2.5-7b" => ModelSpec::qwen25_7b(),
        "qwen2.5-14b" => ModelSpec::qwen25_14b(),
        "qwen2.5-32b" => ModelSpec::qwen25_32b(),
        "qwen2.5-72b" => ModelSpec::qwen25_72b(),
        "qwen1.5-moe" | "moe" => ModelSpec::qwen15_moe_a27b(),
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn parse_optim(label: &str) -> Result<(OptimConfig, bool), String> {
    Ok(match label.to_ascii_uppercase().as_str() {
        "N" | "NAIVE" => (OptimConfig::naive(), false),
        "R" => (OptimConfig::r(), false),
        "V" => (OptimConfig::naive(), true),
        "VR" => (OptimConfig::r(), true),
        "ZR" => (OptimConfig::zr(), false),
        "ZOR" => (OptimConfig::zor(), false),
        other => return Err(format!("unknown optimization combo '{other}'")),
    })
}

fn parse_device(name: &str) -> Result<DeviceSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "a800" => DeviceSpec::a800_80g(),
        "h200" => DeviceSpec::h200_141g(),
        "mi210" => DeviceSpec::mi210_64g(),
        other => return Err(format!("unknown device '{other}'")),
    })
}

fn parse_allocator(name: &str, frag_limit_mib: u64) -> Result<AllocatorKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "stalloc" => AllocatorKind::Stalloc,
        "stalloc-noreuse" => AllocatorKind::StallocNoReuse,
        "torch20" => AllocatorKind::Torch20,
        "torch23" => AllocatorKind::Torch23,
        "torch26" => AllocatorKind::Torch26,
        "es" | "expandable" => AllocatorKind::TorchEs,
        "gmlake" => AllocatorKind::GmLake(frag_limit_mib << 20),
        "native" => AllocatorKind::Native,
        other => return Err(format!("unknown allocator '{other}'")),
    })
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let data = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("{path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let data = serde_json::to_string(value).map_err(|e| e.to_string())?;
    fs::write(path, &data).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {path} ({} bytes)", data.len());
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let model = parse_model(args.require("model")?)?;
    let (optim, vpp_on) = parse_optim(args.get("optim").unwrap_or("N"))?;
    let mut parallel = ParallelConfig::new(
        args.num("tp", 1u32)?,
        args.num("pp", 1u32)?,
        args.num("dp", 1u32)?,
    )
    .with_ep(args.num("ep", 1u32)?);
    let vpp = args.num("vpp", if vpp_on { 2u32 } else { 1 })?;
    if vpp > 1 {
        parallel = parallel.with_vpp(vpp);
    }
    let seq_default = model.seq_len;
    let job = TrainJob::new(model, parallel, optim)
        .with_mbs(args.num("mbs", 1u32)?)
        .with_seq(args.num("seq", seq_default)?)
        .with_microbatches(args.num("microbatches", 4 * parallel.pp)?)
        .with_iterations(args.num("iterations", 3u32)?)
        .with_seed(args.num("seed", 42u64)?);
    let trace = job.build_trace()?;
    eprintln!(
        "{} [{}]: {} requests/iteration, {} distinct sizes",
        job.model.name,
        job.label(),
        trace.allocs_in_iteration(1),
        trace.distinct_sizes(512).len()
    );
    write_json(args.require("output")?, &trace)
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let iter = args.num("iteration", 1u32)?;
    let profile = profile_trace(&trace, iter).map_err(|e| e.to_string())?;
    eprintln!(
        "profiled iteration {iter}: {} static ({} persistent) + {} dynamic, {} phases",
        profile.statics.len(),
        profile.init_count,
        profile.dynamics.len(),
        profile.num_phases
    );
    write_json(args.require("output")?, &profile)
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let profile: ProfiledRequests = read_json(args.require("input")?)?;
    let config = SynthConfig {
        enable_fusion: !args.flag("no-fusion"),
        enable_gap_insertion: !args.flag("no-gaps"),
        ascending_sizes: args.flag("ascending"),
    };
    let plan = synthesize(&profile, &config);
    plan.validate()?;
    let s = plan.stats;
    eprintln!(
        "plan: pool {:.3} GiB, packing {:.3}, {} layers, {} gap insertions, \
         {} HomoLayer groups",
        s.pool_size as f64 / (1u64 << 30) as f64,
        s.packing_efficiency(),
        s.layers,
        s.gap_inserted,
        s.homolayer_groups
    );
    write_json(args.require("output")?, &plan)
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let plan: Plan = read_json(args.require("input")?)?;
    let rows = args.num("rows", 16usize)?;
    let cols = args.num("cols", 72usize)?;
    println!("{}", stalloc_core::render_plan(&plan, rows, cols));
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let device = parse_device(args.get("device").unwrap_or("a800"))?;
    let frag = args.num("frag-limit", 512u64)?;
    let kind = parse_allocator(args.get("allocator").unwrap_or("stalloc"), frag)?;
    if kind.needs_vmm() && !device.supports_vmm {
        return Err(format!("{} requires VMM support", kind.label()));
    }
    let result = run(&trace, &device, kind);
    let r = &result.report;
    println!("allocator      : {}", r.allocator);
    println!("device         : {}", device.name);
    println!(
        "allocated (M_a): {:.3} GiB",
        r.peak_requested as f64 / (1u64 << 30) as f64
    );
    println!(
        "reserved  (M_r): {:.3} GiB",
        r.peak_reserved as f64 / (1u64 << 30) as f64
    );
    println!("efficiency     : {:.1}%", r.efficiency() * 100.0);
    println!("outcome        : {}", if r.oom { "OOM" } else { "ok" });
    if let Some(d) = &r.oom_detail {
        println!("oom detail     : {d}");
    }
    if let Some(t) = result.throughput {
        println!("iteration time : {:.3} s (modelled)", t.iter_time_s);
        println!("throughput     : {:.1} TFLOPS/GPU (modelled)", t.tflops);
    }
    if let Some(c) = result.counters {
        println!(
            "runtime        : {} planned, {} lookahead, {} static fallback, \
             {} dyn reused, {} dyn fallback",
            c.static_planned,
            c.lookahead_matches,
            c.static_fallback,
            c.dynamic_reused,
            c.dynamic_fallback
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsers_cover_the_zoo() {
        assert!(parse_model("gpt2").is_ok());
        assert!(parse_model("qwen1.5-moe").unwrap().is_moe());
        assert!(parse_model("nope").is_err());
        assert!(parse_optim("zor").is_ok());
        assert!(parse_optim("X").is_err());
        assert!(parse_device("h200").is_ok());
        assert!(parse_device("tpu").is_err());
        assert_eq!(
            parse_allocator("gmlake", 64).unwrap(),
            AllocatorKind::GmLake(64 << 20)
        );
        assert!(parse_allocator("jemalloc", 0).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        let argv = vec!["fly".to_string()];
        assert!(dispatch(&argv).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn end_to_end_pipeline_through_files() {
        let dir = std::env::temp_dir().join("stalloc-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.json").to_string_lossy().to_string();

        let argv: Vec<String> = format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --optim R --output {trace_p}"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        dispatch(&argv).unwrap();

        let argv: Vec<String> =
            format!("profile --input {trace_p} --output {prof_p}")
                .split_whitespace()
                .map(String::from)
                .collect();
        dispatch(&argv).unwrap();

        let argv: Vec<String> = format!("plan --input {prof_p} --output {plan_p}")
            .split_whitespace()
            .map(String::from)
            .collect();
        dispatch(&argv).unwrap();

        let argv: Vec<String> = format!("show --input {plan_p} --rows 4 --cols 20")
            .split_whitespace()
            .map(String::from)
            .collect();
        dispatch(&argv).unwrap();

        let argv: Vec<String> =
            format!("replay --input {trace_p} --allocator torch23 --device a800")
                .split_whitespace()
                .map(String::from)
                .collect();
        dispatch(&argv).unwrap();

        fs::remove_dir_all(&dir).ok();
    }
}
