//! Subcommand implementations for the `stalloc` tool.

use std::fs;

use gpu_sim::DeviceSpec;
use harness::{run, AllocatorKind};
use stalloc_core::wire::NamedHistogram;
use stalloc_core::{
    profile_trace, Plan, ProfileEncoding, ProfiledRequests, ServeMetrics, StrategyChoice,
    SynthConfig, FINGERPRINT_VERSION, SYNTH_ALGO_VERSION,
};
use stalloc_obs::Phase;
use stalloc_served::{ClientError, PlanClient, PlanServer, ServeConfig};
use stalloc_solver::{registry, synthesize_portfolio, synthesize_strategy};
use stalloc_store::{decode_plan, encode_plan, is_binary_plan, synthesize_cached};
use stalloc_store::{CacheOutcome, PlanStore};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, Trace, TrainJob};

use crate::args::{nearest, Args, FlagSpec};

/// Usage text printed on errors and by `stalloc --help`.
pub const USAGE: &str = "\
usage: stalloc <command> [--flags]
       stalloc <command> --help   for per-command details

commands:
  trace       generate a training memory trace
  profile     characterize one iteration's requests (paper section 4)
  plan        synthesize the allocation plan (paper section 5),
              locally or against a plan server (--remote)
  show        render a plan's occupancy as ASCII art
  replay      replay a trace through an allocator (paper section 9 metrics)
  serve       run the plan-synthesis daemon over a shared plan cache
  stats       show a live server's counters and latency histograms
  cache       inspect a plan cache directory (ls | gc | clear)
  strategies  list the registered plan-synthesis strategies
  fuzz        fuzz the wire decoders and the plan server (deterministic)
  version     print tool and planner-algorithm versions";

struct Command {
    name: &'static str,
    help: &'static str,
    spec: FlagSpec,
    run: fn(&Args) -> Result<(), String>,
}

const COMMANDS: &[Command] = &[
    Command {
        name: "trace",
        help: "\
usage: stalloc trace --model M --output FILE [flags]
  --model M         gpt2|llama2-7b|qwen2.5-{7b,14b,32b,72b}|qwen1.5-moe
  --output FILE     trace destination (JSON)
  --tp/--pp/--dp N  tensor/pipeline/data parallel degree (default 1)
  --ep N            expert parallel degree (default 1)
  --vpp N           virtual pipeline stages
  --mbs N           micro-batch size (default 1)
  --seq N           sequence length (default: model native)
  --microbatches N  microbatches per iteration (default 4*pp)
  --iterations N    iterations to emit (default 3)
  --seed N          workload RNG seed (default 42)
  --optim C         N|R|V|VR|ZR|ZOR optimization combo (default N)",
        spec: FlagSpec {
            value_flags: &[
                "model",
                "output",
                "tp",
                "pp",
                "dp",
                "ep",
                "vpp",
                "mbs",
                "seq",
                "microbatches",
                "iterations",
                "seed",
                "optim",
            ],
            bool_flags: &[],
        },
        run: cmd_trace,
    },
    Command {
        name: "profile",
        help: "\
usage: stalloc profile --input TRACE --output FILE [--iteration N]
  --input TRACE     trace JSON produced by `stalloc trace`
  --output FILE     profile destination (JSON)
  --iteration N     1-based iteration to profile (default 1)",
        spec: FlagSpec {
            value_flags: &["input", "output", "iteration"],
            bool_flags: &[],
        },
        run: cmd_profile,
    },
    Command {
        name: "plan",
        help: "\
usage: stalloc plan --input PROFILE --output FILE [flags]
  --input PROFILE   profile JSON produced by `stalloc profile`
  --output FILE     plan destination
  --format F        bin|json (default: bin when FILE ends in
                    .stplan/.bin, else json)
  --strategy S      packing strategy: baseline|bestfit|tmp-order|
                    lookahead, or `portfolio` to race them all and keep
                    the best plan (default baseline; see
                    `stalloc strategies`)
  --cache DIR       consult/populate a plan cache: on a fingerprint hit
                    the plan is loaded and synthesis is skipped
  --remote ADDR     plan via a `stalloc serve` daemon at ADDR instead of
                    synthesizing locally (mutually exclusive with --cache)
  --wire W          with --remote: how the profile travels — `bin`
                    (default: PROF binary codec in a raw frame) or
                    `json` (inline, for pre-binary servers / nc
                    debugging)
  --no-fusion       disable HomoPhase fusion (ablation; steers the
                    grouped pipelines — baseline, tmp-order — only)
  --no-gaps         disable gap insertion (ablation; baseline only)
  --ascending       process size classes ascending (ablation;
                    baseline only)",
        spec: FlagSpec {
            value_flags: &[
                "input", "output", "format", "strategy", "cache", "remote", "wire",
            ],
            bool_flags: &["no-fusion", "no-gaps", "ascending"],
        },
        run: cmd_plan,
    },
    Command {
        name: "strategies",
        help: "\
usage: stalloc strategies
  lists the registered plan-synthesis strategies (usable as
  `stalloc plan --strategy NAME`) plus the `portfolio` meta-strategy
  that races all of them in parallel and keeps the best plan",
        spec: FlagSpec {
            value_flags: &[],
            bool_flags: &[],
        },
        run: cmd_strategies,
    },
    Command {
        name: "show",
        help: "\
usage: stalloc show --input PLAN [--rows N] [--cols N]
  --input PLAN      plan file, binary (.stplan) or JSON — autodetected
  --rows N          occupancy rows (default 16)
  --cols N          occupancy columns (default 72)",
        spec: FlagSpec {
            value_flags: &["input", "rows", "cols"],
            bool_flags: &[],
        },
        run: cmd_show,
    },
    Command {
        name: "replay",
        help: "\
usage: stalloc replay --input TRACE [flags]
  --input TRACE     trace JSON produced by `stalloc trace`
  --allocator A     stalloc|stalloc-noreuse|torch20|torch23|torch26|
                    es|gmlake|native (default stalloc)
  --device D        a800|h200|mi210 (default a800)
  --frag-limit MiB  GMLake fragmentation limit (default 512)",
        spec: FlagSpec {
            value_flags: &["input", "allocator", "device", "frag-limit"],
            bool_flags: &[],
        },
        run: cmd_replay,
    },
    Command {
        name: "serve",
        help: "\
usage: stalloc serve [flags]
  --addr A          bind address (default 127.0.0.1:4547; port 0 picks
                    a free port, printed on startup)
  --workers N       worker threads (default 4)
  --cache DIR       shared on-disk plan store (default: in-memory only)
  --queue N         accept-queue bound before Busy rejections (default 64)
  --lru N           in-process LRU capacity in plans (default 128; 0 off)
  --max-frame-mib N largest accepted request frame (default 64)
  --trace-log FILE  append one JSON line per served request (seq, verb,
                    cache tier, total and per-phase µs) — `tail -f`
                    friendly; off by default

serves the length-prefixed JSONL plan protocol until killed; identical
concurrent jobs are deduplicated to one synthesis (single-flight);
`stalloc stats ADDR` shows its live counters and latency histograms",
        spec: FlagSpec {
            value_flags: &[
                "addr",
                "workers",
                "cache",
                "queue",
                "lru",
                "max-frame-mib",
                "trace-log",
            ],
            bool_flags: &[],
        },
        run: cmd_serve,
    },
    Command {
        name: "fuzz",
        help: "\
usage: stalloc fuzz [flags]
  --iters N         mutations per codec target (default 100000; the
                    server harness runs min(N, 256) live TCP scenarios)
  --seed N          master RNG seed (default 42) — same seed, same run,
                    any machine
  --target T        prof|stpl|frame|server|all (default all)
  --corpus DIR      committed-seed corpus root (default: the corpus
                    shipped in crates/stalloc-fuzz/corpus)

replays the committed regression corpus, then fires structure-aware
mutants at the strict decoders, checking differential oracles
(decode→re-encode fixpoint, fingerprint-of-bytes == fingerprint-of-
value, STPL v1/v2 interop) and malformed-stream recovery on a live
loopback server; exits nonzero on any panic, oracle violation, or
never-exercised rejection variant (minimized failures land in
target/fuzz-failures/)",
        spec: FlagSpec {
            value_flags: &["iters", "seed", "target", "corpus"],
            bool_flags: &[],
        },
        run: cmd_fuzz,
    },
    Command {
        name: "version",
        help: "\
usage: stalloc version
  prints the tool version plus the planner-algorithm and profile
  fingerprint versions that key the plan caches",
        spec: FlagSpec {
            value_flags: &[],
            bool_flags: &[],
        },
        run: cmd_version,
    },
];

const STATS_HELP: &str = "\
usage: stalloc stats ADDR [--slowest N]
  queries the `stalloc serve` daemon at ADDR for its live counters and
  latency histograms (the `Metrics` wire verb) and renders hit ratios
  plus p50/p90/p99 per cache tier and per request phase
  --slowest N       also show the N slowest retained requests
                    (default 3; 0 hides the section)

a server that predates the `Metrics` verb rejects it; this command then
falls back to the counters-only `Stats` verb and says so";

const STATS_SPEC: FlagSpec = FlagSpec {
    value_flags: &["slowest"],
    bool_flags: &[],
};

const CACHE_HELP: &str = "\
usage: stalloc cache <ls|gc|clear> --dir DIR
  ls     list cached plans (fingerprint, size, pool, created)
  gc     drop dangling index rows, orphan artifacts, stale temp files
  clear  remove every cached plan and the index";

const CACHE_SPEC: FlagSpec = FlagSpec {
    value_flags: &["dir"],
    bool_flags: &[],
};

/// Dispatches `argv[0]` to its subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    match cmd.as_str() {
        "--version" | "-V" => cmd_version(&Args::default()),
        "help" | "--help" | "-h" => {
            // `stalloc help <command>` prints that command's help.
            if let Some(topic) = rest.first() {
                return print_command_help(topic);
            }
            println!("{USAGE}");
            Ok(())
        }
        "cache" => dispatch_cache(rest),
        "stats" => dispatch_stats(rest),
        name => {
            let Some(command) = COMMANDS.iter().find(|c| c.name == name) else {
                let candidates = COMMANDS
                    .iter()
                    .map(|c| c.name)
                    .chain(["cache", "stats", "help"]);
                return Err(match nearest(name, candidates) {
                    Some(s) => format!("unknown command '{name}' (did you mean '{s}'?)"),
                    None => format!("unknown command '{name}'"),
                });
            };
            let args = Args::parse(rest, &command.spec)?;
            if args.wants_help() {
                println!("{}", command.help);
                return Ok(());
            }
            (command.run)(&args)
        }
    }
}

fn print_command_help(topic: &str) -> Result<(), String> {
    if topic == "cache" {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    if topic == "stats" {
        println!("{STATS_HELP}");
        return Ok(());
    }
    match COMMANDS.iter().find(|c| c.name == topic) {
        Some(c) => {
            println!("{}", c.help);
            Ok(())
        }
        None => Err(format!("no help for unknown command '{topic}'")),
    }
}

fn dispatch_cache(rest: &[String]) -> Result<(), String> {
    let Some((action, rest)) = rest.split_first() else {
        return Err("cache: no action given (ls|gc|clear)".into());
    };
    if action == "--help" || action == "-h" || action == "help" {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &CACHE_SPEC)?;
    if args.wants_help() {
        println!("{CACHE_HELP}");
        return Ok(());
    }
    match action.as_str() {
        "ls" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let entries = store.entries().map_err(|e| e.to_string())?;
            if entries.is_empty() {
                println!("(empty cache at {})", store.dir().display());
                return Ok(());
            }
            println!(
                "{:<32} {:>10} {:>12} {:>8} {:>12}",
                "fingerprint", "bytes", "pool (GiB)", "statics", "created"
            );
            for e in &entries {
                println!(
                    "{:<32} {:>10} {:>12.3} {:>8} {:>12}",
                    e.fingerprint,
                    e.bytes,
                    e.pool_size as f64 / (1u64 << 30) as f64,
                    e.static_requests,
                    e.created_unix
                );
            }
            println!("{} plan(s)", entries.len());
            Ok(())
        }
        "gc" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let r = store.gc().map_err(|e| e.to_string())?;
            println!(
                "gc: dropped {} dangling index entr{}, adopted {} orphan \
                 plan(s), removed {} corrupt file(s) + {} stale temp \
                 file(s); reclaimed {} bytes",
                r.dangling_entries,
                if r.dangling_entries == 1 { "y" } else { "ies" },
                r.adopted_entries,
                r.orphan_files,
                r.temp_files,
                r.reclaimed_bytes
            );
            Ok(())
        }
        "clear" => {
            let store = PlanStore::open(args.require("dir")?).map_err(|e| e.to_string())?;
            let n = store.clear().map_err(|e| e.to_string())?;
            println!("cleared {n} plan(s) from {}", store.dir().display());
            Ok(())
        }
        other => Err(match nearest(other, ["ls", "gc", "clear", "help"]) {
            Some(s) => format!("unknown cache action '{other}' (did you mean '{s}'?)"),
            None => format!("unknown cache action '{other}'"),
        }),
    }
}

fn dispatch_stats(rest: &[String]) -> Result<(), String> {
    // Like `cache`, the first token is positional: the server address.
    let Some((addr, rest)) = rest.split_first() else {
        return Err("stats: no server address given (try `stalloc stats 127.0.0.1:4547`)".into());
    };
    if addr == "--help" || addr == "-h" || addr == "help" {
        println!("{STATS_HELP}");
        return Ok(());
    }
    let args = Args::parse(rest, &STATS_SPEC)?;
    if args.wants_help() {
        println!("{STATS_HELP}");
        return Ok(());
    }
    cmd_stats(addr, args.num("slowest", 3usize)?)
}

fn cmd_stats(addr: &str, slowest: usize) -> Result<(), String> {
    let mut client = PlanClient::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    match client.metrics() {
        Ok(metrics) => {
            print!("{}", render_metrics(addr, &metrics, slowest));
            Ok(())
        }
        Err(ClientError::Server { .. }) => {
            // A pre-`Metrics` server rejects the unknown verb (and drops
            // the connection): fall back to the counters-only view.
            let stats = PlanClient::connect(addr)
                .and_then(|mut c| c.stats())
                .map_err(|e| format!("{addr}: {e}"))?;
            println!("note: server at {addr} predates the Metrics verb; counters only");
            print!("{}", render_counters(&stats));
            Ok(())
        }
        Err(e) => Err(format!("{addr}: {e}")),
    }
}

/// Human latency: `42µs`, `1.2ms`, `3.10s`.
fn fmt_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// The counters block shared by the full and fallback views.
fn render_counters(s: &stalloc_core::ServeStats) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "requests {} · plan {} · hits {} (lru {}, store {}, coalesced {}) · \
         misses {} · hit ratio {:.1}%",
        s.requests,
        s.plan_requests,
        s.hits(),
        s.lru_hits,
        s.store_hits,
        s.coalesced,
        s.misses,
        s.hit_ratio() * 100.0
    );
    let _ = writeln!(
        out,
        "errors {} · rejected {} · metrics {} · in flight {} · queued {} · {} workers",
        s.errors, s.rejected, s.metrics_requests, s.in_flight, s.queue_depth, s.workers
    );
    out
}

/// One aligned histogram table (`tier` or `phase` rows).
fn render_histogram_table(title: &str, rows: &[NamedHistogram]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
        title, "count", "p50", "p90", "p99", "mean"
    );
    for row in rows {
        let h = &row.hist;
        if h.total() == 0 {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
                row.name, 0, "-", "-", "-", "-"
            );
            continue;
        }
        let (p50, p90, p99) = h.percentiles();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>9} {:>9} {:>9} {:>9}",
            row.name,
            h.total(),
            fmt_micros(p50),
            fmt_micros(p90),
            fmt_micros(p99),
            fmt_micros(h.mean())
        );
    }
    out
}

/// Renders a full `Metrics` response: counters, per-tier and per-phase
/// latency tables, and the slowest retained requests.
fn render_metrics(addr: &str, m: &ServeMetrics, slowest: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "stalloc serve at {addr}");
    out.push_str(&render_counters(&m.stats));
    out.push('\n');
    out.push_str(&render_histogram_table("tier", &m.tiers));
    out.push('\n');
    out.push_str(&render_histogram_table("phase", &m.phases));
    if slowest > 0 && !m.slowest.is_empty() {
        let _ = writeln!(out, "\nslowest requests:");
        for span in m.slowest.iter().take(slowest) {
            let tier = if span.tier.is_empty() {
                String::new()
            } else {
                format!(" {}", span.tier)
            };
            // Phases the request never entered report 0 and are elided.
            let phases = Phase::ALL
                .iter()
                .zip(span.phase_micros.iter())
                .filter(|(_, &us)| us > 0)
                .map(|(p, &us)| format!("{} {}", p.name(), fmt_micros(us)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  #{} {}{tier} {} ({phases})",
                span.seq,
                span.verb,
                fmt_micros(span.total_micros)
            );
        }
    }
    out
}

fn parse_model(name: &str) -> Result<ModelSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gpt2" | "gpt-2" => ModelSpec::gpt2_345m(),
        "llama2-7b" | "llama2" => ModelSpec::llama2_7b(),
        "qwen2.5-7b" => ModelSpec::qwen25_7b(),
        "qwen2.5-14b" => ModelSpec::qwen25_14b(),
        "qwen2.5-32b" => ModelSpec::qwen25_32b(),
        "qwen2.5-72b" => ModelSpec::qwen25_72b(),
        "qwen1.5-moe" | "moe" => ModelSpec::qwen15_moe_a27b(),
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn parse_optim(label: &str) -> Result<(OptimConfig, bool), String> {
    Ok(match label.to_ascii_uppercase().as_str() {
        "N" | "NAIVE" => (OptimConfig::naive(), false),
        "R" => (OptimConfig::r(), false),
        "V" => (OptimConfig::naive(), true),
        "VR" => (OptimConfig::r(), true),
        "ZR" => (OptimConfig::zr(), false),
        "ZOR" => (OptimConfig::zor(), false),
        other => return Err(format!("unknown optimization combo '{other}'")),
    })
}

fn parse_device(name: &str) -> Result<DeviceSpec, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "a800" => DeviceSpec::a800_80g(),
        "h200" => DeviceSpec::h200_141g(),
        "mi210" => DeviceSpec::mi210_64g(),
        other => return Err(format!("unknown device '{other}'")),
    })
}

fn parse_allocator(name: &str, frag_limit_mib: u64) -> Result<AllocatorKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "stalloc" => AllocatorKind::Stalloc,
        "stalloc-noreuse" => AllocatorKind::StallocNoReuse,
        "torch20" => AllocatorKind::Torch20,
        "torch23" => AllocatorKind::Torch23,
        "torch26" => AllocatorKind::Torch26,
        "es" | "expandable" => AllocatorKind::TorchEs,
        "gmlake" => AllocatorKind::GmLake(frag_limit_mib << 20),
        "native" => AllocatorKind::Native,
        other => return Err(format!("unknown allocator '{other}'")),
    })
}

/// Plan output encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanFormat {
    Json,
    Bin,
}

fn plan_format(args: &Args, output: &str) -> Result<PlanFormat, String> {
    match args.get("format") {
        Some("bin") => Ok(PlanFormat::Bin),
        Some("json") => Ok(PlanFormat::Json),
        Some(other) => Err(format!("--format: expected bin|json, got '{other}'")),
        None => {
            if output.ends_with(".stplan") || output.ends_with(".bin") {
                Ok(PlanFormat::Bin)
            } else {
                Ok(PlanFormat::Json)
            }
        }
    }
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let data = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("{path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let data = serde_json::to_string(value).map_err(|e| e.to_string())?;
    fs::write(path, &data).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote {path} ({} bytes)", data.len());
    Ok(())
}

/// Reads a plan from `path`, auto-detecting binary vs JSON by magic.
/// The plan is validated: a foreign file that decodes but carries
/// unsound decisions must not reach downstream consumers.
fn read_plan(path: &str) -> Result<Plan, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let plan = if is_binary_plan(&bytes) {
        decode_plan(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = String::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
        Plan::from_json(&text).map_err(|e| format!("{path}: {e}"))?
    };
    plan.validate()
        .map_err(|e| format!("{path}: unsound plan: {e}"))?;
    Ok(plan)
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let model = parse_model(args.require("model")?)?;
    let (optim, vpp_on) = parse_optim(args.get("optim").unwrap_or("N"))?;
    let mut parallel = ParallelConfig::new(
        args.num("tp", 1u32)?,
        args.num("pp", 1u32)?,
        args.num("dp", 1u32)?,
    )
    .with_ep(args.num("ep", 1u32)?);
    let vpp = args.num("vpp", if vpp_on { 2u32 } else { 1 })?;
    if vpp > 1 {
        parallel = parallel.with_vpp(vpp);
    }
    let seq_default = model.seq_len;
    let job = TrainJob::new(model, parallel, optim)
        .with_mbs(args.num("mbs", 1u32)?)
        .with_seq(args.num("seq", seq_default)?)
        .with_microbatches(args.num("microbatches", 4 * parallel.pp)?)
        .with_iterations(args.num("iterations", 3u32)?)
        .with_seed(args.num("seed", 42u64)?);
    let trace = job.build_trace()?;
    eprintln!(
        "{} [{}]: {} requests/iteration, {} distinct sizes",
        job.model.name,
        job.label(),
        trace.allocs_in_iteration(1),
        trace.distinct_sizes(512).len()
    );
    write_json(args.require("output")?, &trace)
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let iter = args.num("iteration", 1u32)?;
    let profile = profile_trace(&trace, iter).map_err(|e| e.to_string())?;
    eprintln!(
        "profiled iteration {iter}: {} static ({} persistent) + {} dynamic, {} phases",
        profile.statics.len(),
        profile.init_count,
        profile.dynamics.len(),
        profile.num_phases
    );
    write_json(args.require("output")?, &profile)
}

/// Parses `--strategy`, suggesting the nearest name on a typo.
fn parse_strategy(name: &str) -> Result<StrategyChoice, String> {
    StrategyChoice::parse(name).ok_or_else(|| {
        let names = StrategyChoice::ALL.iter().map(|c| c.name());
        match nearest(name, names) {
            Some(s) => format!("unknown strategy '{name}' (did you mean '{s}'?)"),
            None => format!(
                "unknown strategy '{name}' (see `stalloc strategies` for the registered set)"
            ),
        }
    })
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    if args.get("remote").is_some() && args.get("cache").is_some() {
        return Err(
            "--remote and --cache are mutually exclusive (the server owns its cache)".into(),
        );
    }
    let profile: ProfiledRequests = read_json(args.require("input")?)?;
    let strategy = match args.get("strategy") {
        Some(name) => parse_strategy(name)?,
        None => StrategyChoice::Baseline,
    };
    let config = SynthConfig {
        enable_fusion: !args.flag("no-fusion"),
        enable_gap_insertion: !args.flag("no-gaps"),
        ascending_sizes: args.flag("ascending"),
        strategy,
    };
    // The ablation switches steer the grouped pipelines only; make the
    // no-op visible (the flags are still part of the job fingerprint).
    let ablations_on = args.flag("no-fusion") || args.flag("no-gaps") || args.flag("ascending");
    if ablations_on
        && matches!(
            strategy,
            StrategyChoice::BestFit | StrategyChoice::Lookahead
        )
    {
        eprintln!(
            "note: --strategy {strategy} ignores --no-fusion/--no-gaps/--ascending \
             (they steer the baseline and tmp-order pipelines only)"
        );
    }
    let output = args.require("output")?;
    let format = plan_format(args, output)?;

    let plan = if let Some(addr) = args.get("remote") {
        let wire = match args.get("wire") {
            None | Some("bin") => ProfileEncoding::Binary,
            Some("json") => ProfileEncoding::Json,
            Some(other) => {
                return Err(format!("--wire must be `bin` or `json`, got '{other}'"));
            }
        };
        let mut client = PlanClient::connect(addr)
            .map_err(|e| format!("--remote {addr}: {e}"))?
            .with_profile_encoding(wire);
        let r = client
            .plan(&profile, &config)
            .map_err(|e| format!("--remote {addr}: {e}"))?;
        let verdict = if r.source.is_hit() { "hit" } else { "miss" };
        let wire_name = match wire {
            ProfileEncoding::Binary => "bin",
            ProfileEncoding::Json => "json",
        };
        eprintln!(
            "plan server {addr}: {verdict} {} ({:?}, {} µs server-side, profile wire: {wire_name})",
            r.fingerprint, r.source, r.micros
        );
        r.plan
    } else if args.get("wire").is_some() {
        return Err("--wire only applies to --remote planning".into());
    } else if let Some(dir) = args.get("cache") {
        let store = PlanStore::open(dir).map_err(|e| e.to_string())?;
        let (plan, fp, outcome) = synthesize_cached(&profile, &config, &store, synthesize_strategy)
            .map_err(|e| e.to_string())?;
        match outcome {
            CacheOutcome::Hit => eprintln!("plan cache: hit {fp} — synthesis skipped"),
            CacheOutcome::Miss => eprintln!("plan cache: miss {fp} — synthesized and stored"),
        }
        plan
    } else if strategy == StrategyChoice::Portfolio {
        // Local portfolio run: report every candidate, then the winner.
        let outcome = synthesize_portfolio(&profile, &config);
        for c in &outcome.candidates {
            let verdict = if !c.valid {
                "invalid".to_string()
            } else {
                format!(
                    "packing {:.4}, pool {:.3} GiB",
                    c.packing_efficiency,
                    c.pool_size as f64 / (1u64 << 30) as f64
                )
            };
            eprintln!(
                "  {:<10} {verdict} ({} ms){}",
                c.strategy.name(),
                c.elapsed.as_millis(),
                if c.winner { "  ← winner" } else { "" }
            );
        }
        outcome.winner
    } else {
        synthesize_strategy(&profile, &config)
    };
    plan.validate()?;
    let s = plan.stats;
    eprintln!(
        "plan: strategy {}, pool {:.3} GiB, packing {:.3}, {} layers, \
         {} gap insertions, {} HomoLayer groups",
        s.strategy.name(),
        s.pool_size as f64 / (1u64 << 30) as f64,
        s.packing_efficiency(),
        s.layers,
        s.gap_inserted,
        s.homolayer_groups
    );
    match format {
        PlanFormat::Json => write_json(output, &plan),
        PlanFormat::Bin => {
            let bytes = encode_plan(&plan);
            fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
            eprintln!("wrote {output} ({} bytes, binary)", bytes.len());
            Ok(())
        }
    }
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let plan = read_plan(args.require("input")?)?;
    let rows = args.num("rows", 16usize)?;
    let cols = args.num("cols", 72usize)?;
    println!("{}", stalloc_core::render_plan(&plan, rows, cols));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:4547").to_string(),
        workers: args.num("workers", 4usize)?,
        queue_depth: args.num("queue", 64usize)?,
        lru_capacity: args.num("lru", 128usize)?,
        max_frame: args.num("max-frame-mib", 64usize)? << 20,
        store_dir: args.get("cache").map(std::path::PathBuf::from),
        trace_log: args.get("trace-log").map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let cache_desc = match &config.store_dir {
        Some(d) => format!("store {}", d.display()),
        None => "in-memory only".to_string(),
    };
    let trace_desc = match &config.trace_log {
        Some(p) => format!(", trace log {}", p.display()),
        None => String::new(),
    };
    let handle = PlanServer::start(config.clone()).map_err(|e| e.to_string())?;
    println!(
        "stalloc serve: listening on {} ({} workers, queue {}, lru {}, {}{})",
        handle.addr(),
        config.workers,
        config.queue_depth,
        config.lru_capacity,
        cache_desc,
        trace_desc
    );
    handle.join();
    Ok(())
}

fn cmd_strategies(_args: &Args) -> Result<(), String> {
    println!("registered plan-synthesis strategies (stalloc plan --strategy NAME):");
    for s in registry() {
        println!("  {:<10} {}", s.name(), s.description());
    }
    println!(
        "  {:<10} race all of the above on parallel workers; the valid\n  {:<10} \
         plan with the smallest (pool, fragmentation, name) wins",
        StrategyChoice::Portfolio.name(),
        ""
    );
    Ok(())
}

fn cmd_version(_args: &Args) -> Result<(), String> {
    println!(
        "stalloc {} (planner algorithm v{SYNTH_ALGO_VERSION}, profile fingerprint \
         v{FINGERPRINT_VERSION})",
        env!("CARGO_PKG_VERSION")
    );
    Ok(())
}

fn cmd_fuzz(args: &Args) -> Result<(), String> {
    let targets = match args.get("target").unwrap_or("all") {
        "all" => stalloc_fuzz::FuzzTarget::ALL.to_vec(),
        name => vec![stalloc_fuzz::FuzzTarget::parse(name).ok_or_else(|| {
            format!("unknown fuzz target '{name}' (expected prof|stpl|frame|server|all)")
        })?],
    };
    let config = stalloc_fuzz::FuzzConfig {
        iters: args.num("iters", 100_000u64)?,
        seed: args.num("seed", 42u64)?,
        targets,
        corpus_dir: args.get("corpus").map(std::path::PathBuf::from),
        failure_dir: None,
    };
    // Decoder panics are caught and reported; silence the per-panic
    // stderr backtrace spam so the summary stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = stalloc_fuzz::run(&config);
    std::panic::set_hook(default_hook);
    println!("{}", report.summary());
    if report.ok() {
        Ok(())
    } else {
        Err("fuzzing found failures (see summary above)".into())
    }
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("input")?)?;
    let device = parse_device(args.get("device").unwrap_or("a800"))?;
    let frag = args.num("frag-limit", 512u64)?;
    let kind = parse_allocator(args.get("allocator").unwrap_or("stalloc"), frag)?;
    if kind.needs_vmm() && !device.supports_vmm {
        return Err(format!("{} requires VMM support", kind.label()));
    }
    let result = run(&trace, &device, kind);
    let r = &result.report;
    println!("allocator      : {}", r.allocator);
    println!("device         : {}", device.name);
    println!(
        "allocated (M_a): {:.3} GiB",
        r.peak_requested as f64 / (1u64 << 30) as f64
    );
    println!(
        "reserved  (M_r): {:.3} GiB",
        r.peak_reserved as f64 / (1u64 << 30) as f64
    );
    println!("efficiency     : {:.1}%", r.efficiency() * 100.0);
    println!("outcome        : {}", if r.oom { "OOM" } else { "ok" });
    if let Some(d) = &r.oom_detail {
        println!("oom detail     : {d}");
    }
    if let Some(t) = result.throughput {
        println!("iteration time : {:.3} s (modelled)", t.iter_time_s);
        println!("throughput     : {:.1} TFLOPS/GPU (modelled)", t.tflops);
    }
    if let Some(c) = result.counters {
        println!(
            "runtime        : {} planned, {} lookahead, {} static fallback, \
             {} dyn reused, {} dyn fallback",
            c.static_planned,
            c.lookahead_matches,
            c.static_fallback,
            c.dynamic_reused,
            c.dynamic_fallback
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parsers_cover_the_zoo() {
        assert!(parse_model("gpt2").is_ok());
        assert!(parse_model("qwen1.5-moe").unwrap().is_moe());
        assert!(parse_model("nope").is_err());
        assert!(parse_optim("zor").is_ok());
        assert!(parse_optim("X").is_err());
        assert!(parse_device("h200").is_ok());
        assert!(parse_device("tpu").is_err());
        assert_eq!(
            parse_allocator("gmlake", 64).unwrap(),
            AllocatorKind::GmLake(64 << 20)
        );
        assert!(parse_allocator("jemalloc", 0).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command_with_suggestion() {
        let err = dispatch(&argv("fly")).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        assert!(dispatch(&[]).is_err());
        let err = dispatch(&argv("trce")).unwrap_err();
        assert!(err.contains("did you mean 'trace'"), "{err}");
        let err = dispatch(&argv("cashe")).unwrap_err();
        assert!(err.contains("did you mean 'cache'"), "{err}");
    }

    #[test]
    fn help_paths_succeed() {
        for line in [
            "--help",
            "-h",
            "help",
            "help plan",
            "help cache",
            "help serve",
            "help strategies",
            "help version",
            "strategies",
            "strategies --help",
            "trace --help",
            "profile -h",
            "plan --help",
            "show --help",
            "replay -h",
            "serve --help",
            "cache --help",
            "cache ls --help",
        ] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(dispatch(&argv("help fly")).is_err());
    }

    #[test]
    fn version_paths_succeed() {
        for line in ["version", "--version", "-V"] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // The help text for version mentions both cache-keying versions.
        assert!(dispatch(&argv("vresion")).unwrap_err().contains("version"));
    }

    #[test]
    fn strategy_flag_parses_and_suggests() {
        assert_eq!(
            parse_strategy("portfolio").unwrap(),
            StrategyChoice::Portfolio
        );
        assert_eq!(
            parse_strategy("tmp-order").unwrap(),
            StrategyChoice::TmpOrder
        );
        let err = parse_strategy("basline").unwrap_err();
        assert!(err.contains("did you mean 'baseline'"), "{err}");
        let err = parse_strategy("zzzzz").unwrap_err();
        assert!(err.contains("stalloc strategies"), "{err}");
    }

    #[test]
    fn plan_strategy_portfolio_end_to_end() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-strat-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let base_p = dir.join("base.stplan").to_string_lossy().to_string();
        let port_p = dir.join("port.stplan").to_string_lossy().to_string();
        let port2_p = dir.join("port2.stplan").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {base_p} --strategy baseline"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port_p} --strategy portfolio"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port2_p} --strategy portfolio"
        )))
        .unwrap();

        let base = read_plan(&base_p).unwrap();
        let port = read_plan(&port_p).unwrap();
        assert!(
            port.pool_size <= base.pool_size,
            "portfolio never loses to baseline"
        );
        assert_ne!(port.stats.strategy, StrategyChoice::Portfolio);
        // Deterministic winner: repeated portfolio runs are byte-identical.
        assert_eq!(fs::read(&port_p).unwrap(), fs::read(&port2_p).unwrap());

        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {port_p} --strategy lookahed"
        )))
        .unwrap_err();
        assert!(err.contains("did you mean 'lookahead'"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_help_and_errors() {
        for line in ["help stats", "stats --help", "stats -h", "stats help"] {
            dispatch(&argv(line)).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let err = dispatch(&argv("stats")).unwrap_err();
        assert!(err.contains("address"), "{err}");
        // Flags after the positional address are validated like any
        // other command's.
        let err = dispatch(&argv("stats 127.0.0.1:1 --slowset 2")).unwrap_err();
        assert!(err.contains("did you mean '--slowest'"), "{err}");
        // A typo'd command still suggests it.
        let err = dispatch(&argv("stts")).unwrap_err();
        assert!(err.contains("did you mean 'stats'"), "{err}");
    }

    #[test]
    fn fmt_micros_picks_units() {
        assert_eq!(fmt_micros(0), "0µs");
        assert_eq!(fmt_micros(999), "999µs");
        assert_eq!(fmt_micros(1_500), "1.5ms");
        assert_eq!(fmt_micros(999_949), "999.9ms");
        assert_eq!(fmt_micros(2_345_678), "2.35s");
    }

    #[test]
    fn render_metrics_formats_counters_tables_and_slowest() {
        use stalloc_core::wire::NamedHistogram;
        use stalloc_core::ServeStats;
        use stalloc_obs::{LatencyHistogram, Phase, SpanSnapshot, PHASE_COUNT};

        let lru = LatencyHistogram::new();
        for _ in 0..9 {
            lru.record(70);
        }
        let miss = LatencyHistogram::new();
        miss.record(150_000);
        let mut phase_micros = vec![0u64; PHASE_COUNT];
        phase_micros[Phase::Synthesis.index()] = 149_000;
        phase_micros[Phase::Encode.index()] = 400;
        let m = ServeMetrics {
            stats: ServeStats {
                requests: 11,
                plan_requests: 10,
                lru_hits: 9,
                misses: 1,
                workers: 4,
                metrics_requests: 1,
                ..ServeStats::default()
            },
            tiers: vec![
                NamedHistogram {
                    name: "lru".into(),
                    hist: lru.snapshot(),
                },
                NamedHistogram {
                    name: "miss".into(),
                    hist: miss.snapshot(),
                },
                NamedHistogram {
                    name: "store".into(),
                    hist: LatencyHistogram::new().snapshot(),
                },
            ],
            phases: vec![NamedHistogram {
                name: "synthesis".into(),
                hist: miss.snapshot(),
            }],
            slowest: vec![SpanSnapshot {
                seq: 7,
                verb: "Plan".into(),
                tier: "miss".into(),
                total_micros: 150_000,
                phase_micros,
            }],
        };
        let text = render_metrics("127.0.0.1:4547", &m, 3);
        assert!(text.contains("hit ratio 90.0%"), "{text}");
        assert!(text.contains("lru"), "{text}");
        // An empty histogram renders dashes, not zeros-as-latency.
        let store_row = text.lines().find(|l| l.starts_with("store")).unwrap();
        assert!(store_row.contains('-'), "{store_row}");
        // µs and ms units both appear; the slow span lists only the
        // phases it entered.
        assert!(text.contains("µs"), "{text}");
        assert!(text.contains("ms"), "{text}");
        assert!(text.contains("#7 Plan miss 150.0ms"), "{text}");
        assert!(text.contains("synthesis 149.0ms"), "{text}");
        assert!(!text.contains("frame_read 0"), "{text}");
        // slowest = 0 hides the section entirely.
        let quiet = render_metrics("addr", &m, 0);
        assert!(!quiet.contains("slowest"), "{quiet}");
    }

    #[test]
    fn remote_and_cache_are_mutually_exclusive() {
        let err = dispatch(&argv(
            "plan --input p.json --output x.json --cache c --remote 127.0.0.1:1",
        ))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn remote_plan_against_live_server() {
        use stalloc_served::{PlanServer, ServeConfig};

        let dir = std::env::temp_dir().join(format!("stalloc-cli-remote-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let store_d = dir.join("served-store");

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        let server = PlanServer::start(ServeConfig {
            workers: 2,
            store_dir: Some(store_d),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.addr();

        // First remote plan synthesizes on the server; the second is a
        // cache hit (the CI smoke test exercises the same pair through
        // the real binary).
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.plan_requests, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits(), 1);

        // The remotely planned artifact is a normal local plan file.
        let plan = read_plan(&plan_p).unwrap();
        plan.validate().unwrap();

        // A JSON-wire request (for pre-binary servers) is the same job:
        // another cache hit, same artifact.
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr} --wire json"
        )))
        .unwrap();
        assert_eq!(server.stats().hits(), 2);
        assert_eq!(read_plan(&plan_p).unwrap(), plan);

        // --wire is remote-only, and its values are checked.
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --wire json"
        )))
        .unwrap_err();
        assert!(err.contains("--wire"), "{err}");
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr} --wire xml"
        )))
        .unwrap_err();
        assert!(err.contains("--wire"), "{err}");

        // `stalloc stats` renders the live server's counters and
        // histograms end to end (one miss + two hits are on the books).
        dispatch(&argv(&format!("stats {addr}"))).unwrap();
        dispatch(&argv(&format!("stats {addr} --slowest 0"))).unwrap();

        // An unreachable server is a clean error, not a hang or panic.
        server.shutdown();
        let err = dispatch(&argv(&format!("stats {addr}"))).unwrap_err();
        assert!(err.contains(&addr.to_string()), "{err}");
        let err = dispatch(&argv(&format!(
            "plan --input {prof_p} --output {plan_p} --remote {addr}"
        )))
        .unwrap_err();
        assert!(err.contains("--remote"), "{err}");

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_flag_suggests_per_command() {
        let err = dispatch(&argv("plan --inptu p.json --output x.json")).unwrap_err();
        assert!(err.contains("did you mean '--input'"), "{err}");
        let err = dispatch(&argv("trace --modle gpt2 --output t.json")).unwrap_err();
        assert!(err.contains("did you mean '--model'"), "{err}");
    }

    #[test]
    fn end_to_end_pipeline_through_files() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let plan_p = dir.join("pl.json").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --optim R --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!("plan --input {prof_p} --output {plan_p}"))).unwrap();
        dispatch(&argv(&format!("show --input {plan_p} --rows 4 --cols 20"))).unwrap();
        dispatch(&argv(&format!(
            "replay --input {trace_p} --allocator torch23 --device a800"
        )))
        .unwrap();

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_plans_and_cache_workflow() {
        let dir = std::env::temp_dir().join(format!("stalloc-cli-bin-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_p = dir.join("t.json").to_string_lossy().to_string();
        let prof_p = dir.join("p.json").to_string_lossy().to_string();
        let bin_p = dir.join("pl.stplan").to_string_lossy().to_string();
        let json_p = dir.join("pl.json").to_string_lossy().to_string();
        let cache_d = dir.join("cache").to_string_lossy().to_string();

        dispatch(&argv(&format!(
            "trace --model gpt2 --pp 2 --mbs 1 --seq 256 --microbatches 4 \
             --iterations 2 --output {trace_p}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "profile --input {trace_p} --output {prof_p}"
        )))
        .unwrap();

        // First cached plan: miss; second: hit. Binary output via the
        // .stplan extension, JSON via explicit --format.
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {bin_p} --cache {cache_d}"
        )))
        .unwrap();
        dispatch(&argv(&format!(
            "plan --input {prof_p} --output {json_p} --format json --cache {cache_d}"
        )))
        .unwrap();
        let store = PlanStore::open(&cache_d).unwrap();
        assert_eq!(store.entries().unwrap().len(), 1, "same job cached once");

        // The binary artifact is a real binary plan, much smaller than
        // JSON, and `show` reads both formats transparently.
        let bin = fs::read(&bin_p).unwrap();
        let json = fs::read(&json_p).unwrap();
        assert!(is_binary_plan(&bin));
        assert!(
            bin.len() * 4 <= json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
        assert_eq!(read_plan(&bin_p).unwrap(), read_plan(&json_p).unwrap());
        dispatch(&argv(&format!("show --input {bin_p} --rows 4 --cols 20"))).unwrap();

        // cache ls / gc / clear run end to end.
        dispatch(&argv(&format!("cache ls --dir {cache_d}"))).unwrap();
        dispatch(&argv(&format!("cache gc --dir {cache_d}"))).unwrap();
        assert_eq!(store.entries().unwrap().len(), 1, "gc keeps live entries");
        dispatch(&argv(&format!("cache clear --dir {cache_d}"))).unwrap();
        assert!(store.entries().unwrap().is_empty());

        fs::remove_dir_all(&dir).ok();
    }
}
