//! `stalloc` — the standalone STAlloc workflow tool (paper §8 describes the
//! plan synthesizer as a standalone tool; this binary wraps the whole
//! offline pipeline plus replay-based evaluation).
//!
//! ```text
//! stalloc trace   --model llama2-7b --tp 4 --pp 2 --optim R --output trace.json
//! stalloc profile --input trace.json --output profile.json [--iteration 1]
//! stalloc plan    --input profile.json --output plan.stplan [--format bin|json]
//!                 [--cache DIR | --remote ADDR] [--no-fusion] [--no-gaps]
//! stalloc show    --input plan.stplan [--rows 16] [--cols 72]
//! stalloc replay  --input trace.json --allocator stalloc --device a800
//! stalloc serve   [--addr 127.0.0.1:4547] [--workers 4] [--cache DIR]
//!                 [--trace-log FILE]
//! stalloc stats   ADDR [--slowest N]
//! stalloc cache   {ls|gc|clear} --dir DIR
//! stalloc version
//! ```
//!
//! `--help`/`-h` works at the top level and per subcommand; `serve` runs
//! the plan-synthesis daemon that `plan --remote` talks to.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
