//! `stalloc` — the standalone STAlloc workflow tool (paper §8 describes the
//! plan synthesizer as a standalone tool; this binary wraps the whole
//! offline pipeline plus replay-based evaluation).
//!
//! ```text
//! stalloc trace   --model llama2-7b --tp 4 --pp 2 --optim R -o trace.json
//! stalloc profile -i trace.json -o profile.json [--iteration 1]
//! stalloc plan    -i profile.json -o plan.json [--no-fusion] [--no-gaps]
//! stalloc show    -i plan.json [--rows 16] [--cols 72]
//! stalloc replay  -i trace.json --allocator stalloc --device a800
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
