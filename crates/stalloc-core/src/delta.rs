//! Profile edit scripts for incremental re-planning.
//!
//! Elastic and iterative workloads — most concretely the per-microbatch
//! memory shifts of Chronos-style pipeline schedules — produce *families*
//! of near-identical profiles. Shipping each family member as a full
//! `PROF` stream and cold-synthesizing its plan wastes both wire bytes
//! and ~150 ms of layout search per member. This module supplies the
//! value-level half of the fix:
//!
//! * [`diff_profiles`] computes an edit script ([`ProfileDelta`]) turning
//!   a *base* profile into a *next* profile, naming the base by its
//!   config-free [`fingerprint_profile`];
//! * [`apply_delta`] replays the script against the base, reproducing the
//!   next profile exactly: `apply(base, diff(base, next)) == next` for
//!   **any** pair of profiles (the diff is structurally total — in the
//!   worst case it degenerates to remove-all + insert-all).
//!
//! The byte form of a [`ProfileDelta`] (`PROF-DELTA` v1, magic `PRFD`)
//! lives in `stalloc-store::codec`, next to the `PROF` and `STPL`
//! codecs; plan *patching* — reusing the base plan's placements for
//! requests the script copies untouched — lives in
//! `stalloc_solver::patch_plan`.

use crate::fingerprint::{fingerprint_profile, Fingerprint};
use crate::profiler::{InstanceKey, ProfiledRequests, RequestEvent};

/// One instruction of a profile edit script. Scripts run against a base
/// request list with a cursor: `Copy`/`Remove`/`Retime`/`Resize` consume
/// base entries, `Insert` does not. A script is valid iff it consumes
/// the base list exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Emit the next `count` base requests unchanged (`count >= 1`).
    Copy {
        /// Base requests carried over verbatim.
        count: usize,
    },
    /// Emit a request that has no base counterpart.
    Insert {
        /// The new request, in full.
        request: RequestEvent,
    },
    /// Skip the next `count` base requests (`count >= 1`).
    Remove {
        /// Base requests dropped.
        count: usize,
    },
    /// Emit the next base request with shifted timing (size, `dynamic`,
    /// and instance keys unchanged). Deltas are signed and wrap, exactly
    /// like the codec's zigzag fields.
    Retime {
        /// Allocation-tick shift.
        dts: i64,
        /// Free-tick shift.
        dte: i64,
        /// Allocation-phase shift.
        dps: i64,
        /// Free-phase shift.
        dpe: i64,
    },
    /// Emit the next base request with a shifted size (everything else
    /// unchanged).
    Resize {
        /// Size shift in bytes.
        dsize: i64,
    },
}

impl EditOp {
    /// How many base requests this op consumes.
    pub fn consumes(&self) -> usize {
        match self {
            EditOp::Copy { count } | EditOp::Remove { count } => *count,
            EditOp::Insert { .. } => 0,
            EditOp::Retime { .. } | EditOp::Resize { .. } => 1,
        }
    }

    /// How many next-profile requests this op emits.
    pub fn emits(&self) -> usize {
        match self {
            EditOp::Copy { count } => *count,
            EditOp::Remove { .. } => 0,
            EditOp::Insert { .. } | EditOp::Retime { .. } | EditOp::Resize { .. } => 1,
        }
    }
}

/// An edit script turning one profile (the *base*, named by fingerprint)
/// into another (the *next*). The value-level counterpart of a
/// `PROF-DELTA` v1 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDelta {
    /// Config-free fingerprint of the base profile
    /// ([`fingerprint_profile`]): the delta refuses to apply to anything
    /// else.
    pub base: Fingerprint,
    /// The next profile's persistent-prefix length (stored wholesale —
    /// it is one varint).
    pub init_count: usize,
    /// The next profile's phase count.
    pub num_phases: u32,
    /// The next profile's window length.
    pub window_len: u64,
    /// Edit script over `statics` (arrival order, persistent prefix
    /// first — the same order the `PROF` section uses).
    pub statics: Vec<EditOp>,
    /// Edit script over `dynamics`.
    pub dynamics: Vec<EditOp>,
    /// `None` = identical to the base; `Some` = wholesale replacement
    /// (the table is tiny and rarely shifts incrementally).
    pub instance_windows: Option<Vec<(InstanceKey, (u64, u64))>>,
    /// `None` = identical to the base; `Some` = wholesale replacement.
    pub instance_arrivals: Option<Vec<(InstanceKey, Vec<u32>)>>,
}

impl ProfileDelta {
    /// Requests the script reuses from the base untouched (`Copy` runs),
    /// across both sections. The plan patcher reuses exactly these
    /// placements.
    pub fn copied(&self) -> usize {
        self.statics
            .iter()
            .chain(self.dynamics.iter())
            .map(|op| match op {
                EditOp::Copy { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Requests the script disturbs (inserted, retimed, or resized),
    /// across both sections.
    pub fn disturbed(&self) -> usize {
        self.statics
            .iter()
            .chain(self.dynamics.iter())
            .map(|op| match op {
                EditOp::Insert { .. } | EditOp::Retime { .. } | EditOp::Resize { .. } => 1,
                _ => 0,
            })
            .sum()
    }
}

/// Why a delta refused to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The base profile's fingerprint does not match the one the delta
    /// was computed against.
    BaseMismatch {
        /// What the delta expects.
        expected: Fingerprint,
        /// What the offered base hashes to.
        actual: Fingerprint,
    },
    /// The script consumed past the end of a base section.
    Overrun {
        /// Section being edited (`"statics"` / `"dynamics"`).
        section: &'static str,
    },
    /// The script ended without consuming a base section exactly.
    Underrun {
        /// Section being edited.
        section: &'static str,
        /// Base entries left unconsumed.
        remaining: usize,
    },
    /// A shifted field left its value range (e.g. a phase beyond `u32`,
    /// or a `Copy`/`Remove` count of zero).
    FieldOutOfRange {
        /// Field that overflowed.
        field: &'static str,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, actual } => {
                write!(f, "delta is against profile {expected}, not {actual}")
            }
            DeltaError::Overrun { section } => {
                write!(f, "edit script overran the base {section}")
            }
            DeltaError::Underrun { section, remaining } => {
                write!(f, "edit script left {remaining} base {section} unconsumed")
            }
            DeltaError::FieldOutOfRange { field } => {
                write!(f, "edited {field} out of range")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Whether two requests agree on everything but timing — the shape a
/// single `Retime` op can bridge.
fn retimeable(a: &RequestEvent, b: &RequestEvent) -> bool {
    a.size == b.size && a.dynamic == b.dynamic && a.ls == b.ls && a.le == b.le
}

/// Whether two requests agree on everything but size — the shape a
/// single `Resize` op can bridge.
fn resizeable(a: &RequestEvent, b: &RequestEvent) -> bool {
    a.ts == b.ts
        && a.te == b.te
        && a.ps == b.ps
        && a.pe == b.pe
        && a.dynamic == b.dynamic
        && a.ls == b.ls
        && a.le == b.le
}

fn push_copy(ops: &mut Vec<EditOp>) {
    if let Some(EditOp::Copy { count }) = ops.last_mut() {
        *count += 1;
    } else {
        ops.push(EditOp::Copy { count: 1 });
    }
}

fn push_remove(ops: &mut Vec<EditOp>) {
    if let Some(EditOp::Remove { count }) = ops.last_mut() {
        *count += 1;
    } else {
        ops.push(EditOp::Remove { count: 1 });
    }
}

/// Diffs one request section. Strategy: longest exactly-equal prefix and
/// suffix become `Copy` runs; the disturbed middle is walked pairwise,
/// bridging timing-only changes with `Retime` and size-only changes with
/// `Resize`, falling back to `Remove`+`Insert`. Adjacent `Copy`/`Remove`
/// runs are merged, so a self-diff is one `Copy` op.
fn diff_requests(base: &[RequestEvent], next: &[RequestEvent]) -> Vec<EditOp> {
    let prefix = base
        .iter()
        .zip(next.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let suffix = base[prefix..]
        .iter()
        .rev()
        .zip(next[prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count();

    let mut ops = Vec::new();
    if prefix > 0 {
        ops.push(EditOp::Copy { count: prefix });
    }

    let mid_base = &base[prefix..base.len() - suffix];
    let mid_next = &next[prefix..next.len() - suffix];
    let pairs = mid_base.len().min(mid_next.len());
    for i in 0..pairs {
        let (a, b) = (&mid_base[i], &mid_next[i]);
        if a == b {
            push_copy(&mut ops);
        } else if retimeable(a, b) {
            ops.push(EditOp::Retime {
                dts: b.ts.wrapping_sub(a.ts) as i64,
                dte: b.te.wrapping_sub(a.te) as i64,
                dps: b.ps as i64 - a.ps as i64,
                dpe: b.pe as i64 - a.pe as i64,
            });
        } else if resizeable(a, b) {
            ops.push(EditOp::Resize {
                dsize: b.size.wrapping_sub(a.size) as i64,
            });
        } else {
            push_remove(&mut ops);
            ops.push(EditOp::Insert { request: *b });
        }
    }
    for _ in pairs..mid_base.len() {
        push_remove(&mut ops);
    }
    for b in &mid_next[pairs..] {
        ops.push(EditOp::Insert { request: *b });
    }

    if suffix > 0 {
        if let Some(EditOp::Copy { count }) = ops.last_mut() {
            *count += suffix;
        } else {
            ops.push(EditOp::Copy { count: suffix });
        }
    }
    ops
}

/// Computes the edit script turning `base` into `next`. Total: any pair
/// of profiles diffs (worst case remove-all + insert-all), and
/// [`apply_delta`]`(base, diff_profiles(base, next))` always reproduces
/// `next` exactly.
pub fn diff_profiles(base: &ProfiledRequests, next: &ProfiledRequests) -> ProfileDelta {
    ProfileDelta {
        base: fingerprint_profile(base),
        init_count: next.init_count,
        num_phases: next.num_phases,
        window_len: next.window_len,
        statics: diff_requests(&base.statics, &next.statics),
        dynamics: diff_requests(&base.dynamics, &next.dynamics),
        instance_windows: (base.instance_windows != next.instance_windows)
            .then(|| next.instance_windows.clone()),
        instance_arrivals: (base.instance_arrivals != next.instance_arrivals)
            .then(|| next.instance_arrivals.clone()),
    }
}

fn apply_requests(
    base: &[RequestEvent],
    ops: &[EditOp],
    section: &'static str,
) -> Result<Vec<RequestEvent>, DeltaError> {
    let mut out = Vec::with_capacity(base.len());
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<usize, DeltaError> {
        let at = *cursor;
        if base.len() - at < n {
            return Err(DeltaError::Overrun { section });
        }
        *cursor += n;
        Ok(at)
    };
    for op in ops {
        match op {
            EditOp::Copy { count } => {
                if *count == 0 {
                    return Err(DeltaError::FieldOutOfRange {
                        field: "copy count",
                    });
                }
                let at = take(&mut cursor, *count)?;
                out.extend_from_slice(&base[at..at + count]);
            }
            EditOp::Remove { count } => {
                if *count == 0 {
                    return Err(DeltaError::FieldOutOfRange {
                        field: "remove count",
                    });
                }
                take(&mut cursor, *count)?;
            }
            EditOp::Insert { request } => out.push(*request),
            EditOp::Retime { dts, dte, dps, dpe } => {
                let at = take(&mut cursor, 1)?;
                let r = &base[at];
                let phase = |cur: u32, d: i64, field| -> Result<u32, DeltaError> {
                    u32::try_from(cur as i64 + d).map_err(|_| DeltaError::FieldOutOfRange { field })
                };
                out.push(RequestEvent {
                    ts: r.ts.wrapping_add(*dts as u64),
                    te: r.te.wrapping_add(*dte as u64),
                    ps: phase(r.ps, *dps, "ps")?,
                    pe: phase(r.pe, *dpe, "pe")?,
                    ..*r
                });
            }
            EditOp::Resize { dsize } => {
                let at = take(&mut cursor, 1)?;
                let r = &base[at];
                out.push(RequestEvent {
                    size: r.size.wrapping_add(*dsize as u64),
                    ..*r
                });
            }
        }
    }
    if cursor != base.len() {
        return Err(DeltaError::Underrun {
            section,
            remaining: base.len() - cursor,
        });
    }
    Ok(out)
}

/// Replays an edit script against its base profile, producing the next
/// profile. Refuses to run against the wrong base
/// ([`DeltaError::BaseMismatch`]) and rejects scripts that do not
/// consume the base exactly — so a decoded-from-the-wire delta can never
/// silently produce a profile its sender did not intend.
pub fn apply_delta(
    base: &ProfiledRequests,
    delta: &ProfileDelta,
) -> Result<ProfiledRequests, DeltaError> {
    let actual = fingerprint_profile(base);
    if actual != delta.base {
        return Err(DeltaError::BaseMismatch {
            expected: delta.base,
            actual,
        });
    }
    let statics = apply_requests(&base.statics, &delta.statics, "statics")?;
    if delta.init_count > statics.len() {
        return Err(DeltaError::FieldOutOfRange {
            field: "init_count",
        });
    }
    let dynamics = apply_requests(&base.dynamics, &delta.dynamics, "dynamics")?;
    let instance_arrivals = delta
        .instance_arrivals
        .clone()
        .unwrap_or_else(|| base.instance_arrivals.clone());
    for (_, seq) in &instance_arrivals {
        if seq.iter().any(|&i| i as usize >= dynamics.len()) {
            return Err(DeltaError::FieldOutOfRange {
                field: "instance_arrivals",
            });
        }
    }
    Ok(ProfiledRequests {
        statics,
        init_count: delta.init_count,
        dynamics,
        num_phases: delta.num_phases,
        window_len: delta.window_len,
        instance_windows: delta
            .instance_windows
            .clone()
            .unwrap_or_else(|| base.instance_windows.clone()),
        instance_arrivals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, ModuleId, OptimConfig, ParallelConfig, TrainJob};

    fn profile(microbatches: u32) -> ProfiledRequests {
        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(microbatches)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        crate::profile_trace(&trace, 1).unwrap()
    }

    #[test]
    fn self_diff_is_all_copy_and_applies() {
        let p = profile(4);
        let d = diff_profiles(&p, &p);
        assert_eq!(
            d.statics,
            vec![EditOp::Copy {
                count: p.statics.len()
            }]
        );
        assert_eq!(
            d.dynamics,
            if p.dynamics.is_empty() {
                vec![]
            } else {
                vec![EditOp::Copy {
                    count: p.dynamics.len(),
                }]
            }
        );
        assert!(d.instance_windows.is_none());
        assert!(d.instance_arrivals.is_none());
        assert_eq!(d.disturbed(), 0);
        assert_eq!(apply_delta(&p, &d).unwrap(), p);
    }

    #[test]
    fn retime_resize_insert_remove_all_roundtrip() {
        let base = profile(4);
        let mut next = base.clone();
        // A timing shift, a size change, a removal, and an insertion —
        // all inside the iteration body.
        let k = base.init_count + 3;
        next.statics[k].ts += 2;
        next.statics[k].te += 2;
        next.statics[k + 1].size += 1024;
        next.statics.remove(k + 5);
        next.statics.insert(
            k + 7,
            RequestEvent {
                size: 4096,
                ts: 50,
                te: 60,
                ps: 1,
                pe: 1,
                dynamic: false,
                ls: None,
                le: None,
            },
        );
        let d = diff_profiles(&base, &next);
        assert!(d.statics.iter().any(|o| matches!(o, EditOp::Retime { .. })));
        assert!(d.statics.iter().any(|o| matches!(o, EditOp::Resize { .. })));
        assert!(d.statics.iter().any(|o| matches!(o, EditOp::Insert { .. })));
        assert!(d.statics.iter().any(|o| matches!(o, EditOp::Remove { .. })));
        assert_eq!(apply_delta(&base, &d).unwrap(), next);
        // Most of the profile is untouched and the script says so.
        assert!(d.copied() > d.disturbed() * 10);
    }

    #[test]
    fn disjoint_profiles_still_roundtrip() {
        let a = profile(2);
        let b = profile(4);
        assert_eq!(apply_delta(&a, &diff_profiles(&a, &b)).unwrap(), b);
        assert_eq!(apply_delta(&b, &diff_profiles(&b, &a)).unwrap(), a);
        let empty = ProfiledRequests::default();
        assert_eq!(apply_delta(&empty, &diff_profiles(&empty, &a)).unwrap(), a);
        assert_eq!(apply_delta(&a, &diff_profiles(&a, &empty)).unwrap(), empty);
    }

    #[test]
    fn wrong_base_is_rejected() {
        let a = profile(2);
        let b = profile(4);
        let d = diff_profiles(&a, &b);
        match apply_delta(&b, &d) {
            Err(DeltaError::BaseMismatch { expected, actual }) => {
                assert_eq!(expected, fingerprint_profile(&a));
                assert_eq!(actual, fingerprint_profile(&b));
            }
            other => panic!("expected BaseMismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_scripts_are_rejected() {
        let p = profile(2);
        let fp = fingerprint_profile(&p);
        let delta = |statics: Vec<EditOp>| ProfileDelta {
            base: fp,
            init_count: p.init_count,
            num_phases: p.num_phases,
            window_len: p.window_len,
            statics,
            dynamics: vec![],
            instance_windows: None,
            instance_arrivals: None,
        };
        // Dynamics script must consume dynamics (empty here, so an empty
        // script is fine) — but the statics script underruns...
        assert!(matches!(
            apply_delta(&p, &delta(vec![])),
            Err(DeltaError::Underrun {
                section: "statics",
                ..
            })
        ));
        // ...or overruns...
        assert!(matches!(
            apply_delta(
                &p,
                &delta(vec![EditOp::Copy {
                    count: p.statics.len() + 1
                }])
            ),
            Err(DeltaError::Overrun { section: "statics" })
        ));
        // ...or carries a zero count...
        assert!(matches!(
            apply_delta(
                &p,
                &delta(vec![
                    EditOp::Copy { count: 0 },
                    EditOp::Copy {
                        count: p.statics.len()
                    }
                ])
            ),
            Err(DeltaError::FieldOutOfRange {
                field: "copy count"
            })
        ));
        // ...or shifts a phase below zero.
        assert!(matches!(
            apply_delta(
                &p,
                &delta(vec![
                    EditOp::Retime {
                        dts: 0,
                        dte: 0,
                        dps: -1,
                        dpe: 0
                    },
                    EditOp::Copy {
                        count: p.statics.len() - 1
                    }
                ])
            ),
            Err(DeltaError::FieldOutOfRange { field: "ps" })
        ));
    }

    #[test]
    fn arrival_indices_are_checked_against_applied_dynamics() {
        let base = profile(2);
        let mut d = diff_profiles(&base, &base);
        d.instance_arrivals = Some(vec![(
            InstanceKey {
                module: ModuleId(7),
                phase: 1,
            },
            vec![base.dynamics.len() as u32],
        )]);
        assert!(matches!(
            apply_delta(&base, &d),
            Err(DeltaError::FieldOutOfRange {
                field: "instance_arrivals"
            })
        ));
    }

    #[test]
    fn wholesale_sections_replace_and_absent_sections_inherit() {
        let base = profile(2);
        let mut next = base.clone();
        next.instance_windows = vec![(
            InstanceKey {
                module: ModuleId(3),
                phase: 2,
            },
            (1, 9),
        )];
        let d = diff_profiles(&base, &next);
        assert!(d.instance_windows.is_some());
        assert!(d.instance_arrivals.is_none());
        assert_eq!(apply_delta(&base, &d).unwrap(), next);
    }
}
