//! Stable job/profile fingerprinting.
//!
//! A plan is a pure function of its inputs: the profiled request set and
//! the synthesizer configuration (guarded by `tests/determinism.rs`). That
//! makes `(ProfiledRequests, SynthConfig)` a natural cache key for plan
//! artifacts — `stalloc-store` keys its content-addressed plan cache by the
//! [`Fingerprint`] computed here.
//!
//! The hash is a self-contained 128-bit FNV-1a variant (two independent
//! 64-bit lanes) over a *canonical byte serialization* of the profile:
//! [`write_profile_body`] walks every field in a fixed order (all
//! collections inside [`ProfiledRequests`] are `Vec`s in deterministic
//! sorted or arrival order) and emits exactly the **body of the `PROF` v1
//! binary profile format** specified in `stalloc-store::codec`. Because
//! that byte stream is a pure, canonical function of the profile,
//! hashing it is equivalent to hashing the fields — which is what makes
//! [`fingerprint_job_body`] possible: a server holding an
//! already-encoded binary profile can fingerprint the raw bytes and
//! answer a cache hit *without ever decoding the profile*.
//!
//! The digest is versioned on two axes: [`FINGERPRINT_VERSION`] covers
//! the profile schema and walk order, and [`SYNTH_ALGO_VERSION`] covers
//! the planner algorithm itself — so stale cache entries can alias a new
//! build neither when the input shape changes nor when `synthesize`
//! starts producing different plans for the same input.

use std::fmt;

use crate::plan::{SynthConfig, SYNTH_ALGO_VERSION};
use crate::profiler::{InstanceKey, ProfiledRequests, RequestEvent};

/// Version tag mixed into every digest; bump when the canonical walk or
/// the profile schema changes shape.
///
/// v2: [`SynthConfig::strategy`] joined the walk — a job planned by the
/// portfolio is a different job than the same profile planned by the
/// baseline pipeline, and cached plans must never cross between them.
///
/// v3: the profile part of the walk became the canonical `PROF` v1 body
/// byte stream ([`write_profile_body`]) instead of a per-field `u64`
/// feed, so that [`fingerprint_job_body`] over pre-encoded bytes and
/// [`fingerprint_job`] over the decoded profile agree by construction.
pub const FINGERPRINT_VERSION: u32 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Second-lane offset: FNV offset basis XOR a golden-ratio constant, so
/// the two lanes never agree on correlated inputs.
const LANE2_OFFSET: u64 = FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15;

/// A 128-bit content fingerprint of a planning job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 16]);

impl Fingerprint {
    /// Lower-case hex rendering (the on-disk cache file stem).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the 32-character hex form produced by [`Self::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Fingerprint(out))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental two-lane FNV-1a hasher behind [`fingerprint_job`].
#[derive(Debug, Clone)]
pub struct JobHasher {
    lane1: u64,
    lane2: u64,
}

impl Default for JobHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl JobHasher {
    /// Fresh hasher with the version tag already mixed in.
    pub fn new() -> Self {
        let mut h = JobHasher {
            lane1: FNV_OFFSET,
            lane2: LANE2_OFFSET,
        };
        h.write_u64(FINGERPRINT_VERSION as u64);
        h
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane1 = (self.lane1 ^ b as u64).wrapping_mul(FNV_PRIME);
            self.lane2 = (self.lane2 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Finalizes into a [`Fingerprint`] (the hasher can keep absorbing).
    pub fn finish(&self) -> Fingerprint {
        // One avalanche round per lane so short inputs still diffuse.
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&mix(self.lane1).to_le_bytes());
        out[8..].copy_from_slice(&mix(self.lane2).to_le_bytes());
        Fingerprint(out)
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// --- canonical profile byte walk ---------------------------------------
//
// These are THE writer primitives of both binary codecs: the bytes
// emitted by `write_profile_body` ARE the body of a `PROF` v1 stream
// (everything after the 6-byte magic + version header), and
// `stalloc-store::codec` builds its `STPL` and `PROF` encoders on the
// same functions — there is exactly one varint/zigzag writer in the
// tree. The byte-format contract is specified in that module's
// documentation; changing the walk layout below is a `PROF` format
// bump AND a `FINGERPRINT_VERSION` bump.

/// Appends a canonical LEB128 varint (see the `stalloc-store::codec`
/// spec: 7 payload bits per byte, high bit = continuation, no overlong
/// encodings emitted).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a signed delta to unsigned so small values of either sign
/// varint-encode in one byte: `(v << 1) ^ (v >> 63)`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Appends the signed delta between two unsigned values, zigzag-varint
/// encoded (two's-complement wrapping subtraction).
pub fn put_delta(out: &mut Vec<u8>, prev: u64, cur: u64) {
    put_uvarint(out, zigzag(cur.wrapping_sub(prev) as i64));
}

/// Appends an instance key: `module` then `phase`, both varints.
pub fn put_instance(out: &mut Vec<u8>, k: &InstanceKey) {
    put_uvarint(out, k.module.0 as u64);
    put_uvarint(out, k.phase as u64);
}

/// `PROF` request flags byte, bit 0: the request originates from a
/// dynamic layer ([`RequestEvent::dynamic`]).
///
/// The flags byte carries this marker plus presence bits for the two
/// optional instance keys. All other bits are reserved and must be zero
/// (the `stalloc-store` decoder rejects them to keep the encoding
/// canonical).
pub const PROFILE_FLAG_DYNAMIC: u8 = 1 << 0;
/// `PROF` request flags byte, bit 1: an allocating instance key
/// ([`RequestEvent::ls`]) follows the fixed fields.
pub const PROFILE_FLAG_HAS_LS: u8 = 1 << 1;
/// `PROF` request flags byte, bit 2: a freeing instance key
/// ([`RequestEvent::le`]) follows the fixed fields (after `ls` if both
/// are present).
pub const PROFILE_FLAG_HAS_LE: u8 = 1 << 2;

fn put_request(out: &mut Vec<u8>, prev_size: u64, prev_ts: u64, r: &RequestEvent) {
    let mut flags = 0u8;
    if r.dynamic {
        flags |= PROFILE_FLAG_DYNAMIC;
    }
    if r.ls.is_some() {
        flags |= PROFILE_FLAG_HAS_LS;
    }
    if r.le.is_some() {
        flags |= PROFILE_FLAG_HAS_LE;
    }
    out.push(flags);
    put_delta(out, prev_size, r.size);
    put_delta(out, prev_ts, r.ts);
    put_delta(out, r.ts, r.te);
    put_uvarint(out, r.ps as u64);
    put_uvarint(out, r.pe as u64);
    if let Some(ls) = &r.ls {
        put_instance(out, ls);
    }
    if let Some(le) = &r.le {
        put_instance(out, le);
    }
}

fn put_requests(out: &mut Vec<u8>, requests: &[RequestEvent]) {
    put_uvarint(out, requests.len() as u64);
    let (mut size, mut ts) = (0u64, 0u64);
    for r in requests {
        put_request(out, size, ts, r);
        size = r.size;
        ts = r.ts;
    }
}

/// Appends the canonical byte serialization of `profile` to `out` —
/// exactly the **body** of the `PROF` v1 binary profile format (the
/// stream `stalloc-store::codec::encode_profile` produces, minus its
/// 6-byte magic + version header; see that module for the byte-level
/// spec).
///
/// This is the profile walk behind [`fingerprint_job`]: the encoding is
/// canonical (a pure, injective-modulo-spec function of the profile), so
/// hashing these bytes and hashing the fields are interchangeable.
pub fn write_profile_body(profile: &ProfiledRequests, out: &mut Vec<u8>) {
    put_uvarint(out, profile.init_count as u64);
    put_uvarint(out, profile.num_phases as u64);
    put_uvarint(out, profile.window_len);

    put_requests(out, &profile.statics);
    put_requests(out, &profile.dynamics);

    put_uvarint(out, profile.instance_windows.len() as u64);
    let mut prev_start = 0u64;
    for (k, (start, end)) in &profile.instance_windows {
        put_instance(out, k);
        put_delta(out, prev_start, *start);
        put_delta(out, *start, *end);
        prev_start = *start;
    }

    put_uvarint(out, profile.instance_arrivals.len() as u64);
    for (k, seq) in &profile.instance_arrivals {
        put_instance(out, k);
        put_uvarint(out, seq.len() as u64);
        let mut prev = 0u64;
        for &i in seq {
            put_delta(out, prev, i as u64);
            prev = i as u64;
        }
    }
}

/// Rough pre-size for the canonical body buffer.
fn profile_body_capacity(profile: &ProfiledRequests) -> usize {
    32 + 12 * (profile.statics.len() + profile.dynamics.len())
        + 8 * profile.instance_windows.len()
        + 4 * profile
            .instance_arrivals
            .iter()
            .map(|(_, s)| s.len() + 4)
            .sum::<usize>()
}

/// Fingerprints one planning job: the full canonical content of `profile`
/// plus every [`SynthConfig`] switch.
///
/// Two jobs share a fingerprint iff the synthesizer would (modulo hash
/// collisions, ~2⁻¹²⁸) produce the same plan for both.
pub fn fingerprint_job(profile: &ProfiledRequests, config: &SynthConfig) -> Fingerprint {
    let mut body = Vec::with_capacity(profile_body_capacity(profile));
    write_profile_body(profile, &mut body);
    fingerprint_job_body(&body, config)
}

/// Fingerprints a profile *alone* — no [`SynthConfig`], no
/// [`SYNTH_ALGO_VERSION`]. This is the **base identity** of the
/// incremental re-planning protocol: a `PROF-DELTA` stream names the
/// profile it edits by this digest, so one stored base profile can seed
/// deltas planned under any synthesizer configuration (the config still
/// travels separately in the `PlanDelta` verb and still keys the *plan*
/// caches via [`fingerprint_job`]).
pub fn fingerprint_profile(profile: &ProfiledRequests) -> Fingerprint {
    let mut body = Vec::with_capacity(profile_body_capacity(profile));
    write_profile_body(profile, &mut body);
    fingerprint_profile_body(&body)
}

/// [`fingerprint_profile`] over a profile already in canonical encoded
/// form: `profile_body` must be the `PROF` v1 **body** byte stream (what
/// [`write_profile_body`] emits). Equal to [`fingerprint_profile`] of
/// the decoded profile by construction, so a server can key its profile
/// cache off raw received bytes without decoding them.
pub fn fingerprint_profile_body(profile_body: &[u8]) -> Fingerprint {
    let mut h = JobHasher::new();
    // Length-prefixed, exactly like the profile section of the job walk,
    // plus a domain tag so a profile fingerprint can never collide with
    // a job fingerprint of related bytes.
    h.write_u64(u64::from_le_bytes(*b"PROFONLY"));
    h.write_u64(profile_body.len() as u64);
    h.write(profile_body);
    h.finish()
}

/// Fingerprints a job whose profile is already in canonical encoded form:
/// `profile_body` must be the `PROF` v1 **body** byte stream (what
/// [`write_profile_body`] emits — `stalloc-store` exposes
/// `profile_body()` to strip the header off a full `PROF` stream).
///
/// Equal to [`fingerprint_job`] of the decoded profile by construction,
/// which lets a server fingerprint a received binary profile — and
/// answer a cache hit — without decoding it.
pub fn fingerprint_job_body(profile_body: &[u8], config: &SynthConfig) -> Fingerprint {
    let mut h = JobHasher::new();

    // Planner algorithm version: a cache must never serve a plan an
    // older synthesize() computed.
    h.write_u64(SYNTH_ALGO_VERSION as u64);

    // SynthConfig next: it is tiny and always present.
    h.write_u64(config.enable_fusion as u64);
    h.write_u64(config.enable_gap_insertion as u64);
    h.write_u64(config.ascending_sizes as u64);
    h.write_u64(config.strategy.index() as u64);

    // The profile, as its canonical byte stream, length-prefixed so a
    // config/profile boundary shift cannot collide.
    h.write_u64(profile_body.len() as u64);
    h.write(profile_body);

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn profile() -> ProfiledRequests {
        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(4)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        crate::profile_trace(&trace, 1).unwrap()
    }

    #[test]
    fn hex_roundtrip() {
        let fp = fingerprint_job(&profile(), &SynthConfig::default());
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..30]), None);
    }

    #[test]
    fn identical_inputs_agree() {
        let p = profile();
        let c = SynthConfig::default();
        assert_eq!(fingerprint_job(&p, &c), fingerprint_job(&p, &c));
    }

    #[test]
    fn config_switches_change_the_digest() {
        let p = profile();
        let base = fingerprint_job(&p, &SynthConfig::default());
        for c in [
            SynthConfig {
                enable_fusion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                enable_gap_insertion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                ascending_sizes: true,
                ..SynthConfig::default()
            },
        ] {
            assert_ne!(base, fingerprint_job(&p, &c), "{c:?}");
        }
    }

    #[test]
    fn every_strategy_choice_changes_the_digest() {
        use crate::plan::StrategyChoice;
        let p = profile();
        let mut digests: Vec<_> = StrategyChoice::ALL
            .into_iter()
            .map(|strategy| {
                fingerprint_job(
                    &p,
                    &SynthConfig {
                        strategy,
                        ..SynthConfig::default()
                    },
                )
            })
            .collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(
            digests.len(),
            StrategyChoice::ALL.len(),
            "strategies must key distinct cache entries"
        );
    }

    #[test]
    fn body_bytes_and_field_walk_agree() {
        // The whole point of the canonical byte walk: hashing a
        // pre-encoded profile body must equal hashing the profile.
        let p = profile();
        for config in [
            SynthConfig::default(),
            SynthConfig {
                ascending_sizes: true,
                ..SynthConfig::default()
            },
        ] {
            let mut body = Vec::new();
            write_profile_body(&p, &mut body);
            assert_eq!(
                fingerprint_job(&p, &config),
                fingerprint_job_body(&body, &config)
            );
        }
    }

    #[test]
    fn profile_body_is_deterministic() {
        let p = profile();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_profile_body(&p, &mut a);
        write_profile_body(&p.clone(), &mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn profile_fingerprint_ignores_config_and_matches_body_form() {
        let p = profile();
        let fp = fingerprint_profile(&p);
        // No config in the walk: the digest is a pure function of the
        // profile.
        assert_eq!(fp, fingerprint_profile(&p.clone()));
        let mut body = Vec::new();
        write_profile_body(&p, &mut body);
        assert_eq!(fp, fingerprint_profile_body(&body));
        // And it is not any job fingerprint of the same profile.
        for strategy in crate::plan::StrategyChoice::ALL {
            let config = SynthConfig {
                strategy,
                ..SynthConfig::default()
            };
            assert_ne!(fp, fingerprint_job(&p, &config));
        }
        // Content still matters.
        let mut tweaked = p.clone();
        tweaked.statics[0].size += 512;
        assert_ne!(fp, fingerprint_profile(&tweaked));
    }

    #[test]
    fn profile_content_changes_the_digest() {
        let p = profile();
        let base = fingerprint_job(&p, &SynthConfig::default());
        let mut tweaked = p.clone();
        tweaked.statics[0].size += 512;
        assert_ne!(base, fingerprint_job(&tweaked, &SynthConfig::default()));

        let mut truncated = p.clone();
        truncated.statics.pop();
        assert_ne!(base, fingerprint_job(&truncated, &SynthConfig::default()));
    }
}
