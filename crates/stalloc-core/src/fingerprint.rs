//! Stable job/profile fingerprinting.
//!
//! A plan is a pure function of its inputs: the profiled request set and
//! the synthesizer configuration (guarded by `tests/determinism.rs`). That
//! makes `(ProfiledRequests, SynthConfig)` a natural cache key for plan
//! artifacts — `stalloc-store` keys its content-addressed plan cache by the
//! [`Fingerprint`] computed here.
//!
//! The hash is a self-contained 128-bit FNV-1a variant (two independent
//! 64-bit lanes) over a *canonical* field walk: every field of the profile
//! and config is fed in a fixed order, and all collections inside
//! [`ProfiledRequests`] are `Vec`s in deterministic (sorted or arrival)
//! order, so the digest is independent of any `HashMap` iteration order
//! and stable across runs, builds, and platforms.
//!
//! The digest is versioned on two axes: [`FINGERPRINT_VERSION`] covers
//! the profile schema and walk order, and [`SYNTH_ALGO_VERSION`] covers
//! the planner algorithm itself — so stale cache entries can alias a new
//! build neither when the input shape changes nor when `synthesize`
//! starts producing different plans for the same input.

use std::fmt;

use crate::plan::{SynthConfig, SYNTH_ALGO_VERSION};
use crate::profiler::{InstanceKey, ProfiledRequests, RequestEvent};

/// Version tag mixed into every digest; bump when the canonical walk or
/// the profile schema changes shape.
///
/// v2: [`SynthConfig::strategy`] joined the walk — a job planned by the
/// portfolio is a different job than the same profile planned by the
/// baseline pipeline, and cached plans must never cross between them.
pub const FINGERPRINT_VERSION: u32 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Second-lane offset: FNV offset basis XOR a golden-ratio constant, so
/// the two lanes never agree on correlated inputs.
const LANE2_OFFSET: u64 = FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15;

/// A 128-bit content fingerprint of a planning job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u8; 16]);

impl Fingerprint {
    /// Lower-case hex rendering (the on-disk cache file stem).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the 32-character hex form produced by [`Self::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Fingerprint(out))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental two-lane FNV-1a hasher behind [`fingerprint_job`].
#[derive(Debug, Clone)]
pub struct JobHasher {
    lane1: u64,
    lane2: u64,
}

impl Default for JobHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl JobHasher {
    /// Fresh hasher with the version tag already mixed in.
    pub fn new() -> Self {
        let mut h = JobHasher {
            lane1: FNV_OFFSET,
            lane2: LANE2_OFFSET,
        };
        h.write_u64(FINGERPRINT_VERSION as u64);
        h
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane1 = (self.lane1 ^ b as u64).wrapping_mul(FNV_PRIME);
            self.lane2 = (self.lane2 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Finalizes into a [`Fingerprint`] (the hasher can keep absorbing).
    pub fn finish(&self) -> Fingerprint {
        // One avalanche round per lane so short inputs still diffuse.
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&mix(self.lane1).to_le_bytes());
        out[8..].copy_from_slice(&mix(self.lane2).to_le_bytes());
        Fingerprint(out)
    }

    fn write_instance(&mut self, k: &InstanceKey) {
        self.write_u64(k.module.0 as u64);
        self.write_u64(k.phase as u64);
    }

    fn write_opt_instance(&mut self, k: &Option<InstanceKey>) {
        match k {
            None => self.write_u64(0),
            Some(k) => {
                self.write_u64(1);
                self.write_instance(k);
            }
        }
    }

    fn write_request(&mut self, r: &RequestEvent) {
        self.write_u64(r.size);
        self.write_u64(r.ts);
        self.write_u64(r.te);
        self.write_u64(r.ps as u64);
        self.write_u64(r.pe as u64);
        self.write_u64(r.dynamic as u64);
        self.write_opt_instance(&r.ls);
        self.write_opt_instance(&r.le);
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fingerprints one planning job: the full canonical content of `profile`
/// plus every [`SynthConfig`] switch.
///
/// Two jobs share a fingerprint iff the synthesizer would (modulo hash
/// collisions, ~2⁻¹²⁸) produce the same plan for both.
pub fn fingerprint_job(profile: &ProfiledRequests, config: &SynthConfig) -> Fingerprint {
    let mut h = JobHasher::new();

    // Planner algorithm version: a cache must never serve a plan an
    // older synthesize() computed.
    h.write_u64(SYNTH_ALGO_VERSION as u64);

    // SynthConfig next: it is tiny and always present.
    h.write_u64(config.enable_fusion as u64);
    h.write_u64(config.enable_gap_insertion as u64);
    h.write_u64(config.ascending_sizes as u64);
    h.write_u64(config.strategy.index() as u64);

    // Profile scalars.
    h.write_u64(profile.init_count as u64);
    h.write_u64(profile.num_phases as u64);
    h.write_u64(profile.window_len);

    // Every length is fed before its elements so concatenations of
    // different shapes cannot collide.
    h.write_u64(profile.statics.len() as u64);
    for r in &profile.statics {
        h.write_request(r);
    }
    h.write_u64(profile.dynamics.len() as u64);
    for r in &profile.dynamics {
        h.write_request(r);
    }
    h.write_u64(profile.instance_windows.len() as u64);
    for (k, (a, b)) in &profile.instance_windows {
        h.write_instance(k);
        h.write_u64(*a);
        h.write_u64(*b);
    }
    h.write_u64(profile.instance_arrivals.len() as u64);
    for (k, seq) in &profile.instance_arrivals {
        h.write_instance(k);
        h.write_u64(seq.len() as u64);
        for &i in seq {
            h.write_u64(i as u64);
        }
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn profile() -> ProfiledRequests {
        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(4)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        crate::profile_trace(&trace, 1).unwrap()
    }

    #[test]
    fn hex_roundtrip() {
        let fp = fingerprint_job(&profile(), &SynthConfig::default());
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..30]), None);
    }

    #[test]
    fn identical_inputs_agree() {
        let p = profile();
        let c = SynthConfig::default();
        assert_eq!(fingerprint_job(&p, &c), fingerprint_job(&p, &c));
    }

    #[test]
    fn config_switches_change_the_digest() {
        let p = profile();
        let base = fingerprint_job(&p, &SynthConfig::default());
        for c in [
            SynthConfig {
                enable_fusion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                enable_gap_insertion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                ascending_sizes: true,
                ..SynthConfig::default()
            },
        ] {
            assert_ne!(base, fingerprint_job(&p, &c), "{c:?}");
        }
    }

    #[test]
    fn every_strategy_choice_changes_the_digest() {
        use crate::plan::StrategyChoice;
        let p = profile();
        let mut digests: Vec<_> = StrategyChoice::ALL
            .into_iter()
            .map(|strategy| {
                fingerprint_job(
                    &p,
                    &SynthConfig {
                        strategy,
                        ..SynthConfig::default()
                    },
                )
            })
            .collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(
            digests.len(),
            StrategyChoice::ALL.len(),
            "strategies must key distinct cache entries"
        );
    }

    #[test]
    fn profile_content_changes_the_digest() {
        let p = profile();
        let base = fingerprint_job(&p, &SynthConfig::default());
        let mut tweaked = p.clone();
        tweaked.statics[0].size += 512;
        assert_ne!(base, fingerprint_job(&tweaked, &SynthConfig::default()));

        let mut truncated = p.clone();
        truncated.statics.pop();
        assert_ne!(base, fingerprint_job(&truncated, &SynthConfig::default()));
    }
}
