//! Geometric primitives for spatio-temporal planning.
//!
//! Planning places axis-aligned rectangles in the (time × address) plane:
//! a request occupying `[t0, t1)` in time and `[off, off+len)` in address
//! space. [`TimeSpacePacker`] answers "lowest conflict-free offset" queries
//! and is the engine behind HomoPhase packing, group fusion and gap
//! insertion. [`IntervalSet`] tracks free address intervals at runtime.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A placed request: a rectangle in the time × address plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Inclusive start time.
    pub t0: u64,
    /// Exclusive end time.
    pub t1: u64,
    /// Address offset.
    pub off: u64,
    /// Address length.
    pub len: u64,
}

impl Rect {
    /// Returns `true` if the two rectangles overlap in both time and space.
    pub fn conflicts(&self, other: &Rect) -> bool {
        self.t0 < other.t1
            && other.t0 < self.t1
            && self.off < other.off + other.len
            && other.off < self.off + self.len
    }
}

/// Greedy first-fit packer over the time × address plane.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSpacePacker {
    rects: Vec<Rect>,
    height: u64,
}

impl TimeSpacePacker {
    /// Creates an empty packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current height: the maximum `off + len` over placed rectangles.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Placed rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Sum of `len * (t1 - t0)` over placed rectangles (the TMP numerator).
    pub fn area(&self) -> u64 {
        self.rects.iter().map(|r| r.len * (r.t1 - r.t0)).sum()
    }

    /// Places a rectangle at an explicit position (no conflict checking in
    /// release builds; debug builds assert).
    pub fn place_at(&mut self, rect: Rect) {
        debug_assert!(
            !self.rects.iter().any(|r| r.conflicts(&rect)),
            "rect {rect:?} conflicts with an existing placement"
        );
        self.height = self.height.max(rect.off + rect.len);
        self.rects.push(rect);
    }

    /// Finds the lowest offset `<= limit - len` where a `[t0,t1) x len`
    /// rectangle fits without conflicts. With `limit = u64::MAX` the packer
    /// may grow beyond its current height.
    pub fn find_first_fit(&self, t0: u64, t1: u64, len: u64, limit: u64) -> Option<u64> {
        debug_assert!(t0 < t1 && len > 0);
        // Only rectangles overlapping the time window constrain placement.
        let mut spans: Vec<(u64, u64)> = self
            .rects
            .iter()
            .filter(|r| r.t0 < t1 && t0 < r.t1)
            .map(|r| (r.off, r.off + r.len))
            .collect();
        spans.sort_unstable();
        let mut cursor = 0u64;
        for (s, e) in spans {
            if s > cursor && s - cursor >= len && cursor + len <= limit {
                return Some(cursor);
            }
            cursor = cursor.max(e);
        }
        if cursor + len <= limit {
            Some(cursor)
        } else {
            None
        }
    }

    /// Every free gap in the `[t0,t1)` time window that can hold `len`
    /// bytes, as `(offset, gap_len)` in ascending offset order. The last
    /// entry is always the top of the occupied span with `gap_len ==
    /// u64::MAX` (unbounded above). Shared machinery behind
    /// [`Self::find_best_fit`] and the solver crate's gap-scoring
    /// packers.
    pub fn free_gaps(&self, t0: u64, t1: u64, len: u64) -> Vec<(u64, u64)> {
        debug_assert!(t0 < t1 && len > 0);
        let mut spans: Vec<(u64, u64)> = self
            .rects
            .iter()
            .filter(|r| r.t0 < t1 && t0 < r.t1)
            .map(|r| (r.off, r.off + r.len))
            .collect();
        spans.sort_unstable();
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for (s, e) in spans {
            if s > cursor && s - cursor >= len {
                out.push((cursor, s - cursor));
            }
            cursor = cursor.max(e);
        }
        out.push((cursor, u64::MAX));
        out
    }

    /// Finds the *tightest* gap `<= limit - len` where a `[t0,t1) x len`
    /// rectangle fits: among all interior gaps (bounded above by another
    /// placement in the time window) the one wasting the fewest bytes,
    /// ties broken by the lowest offset. When no interior gap fits, falls
    /// back to the first-fit position on top of the occupied spans —
    /// best-fit packers should only grow the pool as a last resort.
    pub fn find_best_fit(&self, t0: u64, t1: u64, len: u64, limit: u64) -> Option<u64> {
        let gaps = self.free_gaps(t0, t1, len);
        let best = gaps
            .iter()
            // Top gap: unbounded above, so never "tight" — used only
            // when no interior gap fits.
            .filter(|&&(off, gap_len)| gap_len != u64::MAX && off + len <= limit)
            .min_by_key(|&&(off, gap_len)| (gap_len - len, off));
        if let Some(&(off, _)) = best {
            return Some(off);
        }
        let (top, _) = *gaps.last().expect("top gap always present");
        if top + len <= limit {
            Some(top)
        } else {
            None
        }
    }

    /// Convenience: first-fit place, growing the height if needed. Returns
    /// the chosen offset.
    pub fn pack(&mut self, t0: u64, t1: u64, len: u64) -> u64 {
        let off = self
            .find_first_fit(t0, t1, len, u64::MAX)
            .expect("unbounded fit always succeeds");
        self.place_at(Rect { t0, t1, off, len });
        off
    }

    /// Finds a gap strictly within the current height (gap insertion into an
    /// existing local plan — never grows the plan).
    pub fn find_gap(&self, t0: u64, t1: u64, len: u64) -> Option<u64> {
        self.find_first_fit(t0, t1, len, self.height)
    }
}

/// A set of disjoint, coalesced address intervals.
///
/// Used by the runtime dynamic allocator to track the currently-free space
/// `A_a` inside the static pool (paper §6.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// start -> len, disjoint and non-adjacent.
    map: BTreeMap<u64, u64>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding one interval `[0, len)`.
    pub fn full(len: u64) -> Self {
        let mut s = Self::new();
        if len > 0 {
            s.map.insert(0, len);
        }
        s
    }

    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.map.values().sum()
    }

    /// Number of disjoint intervals.
    pub fn interval_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates `(start, len)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&s, &l)| (s, l))
    }

    /// Returns `true` if `[start, start+len)` is fully contained.
    pub fn contains(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        match self.map.range(..=start).next_back() {
            Some((&s, &l)) => start >= s && start + len <= s + l,
            None => false,
        }
    }

    /// Returns `true` if `[start, start+len)` overlaps any interval.
    pub fn overlaps(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        if let Some((&s, &l)) = self.map.range(..=start).next_back() {
            if s + l > start {
                return true;
            }
        }
        self.map.range(start..start + len).next().is_some()
    }

    /// Inserts `[start, start+len)`, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing interval (double free).
    pub fn insert(&mut self, mut start: u64, mut len: u64) {
        if len == 0 {
            return;
        }
        // Check and merge the predecessor.
        if let Some((&s, &l)) = self.map.range(..=start).next_back() {
            assert!(s + l <= start, "interval overlap on insert");
            if s + l == start {
                self.map.remove(&s);
                start = s;
                len += l;
            }
        }
        // Check and merge the successor.
        if let Some((&s, &l)) = self.map.range(start + len..).next() {
            let _ = l;
            debug_assert!(s >= start + len);
            if s == start + len {
                let l2 = self.map.remove(&s).expect("present");
                len += l2;
            }
        } else if let Some((&s, _)) = self.map.range(start..).next() {
            assert!(s >= start + len, "interval overlap on insert");
        }
        self.map.insert(start, len);
    }

    /// Removes `[start, start+len)`, which must be fully contained.
    ///
    /// # Panics
    ///
    /// Panics if the range is not contained.
    pub fn remove(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let (&s, &l) = self
            .map
            .range(..=start)
            .next_back()
            .expect("remove from empty region");
        assert!(
            start >= s && start + len <= s + l,
            "removed range [{}+{}) not contained in [{}+{})",
            start,
            len,
            s,
            l
        );
        self.map.remove(&s);
        if start > s {
            self.map.insert(s, start - s);
        }
        let tail_start = start + len;
        let tail_len = (s + l) - tail_start;
        if tail_len > 0 {
            self.map.insert(tail_start, tail_len);
        }
    }

    /// Best-fit search within the set: the smallest interval of length
    /// `>= len`. Returns its start.
    pub fn best_fit(&self, len: u64) -> Option<u64> {
        self.map
            .iter()
            .filter(|(_, &l)| l >= len)
            .min_by_key(|(_, &l)| l)
            .map(|(&s, _)| s)
    }

    /// Best-fit search over the intersection of this set with a sorted list
    /// of candidate intervals (the paper's `A_c = A_a ∩ A_i`, Eq. 7).
    /// Returns the start of the chosen sub-interval.
    pub fn best_fit_within(&self, candidates: &[(u64, u64)], len: u64) -> Option<u64> {
        let mut best: Option<(u64, u64)> = None; // (piece_len, start)
        for &(cs, cl) in candidates {
            let cend = cs + cl;
            // Intervals overlapping [cs, cend).
            for (&s, &l) in self.map.range(..cend) {
                let e = s + l;
                if e <= cs {
                    continue;
                }
                let ps = s.max(cs);
                let pe = e.min(cend);
                if pe > ps && pe - ps >= len {
                    let piece = pe - ps;
                    if best.is_none_or(|(bl, _)| piece < bl) {
                        best = Some((piece, ps));
                    }
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Complement of this set within `[0, universe)`.
    pub fn complement(&self, universe: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for (&s, &l) in &self.map {
            if s > cursor {
                out.push((cursor, s - cursor));
            }
            cursor = s + l;
        }
        if cursor < universe {
            out.push((cursor, universe - cursor));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_conflicts_requires_both_overlaps() {
        let a = Rect {
            t0: 0,
            t1: 10,
            off: 0,
            len: 100,
        };
        let time_only = Rect {
            t0: 5,
            t1: 15,
            off: 100,
            len: 50,
        };
        let space_only = Rect {
            t0: 10,
            t1: 20,
            off: 50,
            len: 50,
        };
        let both = Rect {
            t0: 9,
            t1: 11,
            off: 99,
            len: 2,
        };
        assert!(!a.conflicts(&time_only));
        assert!(!a.conflicts(&space_only));
        assert!(a.conflicts(&both));
        assert!(both.conflicts(&a));
    }

    #[test]
    fn packer_reuses_space_across_time() {
        let mut p = TimeSpacePacker::new();
        let o1 = p.pack(0, 10, 100);
        let o2 = p.pack(10, 20, 100); // disjoint time: same offset
        assert_eq!(o1, o2);
        assert_eq!(p.height(), 100);
        let o3 = p.pack(5, 15, 50); // overlaps both: stacked above
        assert_eq!(o3, 100);
        assert_eq!(p.height(), 150);
    }

    #[test]
    fn packer_fills_holes_first_fit() {
        let mut p = TimeSpacePacker::new();
        p.place_at(Rect {
            t0: 0,
            t1: 10,
            off: 0,
            len: 10,
        });
        p.place_at(Rect {
            t0: 0,
            t1: 10,
            off: 50,
            len: 10,
        });
        // A 40-byte request fits the hole at offset 10.
        assert_eq!(p.find_first_fit(0, 10, 40, u64::MAX), Some(10));
        // A 41-byte request does not; it goes above everything.
        assert_eq!(p.find_first_fit(0, 10, 41, u64::MAX), Some(60));
    }

    #[test]
    fn best_fit_prefers_tightest_gap() {
        let mut p = TimeSpacePacker::new();
        // Two gaps in the same window: [10, 50) (40 wide) and [60, 75)
        // (15 wide), then occupied up to 100.
        for (off, len) in [(0u64, 10u64), (50, 10), (75, 25)] {
            p.place_at(Rect {
                t0: 0,
                t1: 10,
                off,
                len,
            });
        }
        // First-fit takes the lower, looser gap; best-fit the tighter one.
        assert_eq!(p.find_first_fit(0, 10, 12, u64::MAX), Some(10));
        assert_eq!(p.find_best_fit(0, 10, 12, u64::MAX), Some(60));
        // An exact fit wins outright.
        assert_eq!(p.find_best_fit(0, 10, 15, u64::MAX), Some(60));
        // Nothing interior fits: fall back to the top.
        assert_eq!(p.find_best_fit(0, 10, 60, u64::MAX), Some(100));
        // A limit below the top gap rejects the fallback.
        assert_eq!(p.find_best_fit(0, 10, 60, 120), None);
        // Disjoint time window: offset 0 is the (only) candidate.
        assert_eq!(p.find_best_fit(20, 30, 12, u64::MAX), Some(0));
    }

    #[test]
    fn find_gap_never_grows() {
        let mut p = TimeSpacePacker::new();
        p.pack(0, 10, 100);
        assert_eq!(p.find_gap(10, 20, 100), Some(0), "idle window reused");
        assert_eq!(p.find_gap(5, 15, 100), None, "no growth allowed");
    }

    #[test]
    fn packer_area_is_exact() {
        let mut p = TimeSpacePacker::new();
        p.pack(0, 10, 100);
        p.pack(2, 4, 7);
        assert_eq!(p.area(), 1000 + 14);
    }

    #[test]
    fn interval_set_insert_coalesces() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        s.insert(20, 10);
        assert_eq!(s.interval_count(), 2);
        s.insert(10, 10); // bridges
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.total(), 30);
        assert!(s.contains(0, 30));
        assert!(!s.contains(0, 31));
    }

    #[test]
    fn interval_set_remove_splits() {
        let mut s = IntervalSet::full(100);
        s.remove(40, 20);
        assert_eq!(s.interval_count(), 2);
        assert!(s.contains(0, 40));
        assert!(s.contains(60, 40));
        assert!(!s.contains(40, 1));
        s.insert(40, 20);
        assert_eq!(s.interval_count(), 1);
    }

    #[test]
    #[should_panic(expected = "interval overlap")]
    fn interval_set_rejects_double_insert() {
        let mut s = IntervalSet::full(100);
        s.insert(50, 10);
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn interval_set_rejects_bad_remove() {
        let mut s = IntervalSet::full(100);
        s.remove(40, 20);
        s.remove(35, 10); // straddles the hole
    }

    #[test]
    fn best_fit_picks_tightest() {
        let mut s = IntervalSet::new();
        s.insert(0, 100);
        s.insert(200, 30);
        s.insert(300, 55);
        assert_eq!(s.best_fit(40), Some(300));
        assert_eq!(s.best_fit(20), Some(200));
        assert_eq!(s.best_fit(101), None);
    }

    #[test]
    fn best_fit_within_intersects() {
        let mut a = IntervalSet::new();
        a.insert(0, 50);
        a.insert(100, 100);
        // Candidates restrict to [40, 160).
        let cands = vec![(40, 120)];
        // Pieces: [40,50) len 10 and [100,160) len 60.
        assert_eq!(a.best_fit_within(&cands, 5), Some(40));
        assert_eq!(a.best_fit_within(&cands, 20), Some(100));
        assert_eq!(a.best_fit_within(&cands, 61), None);
    }

    #[test]
    fn complement_covers_gaps() {
        let mut s = IntervalSet::new();
        s.insert(10, 10);
        s.insert(50, 10);
        assert_eq!(s.complement(100), vec![(0, 10), (20, 30), (60, 40)]);
        assert_eq!(IntervalSet::new().complement(5), vec![(0, 5)]);
    }

    #[test]
    fn rect_touching_edges_do_not_conflict() {
        let a = Rect {
            t0: 0,
            t1: 10,
            off: 0,
            len: 100,
        };
        // Sharing a time edge ([0,10) then [10,20)) is not a conflict.
        let time_adjacent = Rect {
            t0: 10,
            t1: 20,
            off: 0,
            len: 100,
        };
        // Sharing a space edge ([0,100) then [100,200)) is not a conflict.
        let space_adjacent = Rect {
            t0: 0,
            t1: 10,
            off: 100,
            len: 100,
        };
        assert!(!a.conflicts(&time_adjacent));
        assert!(!time_adjacent.conflicts(&a));
        assert!(!a.conflicts(&space_adjacent));
        assert!(!space_adjacent.conflicts(&a));
        assert!(a.conflicts(&a), "a rect conflicts with itself");
    }

    #[test]
    fn packer_no_overlap_invariant_under_adversarial_sequence() {
        // Deterministic adversarial mix: identical windows, nested windows,
        // shared edges, and size-1 slivers. Whatever first-fit decides, no
        // two placements may overlap in both time and space.
        let mut p = TimeSpacePacker::new();
        let windows = [
            (0u64, 10u64),
            (0, 10),
            (5, 6),
            (9, 10),
            (0, 1),
            (3, 8),
            (7, 12),
            (10, 20),
            (0, 20),
            (19, 20),
        ];
        for (i, &(t0, t1)) in windows.iter().enumerate() {
            let len = 1 + ((i as u64 * 37) % 64) * 8;
            p.pack(t0, t1, len);
        }
        let rects = p.rects();
        assert_eq!(rects.len(), windows.len());
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(
                    !rects[i].conflicts(&rects[j]),
                    "placements {i} and {j} overlap: {:?} vs {:?}",
                    rects[i],
                    rects[j]
                );
            }
        }
        // Height is tight: it equals the maximum extent of any placement.
        let max_extent = rects.iter().map(|r| r.off + r.len).max().unwrap();
        assert_eq!(p.height(), max_extent);
    }

    #[test]
    fn first_fit_respects_limit_exactly() {
        let mut p = TimeSpacePacker::new();
        p.pack(0, 10, 100);
        // A 50-byte rect in the same window needs [100, 150): allowed at
        // limit 150, rejected at 149.
        assert_eq!(p.find_first_fit(0, 10, 50, 150), Some(100));
        assert_eq!(p.find_first_fit(0, 10, 50, 149), None);
        // An empty packer still honours the limit from offset 0.
        let empty = TimeSpacePacker::new();
        assert_eq!(empty.find_first_fit(0, 1, 10, 10), Some(0));
        assert_eq!(empty.find_first_fit(0, 1, 10, 9), None);
    }

    #[test]
    fn overlaps_boundary_cases() {
        let mut s = IntervalSet::new();
        s.insert(10, 10); // [10, 20)
        assert!(!s.overlaps(0, 10), "range ending at interval start");
        assert!(!s.overlaps(20, 10), "range starting at interval end");
        assert!(s.overlaps(19, 1));
        assert!(s.overlaps(0, 11));
        assert!(s.overlaps(15, 100), "straddling the interval");
        assert!(!s.overlaps(15, 0), "zero-length never overlaps");
        assert!(s.contains(15, 0), "zero-length always contained");
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut s = IntervalSet::full(100);
        s.insert(200, 0);
        s.remove(50, 0);
        assert_eq!(s.total(), 100);
        assert_eq!(s.interval_count(), 1);
        assert_eq!(IntervalSet::full(0).total(), 0);
        assert_eq!(IntervalSet::full(0).interval_count(), 0);
        assert_eq!(IntervalSet::full(0).complement(10), vec![(0, 10)]);
    }

    #[test]
    fn remove_at_interval_edges_keeps_set_canonical() {
        // Removing a prefix, then a suffix, leaves exactly the middle —
        // with no empty intervals left behind.
        let mut s = IntervalSet::full(100);
        s.remove(0, 30);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(30, 70)]);
        s.remove(80, 20);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(30, 50)]);
        s.remove(30, 50);
        assert_eq!(s.interval_count(), 0);
        assert_eq!(s.total(), 0);
        // Rebuilding from fragments coalesces to one canonical interval.
        s.insert(30, 50);
        s.insert(0, 30);
        s.insert(80, 20);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 100)]);
    }

    #[test]
    fn best_fit_within_ignores_disjoint_candidates() {
        let mut a = IntervalSet::new();
        a.insert(0, 50);
        // Candidate window entirely outside the free set: no fit.
        assert_eq!(a.best_fit_within(&[(100, 50)], 1), None);
        // Empty candidate list: no fit.
        assert_eq!(a.best_fit_within(&[], 1), None);
        // Tie between equal pieces resolves to the first candidate scanned.
        let mut b = IntervalSet::new();
        b.insert(0, 10);
        b.insert(20, 10);
        assert_eq!(b.best_fit_within(&[(0, 10), (20, 10)], 10), Some(0));
    }
}
