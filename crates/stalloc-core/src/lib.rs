//! STAlloc: GPU memory allocation with spatio-temporal planning.
//!
//! A Rust reproduction of the STAlloc system (EuroSys '26): an allocator
//! for deep-learning training that exploits the *spatial* (few distinct
//! sizes) and *temporal* (phase-scoped lifespans) regularity of training
//! memory requests to plan allocations ahead of time, eliminating the
//! fragmentation that online caching allocators accumulate.
//!
//! The crate mirrors the paper's three components:
//!
//! * [`profiler`] (§4) characterizes every request of one training
//!   iteration as `m = (s, tˢ, tᵉ, pˢ, pᵉ, dyn, lˢ, lᵉ)`;
//! * [`plan`] (§5) synthesizes a near-optimal static layout (HomoPhase
//!   fusion, HomoSize memory-layers, gap insertion) plus Dynamic Reusable
//!   Space for MoE-style dynamic requests;
//! * [`runtime`] (§6) serves requests at the planned addresses with a
//!   best-fit dynamic allocator over `A_a ∩ A_i` and a caching-allocator
//!   fallback.
//!
//! # Examples
//!
//! ```
//! use stalloc_core::{profile_trace, synthesize, RuntimeConfig, StallocAllocator, SynthConfig};
//! use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};
//!
//! let job = TrainJob::new(
//!     ModelSpec::gpt2_345m(),
//!     ParallelConfig::new(1, 4, 1),
//!     OptimConfig::r(),
//! )
//! .with_mbs(1)
//! .with_seq(256)
//! .with_microbatches(4);
//! let trace = job.build_trace().unwrap();
//!
//! let profile = profile_trace(&trace, 1).unwrap();
//! let plan = synthesize(&profile, &SynthConfig::default());
//! plan.validate().unwrap();
//! let allocator = StallocAllocator::new(plan, RuntimeConfig::default());
//! assert_eq!(allocator.counters().static_fallback, 0);
//! ```

pub mod delta;
pub mod fingerprint;
pub mod geometry;
pub mod plan;
pub mod profiler;
pub mod runtime;
pub mod timeline;
pub mod visualize;
pub mod wire;

pub use delta::{apply_delta, diff_profiles, DeltaError, EditOp, ProfileDelta};
pub use fingerprint::{
    fingerprint_job, fingerprint_job_body, fingerprint_profile, fingerprint_profile_body,
    write_profile_body, Fingerprint, JobHasher, FINGERPRINT_VERSION, PROFILE_FLAG_DYNAMIC,
    PROFILE_FLAG_HAS_LE, PROFILE_FLAG_HAS_LS,
};
pub use geometry::{IntervalSet, Rect, TimeSpacePacker};
pub use plan::{
    baseline_layout, finish_plan, synthesize, DynGroup, DynamicPlan, Plan, PlanStats, PlannedAlloc,
    StaticLayout, StrategyChoice, SynthConfig, SYNTH_ALGO_VERSION,
};
pub use profiler::{profile_trace, InstanceKey, ProfileError, ProfiledRequests, RequestEvent};
pub use runtime::{RuntimeConfig, RuntimeCounters, StallocAllocator};
pub use timeline::{analyze_plan, render_svg, PlanTimeline, StrandedTensor, TimelineSample};
pub use visualize::render_plan;
pub use wire::{
    NamedHistogram, PlanEncoding, PlanRequest, PlanResponse, PlanSource, ProfileEncoding,
    ServeMetrics, ServeStats, SolverStrategyMetrics, WireErrorKind,
};

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn job() -> TrainJob {
        TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 4, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(8)
        .with_iterations(2)
    }

    #[test]
    fn profile_counts_are_consistent() {
        let trace = job().build_trace().unwrap();
        let p1 = profile_trace(&trace, 1).unwrap();
        let p2 = profile_trace(&trace, 2).unwrap();
        assert_eq!(p1.statics.len(), p2.statics.len());
        assert_eq!(p1.init_count, p2.init_count);
        assert!(p1.init_count > 0, "weights are persistent");
        assert!(p1.iter_statics().len() > 100);
        // Static request sequences must be identical across iterations.
        let sizes = |p: &ProfiledRequests| -> Vec<u64> {
            p.iter_statics().iter().map(|r| r.size).collect::<Vec<_>>()
        };
        assert_eq!(sizes(&p1), sizes(&p2));
    }

    #[test]
    fn plan_is_sound_and_tight() {
        let trace = job().build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let plan = synthesize(&profile, &SynthConfig::default());
        plan.validate().expect("no overlapping decisions");
        assert!(plan.pool_size >= plan.stats.peak_static_demand);
        // The plan should be close to the theoretical peak: <15% bubbles.
        assert!(
            plan.stats.packing_efficiency() > 0.85,
            "packing efficiency {:.3}",
            plan.stats.packing_efficiency()
        );
    }

    #[test]
    fn plan_serialization_roundtrip() {
        let trace = job().build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let plan = synthesize(&profile, &SynthConfig::default());
        let json = plan.to_json();
        let back = Plan::from_json(&json).unwrap();
        assert_eq!(back.pool_size, plan.pool_size);
        assert_eq!(back.iter_allocs, plan.iter_allocs);
        assert_eq!(back.stats, plan.stats);
    }

    #[test]
    fn plan_json_without_strategy_decodes_as_baseline() {
        // JSON plan artifacts written before `PlanStats.strategy`
        // existed must keep loading (mirroring the binary codec's v1
        // fallback), so `stalloc show`/`diff` work on old files.
        let trace = job().build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        let plan = synthesize(&profile, &SynthConfig::default());
        let mut v = serde_json::to_value(&plan).unwrap();
        let serde::Value::Map(top) = &mut v else {
            panic!("plan serializes as a map");
        };
        let stats = top
            .iter_mut()
            .find_map(|(k, s)| (k == "stats").then_some(s))
            .unwrap();
        let serde::Value::Map(stat_fields) = stats else {
            panic!("stats serializes as a map");
        };
        let before = stat_fields.len();
        stat_fields.retain(|(k, _)| k != "strategy");
        assert_eq!(stat_fields.len(), before - 1, "strategy key was present");
        let back = Plan::from_json(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back.stats.strategy, StrategyChoice::Baseline);
        assert_eq!(back.stats, plan.stats);
        assert_eq!(back.pool_size, plan.pool_size);
    }

    #[test]
    fn ablations_do_not_break_soundness() {
        let trace = job().build_trace().unwrap();
        let profile = profile_trace(&trace, 1).unwrap();
        for config in [
            SynthConfig {
                enable_fusion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                enable_gap_insertion: false,
                ..SynthConfig::default()
            },
            SynthConfig {
                ascending_sizes: true,
                ..SynthConfig::default()
            },
        ] {
            let plan = synthesize(&profile, &config);
            plan.validate().expect("ablated plan still sound");
        }
    }

    #[test]
    fn missing_iteration_is_an_error() {
        let trace = job().build_trace().unwrap();
        assert_eq!(
            profile_trace(&trace, 9).unwrap_err(),
            ProfileError::MissingIteration(9)
        );
    }
}
