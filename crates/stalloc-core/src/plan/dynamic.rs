//! Dynamic Reusable Space extraction (paper §5.2, Eqs. 3–6).
//!
//! Dynamic (MoE expert) requests have unpredictable sizes but regular
//! lifespans. They are grouped by their (allocating instance, freeing
//! instance) pair — the *HomoLayer Groups* `G(a, b)` — and for each group we
//! pre-compute the address intervals of the static pool that stay idle
//! throughout the group's bounding temporal range `T(a, b)`. At runtime the
//! dynamic allocator places requests inside these pre-vetted intervals,
//! guaranteeing no conflict with planned static allocations.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::profiler::{InstanceKey, ProfiledRequests};

/// One HomoLayer group with its reusable space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynGroup {
    /// Allocating instance (`l_s`).
    pub ls: InstanceKey,
    /// Freeing instance (`l_e`).
    pub le: InstanceKey,
    /// Bounding temporal range `T(a, b)` in window ticks.
    pub t_range: (u64, u64),
    /// Reusable address intervals `A_i` within the static pool, sorted.
    pub intervals: Vec<(u64, u64)>,
    /// Total profiled bytes of the group (for statistics).
    pub profiled_bytes: u64,
}

/// Dynamic half of the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicPlan {
    /// All HomoLayer groups.
    pub groups: Vec<DynGroup>,
    /// Per allocating instance, the group index of each arriving dynamic
    /// request in profiled order — the runtime matcher's lookup table.
    pub instance_seq: Vec<(InstanceKey, Vec<u32>)>,
}

impl DynamicPlan {
    /// Total reusable bytes across groups (diagnostic).
    pub fn total_reusable(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.intervals.iter().map(|&(_, l)| l).sum::<u64>())
            .sum()
    }
}

/// A planned static decision in its final absolute position, the input to
/// the occupancy interrogation of Eq. 4.
#[derive(Debug, Clone, Copy)]
pub struct PlacedStatic {
    /// Absolute pool offset.
    pub offset: u64,
    /// Size in bytes.
    pub size: u64,
    /// Allocation tick.
    pub ts: u64,
    /// Free tick (exclusive).
    pub te: u64,
}

/// Builds the dynamic plan: HomoLayer groups and their reusable intervals.
pub fn locate_reusable_space(
    profile: &ProfiledRequests,
    placed: &[PlacedStatic],
    pool_size: u64,
) -> DynamicPlan {
    let windows: HashMap<InstanceKey, (u64, u64)> =
        profile.instance_windows.iter().copied().collect();

    // Group dynamic requests by (ls, le); requests with unknown instances
    // (outside any module) are left to the fallback allocator.
    let mut group_of: HashMap<(InstanceKey, InstanceKey), u32> = HashMap::new();
    let mut groups: Vec<DynGroup> = Vec::new();
    let mut req_group: Vec<Option<u32>> = vec![None; profile.dynamics.len()];

    for (i, d) in profile.dynamics.iter().enumerate() {
        let (Some(ls), Some(le)) = (d.ls, d.le) else {
            continue;
        };
        let idx = *group_of.entry((ls, le)).or_insert_with(|| {
            let a = windows.get(&ls).copied().unwrap_or((d.ts, d.ts));
            let b = windows.get(&le).copied().unwrap_or((d.te, d.te));
            let t_range = (a.0, b.1.max(a.1));
            groups.push(DynGroup {
                ls,
                le,
                t_range,
                intervals: Vec::new(),
                profiled_bytes: 0,
            });
            (groups.len() - 1) as u32
        });
        groups[idx as usize].profiled_bytes += d.size;
        req_group[i] = Some(idx);
    }

    // Eq. 4-6: for each group, occupied = union of static extents whose
    // lifetime intersects T; reusable = complement within the pool.
    for g in &mut groups {
        let (t0, t1) = g.t_range;
        // Merge occupied extents via sort-and-sweep (extents may overlap).
        let mut spans: Vec<(u64, u64)> = placed
            .iter()
            .filter(|p| p.ts < t1.max(t0 + 1) && t0 < p.te && p.size > 0)
            .map(|p| (p.offset, p.offset + p.size))
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        // Complement within [0, pool_size).
        let mut intervals = Vec::new();
        let mut cursor = 0;
        for (s, e) in merged {
            if s > cursor {
                intervals.push((cursor, s - cursor));
            }
            cursor = cursor.max(e);
        }
        if cursor < pool_size {
            intervals.push((cursor, pool_size - cursor));
        }
        g.intervals = intervals;
    }

    // Arrival sequences: map profiled arrival order per instance to groups.
    let mut instance_seq: Vec<(InstanceKey, Vec<u32>)> = Vec::new();
    for (key, arrivals) in &profile.instance_arrivals {
        let seq: Vec<u32> = arrivals
            .iter()
            .map(|&i| req_group[i as usize].unwrap_or(u32::MAX))
            .collect();
        instance_seq.push((*key, seq));
    }

    DynamicPlan {
        groups,
        instance_seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::RequestEvent;
    use trace_gen::ModuleId;

    fn key(m: u32, p: u32) -> InstanceKey {
        InstanceKey {
            module: ModuleId(m),
            phase: p,
        }
    }

    fn dyn_req(size: u64, ts: u64, te: u64, ls: InstanceKey, le: InstanceKey) -> RequestEvent {
        RequestEvent {
            size,
            ts,
            te,
            ps: ls.phase,
            pe: le.phase,
            dynamic: true,
            ls: Some(ls),
            le: Some(le),
        }
    }

    fn profile_with(
        dynamics: Vec<RequestEvent>,
        windows: Vec<(InstanceKey, (u64, u64))>,
    ) -> ProfiledRequests {
        let mut arrivals: HashMap<InstanceKey, Vec<u32>> = HashMap::new();
        for (i, d) in dynamics.iter().enumerate() {
            arrivals.entry(d.ls.unwrap()).or_default().push(i as u32);
        }
        let mut instance_arrivals: Vec<(InstanceKey, Vec<u32>)> = arrivals.into_iter().collect();
        instance_arrivals.sort_unstable_by_key(|&(k, _)| k);
        ProfiledRequests {
            statics: Vec::new(),
            init_count: 0,
            dynamics,
            num_phases: 4,
            window_len: 100,
            instance_windows: windows,
            instance_arrivals,
        }
    }

    #[test]
    fn reusable_space_avoids_live_statics() {
        // Static decision occupying [0, 1000) during ticks [0, 50).
        let placed = vec![PlacedStatic {
            offset: 0,
            size: 1000,
            ts: 0,
            te: 50,
        }];
        // Dynamic group active during [10, 20): overlaps the static.
        let a = key(1, 1);
        let b = key(1, 3);
        let profile = profile_with(
            vec![dyn_req(512, 12, 18, a, b)],
            vec![(a, (10, 14)), (b, (16, 20))],
        );
        let plan = locate_reusable_space(&profile, &placed, 4096);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].t_range, (10, 20));
        assert_eq!(plan.groups[0].intervals, vec![(1000, 3096)]);
    }

    #[test]
    fn expired_statics_are_reusable() {
        // Static frees at tick 10; dynamic group runs [20, 30).
        let placed = vec![PlacedStatic {
            offset: 0,
            size: 1000,
            ts: 0,
            te: 10,
        }];
        let a = key(2, 2);
        let b = key(2, 2);
        let profile = profile_with(vec![dyn_req(512, 21, 29, a, b)], vec![(a, (20, 30))]);
        let plan = locate_reusable_space(&profile, &placed, 4096);
        assert_eq!(plan.groups[0].intervals, vec![(0, 4096)]);
    }

    #[test]
    fn overlapping_extents_merge() {
        let placed = vec![
            PlacedStatic {
                offset: 0,
                size: 1000,
                ts: 0,
                te: 100,
            },
            PlacedStatic {
                offset: 500,
                size: 1000,
                ts: 0,
                te: 100,
            },
            PlacedStatic {
                offset: 2000,
                size: 500,
                ts: 0,
                te: 100,
            },
        ];
        let a = key(3, 1);
        let profile = profile_with(vec![dyn_req(512, 5, 6, a, a)], vec![(a, (0, 50))]);
        let plan = locate_reusable_space(&profile, &placed, 4096);
        assert_eq!(plan.groups[0].intervals, vec![(1500, 500), (2500, 1596)]);
    }

    #[test]
    fn instance_sequences_map_arrivals_to_groups() {
        let a = key(1, 1);
        let b1 = key(1, 5);
        let b2 = key(1, 7);
        let profile = profile_with(
            vec![
                dyn_req(512, 10, 20, a, b1),
                dyn_req(512, 11, 30, a, b2),
                dyn_req(512, 12, 21, a, b1),
            ],
            vec![(a, (10, 13)), (b1, (19, 22)), (b2, (28, 31))],
        );
        let plan = locate_reusable_space(&profile, &[], 1024);
        assert_eq!(plan.groups.len(), 2);
        let seq = &plan.instance_seq.iter().find(|(k, _)| *k == a).unwrap().1;
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], seq[2], "requests 0 and 2 share a group");
        assert_ne!(seq[0], seq[1]);
    }
}
