//! Global planning (paper §5.1, Fig. 6 right + Algorithm 1).
//!
//! Fused HomoPhase plans become unified requests and are grouped by
//! identical footprint into *HomoSize Groups*. Groups are processed in
//! descending size order; each member is first offered to the idle
//! intervals of already-placed regions (gap insertion), and the remainder
//! are packed into *memory-layers* via Algorithm 1 — same-size requests
//! with disjoint lifespans share one layer. Layers are stacked to form the
//! final static pool, and every original request receives an absolute
//! offset.
//!
//! Placed plans are recorded at *member granularity*: a region's packer
//! holds the individual request rectangles, so the idle staircase left as a
//! cohort's tensors free one by one is visible to later gap insertions.

use std::collections::HashMap;

use crate::geometry::{Rect, TimeSpacePacker};
use crate::plan::phase_group::LocalPlan;
use crate::profiler::RequestEvent;

/// Options steering global planning (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalOptions {
    /// Offer each member to idle gaps of already-placed regions before
    /// opening a new layer (paper behaviour: on).
    pub gap_insertion: bool,
    /// Process size classes in ascending instead of descending order
    /// (ablation; paper behaviour: descending).
    pub ascending_sizes: bool,
}

impl Default for GlobalOptions {
    fn default() -> Self {
        Self {
            gap_insertion: true,
            ascending_sizes: false,
        }
    }
}

/// A placed region of the pool: one memory-layer.
#[derive(Debug)]
struct Region {
    base: u64,
    size: u64,
    packer: TimeSpacePacker,
    /// Free tick of the last Algorithm-1 appended member.
    end: u64,
}

/// Result of global planning.
#[derive(Debug, Clone)]
pub struct GlobalLayout {
    /// Absolute base offset of each local plan, indexed like the input
    /// (for scattered plans: the first member's offset).
    pub plan_bases: Vec<u64>,
    /// Absolute offset of every static request, indexed by request.
    pub request_offsets: Vec<u64>,
    /// Total pool size in bytes.
    pub pool_size: u64,
    /// Number of memory-layers created.
    pub layer_count: usize,
    /// Members placed via gap insertion (whole groups or scattered members).
    pub gap_inserted: usize,
}

/// Final address-assignment refinement: a global first-fit sweep over all
/// requests in allocation order. The group machinery above decides
/// *structure* (which requests share layers, what reuses what); this pass
/// squeezes the remaining inter-cohort bubbles that group-at-a-time
/// placement cannot see (it is kept only when it produces a smaller pool).
/// Returns `(request_offsets, pool_size)`.
pub fn refine_first_fit(reqs: &[RequestEvent]) -> (Vec<u64>, u64) {
    let mut order: Vec<usize> = (0..reqs.len()).collect();
    // Allocation order; larger first among simultaneous arrivals.
    order.sort_unstable_by_key(|&i| (reqs[i].ts, u64::MAX - reqs[i].size));
    let mut packer = TimeSpacePacker::new();
    let mut offsets = vec![0u64; reqs.len()];
    for i in order {
        let r = &reqs[i];
        let t1 = r.te.max(r.ts + 1);
        offsets[i] = packer.pack(r.ts, t1, r.size);
    }
    (offsets, packer.height())
}

/// Records a plan's member rectangles into a region at `base_off`.
fn record_members(region: &mut Region, plan: &LocalPlan, reqs: &[RequestEvent], base_off: u64) {
    for &(ri, rel) in &plan.members {
        let r = &reqs[ri];
        region.packer.place_at(Rect {
            t0: r.ts,
            t1: r.te.max(r.ts + 1),
            off: base_off + rel,
            len: r.size,
        });
    }
}

/// Assigns absolute offsets to every local plan.
pub fn assemble(plans: &[LocalPlan], reqs: &[RequestEvent], opts: GlobalOptions) -> GlobalLayout {
    // HomoSize grouping by exact footprint.
    let mut by_size: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, p) in plans.iter().enumerate() {
        by_size.entry(p.size().max(1)).or_default().push(i);
    }
    let mut sizes: Vec<u64> = by_size.keys().copied().collect();
    if opts.ascending_sizes {
        sizes.sort_unstable();
    } else {
        sizes.sort_unstable_by(|a, b| b.cmp(a));
    }

    let mut regions: Vec<Region> = Vec::new();
    let mut stack_top = 0u64;
    let mut plan_bases = vec![0u64; plans.len()];
    let mut request_offsets = vec![0u64; reqs.len()];
    let mut gap_inserted = 0usize;
    let mut layer_count = 0usize;

    for s in sizes {
        let mut members = by_size.remove(&s).expect("size exists");
        // Algorithm 1 line 2: sort by allocation time.
        members.sort_unstable_by_key(|&i| plans[i].ts);
        // Layers opened for THIS size class, identified by region index.
        let mut class_layers: Vec<usize> = Vec::new();

        'member: for i in members {
            let plan = &plans[i];
            let (ts, te) = (plan.ts, plan.te.max(plan.ts + 1));

            // Stage A: whole-group gap insertion into previously placed
            // strictly-larger regions (same-size reuse is Algorithm 1's job
            // below). Thanks to member-granular recording, the query sees
            // intra-cohort idle space, not just whole-group gaps.
            if opts.gap_insertion {
                for region in regions.iter_mut() {
                    if region.size <= s {
                        continue;
                    }
                    if let Some(off) = region.packer.find_first_fit(ts, te, s, region.size) {
                        plan_bases[i] = region.base + off;
                        for &(ri_req, rel) in &plan.members {
                            request_offsets[ri_req] = region.base + off + rel;
                        }
                        record_members(region, plan, reqs, off);
                        gap_inserted += 1;
                        continue 'member;
                    }
                }
            }

            // Stage B: member-level scatter — each member may sit in the
            // idle staircase of ANY existing region (a member is an
            // independent request; group contiguity is not a constraint).
            // Members that fit nowhere spill to the class layer below.
            let mut spilled: Vec<(usize, u64)> = Vec::new();
            if opts.gap_insertion && !regions.is_empty() {
                let mut ordered = plan.members.clone();
                ordered.sort_unstable_by_key(|&(ri_req, _)| reqs[ri_req].ts);
                for (ri_req, rel) in ordered {
                    let r = &reqs[ri_req];
                    let t1 = r.te.max(r.ts + 1);
                    let mut placed = false;
                    for region in regions.iter_mut() {
                        if let Some(off) =
                            region.packer.find_first_fit(r.ts, t1, r.size, region.size)
                        {
                            region.packer.place_at(Rect {
                                t0: r.ts,
                                t1,
                                off,
                                len: r.size,
                            });
                            request_offsets[ri_req] = region.base + off;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        spilled.push((ri_req, rel));
                    } else {
                        gap_inserted += 1;
                    }
                }
                if spilled.is_empty() {
                    plan_bases[i] = request_offsets[plan.members[0].0];
                    continue 'member;
                }
            } else {
                spilled = plan.members.clone();
            }

            // Stage C, Algorithm 1 lines 4-10, at member granularity: the
            // preferred layer is the one whose end is closest below the
            // group's start; every placement is conflict-checked so layers
            // shared with scattered residents stay sound.
            let mut first_off: Option<u64> = None;
            for (ri_req, _) in spilled {
                let r = &reqs[ri_req];
                let t1 = r.te.max(r.ts + 1);
                // Candidate order: Algorithm-1 preference (latest end <=
                // group start) first, then remaining class layers.
                let mut candidates: Vec<usize> = class_layers.clone();
                candidates.sort_unstable_by_key(|&ri| {
                    let end = regions[ri].end;
                    if end <= ts {
                        (0u8, u64::MAX - end)
                    } else {
                        (1u8, end)
                    }
                });
                let mut placed_at: Option<(usize, u64)> = None;
                for ri in candidates {
                    if let Some(off) =
                        regions[ri]
                            .packer
                            .find_first_fit(r.ts, t1, r.size, regions[ri].size)
                    {
                        placed_at = Some((ri, off));
                        break;
                    }
                }
                let (ri, off) = placed_at.unwrap_or_else(|| {
                    let ri = regions.len();
                    regions.push(Region {
                        base: stack_top,
                        size: s,
                        packer: TimeSpacePacker::new(),
                        end: 0,
                    });
                    stack_top += s;
                    class_layers.push(ri);
                    layer_count += 1;
                    (ri, 0)
                });
                let region = &mut regions[ri];
                region.packer.place_at(Rect {
                    t0: r.ts,
                    t1,
                    off,
                    len: r.size,
                });
                region.end = region.end.max(t1);
                request_offsets[ri_req] = region.base + off;
                first_off.get_or_insert(region.base + off);
            }
            if let Some(base) = first_off {
                plan_bases[i] = base;
            }
        }
    }

    GlobalLayout {
        plan_bases,
        request_offsets,
        pool_size: stack_top,
        layer_count,
        gap_inserted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TimeSpacePacker;

    /// Builds (plans, reqs) where each plan is a singleton of the given
    /// (size, ts, te).
    fn singleton_plans(specs: &[(u64, u64, u64)]) -> (Vec<LocalPlan>, Vec<RequestEvent>) {
        let mut reqs = Vec::new();
        let mut plans = Vec::new();
        for &(size, ts, te) in specs {
            let i = reqs.len();
            reqs.push(RequestEvent {
                size,
                ts,
                te,
                ps: 1,
                pe: 2,
                dynamic: false,
                ls: None,
                le: None,
            });
            let mut packer = TimeSpacePacker::new();
            packer.pack(ts, te, size);
            plans.push(LocalPlan {
                members: vec![(i, 0)],
                packer,
                ts,
                te,
                min_te: te,
                ps: 1,
                pe: 2,
            });
        }
        (plans, reqs)
    }

    #[test]
    fn same_size_disjoint_lifespans_share_a_layer() {
        let (plans, reqs) =
            singleton_plans(&[(1024, 0, 10), (1024, 5, 15), (1024, 10, 20), (1024, 16, 25)]);
        let layout = assemble(&plans, &reqs, GlobalOptions::default());
        assert_eq!(layout.layer_count, 2, "two layers suffice");
        assert_eq!(layout.pool_size, 2048);
        assert_eq!(layout.plan_bases[0], layout.plan_bases[2]);
        assert_eq!(layout.plan_bases[1], layout.plan_bases[3]);
    }

    #[test]
    fn algorithm1_prefers_tightest_layer() {
        let (plans, reqs) = singleton_plans(&[(512, 0, 4), (512, 0, 9), (512, 10, 20)]);
        let opts = GlobalOptions {
            gap_insertion: false, // isolate Algorithm 1's choice
            ascending_sizes: false,
        };
        let layout = assemble(&plans, &reqs, opts);
        assert_eq!(layout.layer_count, 2);
        assert_eq!(
            layout.plan_bases[2], layout.plan_bases[1],
            "tightest layer (end 9) chosen over end 4"
        );
    }

    #[test]
    fn smaller_requests_fill_gaps_of_larger_layers() {
        let (plans, reqs) = singleton_plans(&[(4096, 0, 10), (4096, 20, 30), (1024, 12, 18)]);
        let layout = assemble(&plans, &reqs, GlobalOptions::default());
        assert_eq!(layout.pool_size, 4096, "small plan needed no new space");
        // The second 4096 plan scatters into the first layer's idle window
        // and the 1024 plan gap-inserts: two placements without new space.
        assert_eq!(layout.gap_inserted, 2);
        assert_eq!(layout.layer_count, 1);
    }

    #[test]
    fn fine_grained_recording_exposes_staircase() {
        // A two-member cohort: one member frees early, the other late. A
        // later small request that starts after the early free can reuse
        // the freed part even though the cohort as a whole is still alive.
        let mut reqs = vec![
            RequestEvent {
                size: 1024,
                ts: 0,
                te: 20,
                ps: 1,
                pe: 2,
                dynamic: false,
                ls: None,
                le: None,
            },
            RequestEvent {
                size: 1024,
                ts: 0,
                te: 5,
                ps: 1,
                pe: 2,
                dynamic: false,
                ls: None,
                le: None,
            },
        ];
        let mut packer = TimeSpacePacker::new();
        packer.pack(0, 20, 1024);
        packer.pack(0, 5, 1024);
        let cohort = LocalPlan {
            members: vec![(0, 0), (1, 1024)],
            packer,
            ts: 0,
            te: 20,
            min_te: 5,
            ps: 1,
            pe: 2,
        };
        // Small transient active [6, 15): fits where member 1 freed.
        reqs.push(RequestEvent {
            size: 512,
            ts: 6,
            te: 15,
            ps: 3,
            pe: 3,
            dynamic: false,
            ls: None,
            le: None,
        });
        let mut small_packer = TimeSpacePacker::new();
        small_packer.pack(6, 15, 512);
        let small = LocalPlan {
            members: vec![(2, 0)],
            packer: small_packer,
            ts: 6,
            te: 15,
            min_te: 15,
            ps: 3,
            pe: 3,
        };
        let layout = assemble(&[cohort, small], &reqs, GlobalOptions::default());
        assert_eq!(layout.pool_size, 2048, "no extra layer for the transient");
        assert_eq!(layout.gap_inserted, 1);
        assert_eq!(layout.plan_bases[1], 1024, "placed in the freed step");
    }

    #[test]
    fn gap_insertion_can_be_disabled() {
        let (plans, reqs) = singleton_plans(&[(4096, 0, 10), (1024, 12, 18)]);
        let on = assemble(&plans, &reqs, GlobalOptions::default());
        let off = assemble(
            &plans,
            &reqs,
            GlobalOptions {
                gap_insertion: false,
                ascending_sizes: false,
            },
        );
        assert_eq!(on.pool_size, 4096);
        assert_eq!(off.pool_size, 4096 + 1024);
    }

    #[test]
    fn descending_order_beats_ascending_here() {
        let (plans, reqs) = singleton_plans(&[(1024, 12, 18), (4096, 0, 10), (4096, 20, 30)]);
        let desc = assemble(&plans, &reqs, GlobalOptions::default());
        let asc = assemble(
            &plans,
            &reqs,
            GlobalOptions {
                gap_insertion: true,
                ascending_sizes: true,
            },
        );
        assert!(desc.pool_size < asc.pool_size);
    }

    #[test]
    fn overlapping_same_size_plans_stack() {
        let (plans, reqs) = singleton_plans(&[(2048, 0, 10), (2048, 5, 15)]);
        let layout = assemble(&plans, &reqs, GlobalOptions::default());
        assert_eq!(layout.pool_size, 4096);
        assert_ne!(layout.plan_bases[0], layout.plan_bases[1]);
    }
}
