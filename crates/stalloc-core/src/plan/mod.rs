//! The Plan Synthesizer (paper §5): turns profiled requests into an
//! ahead-of-time allocation plan.
//!
//! Pipeline: HomoPhase grouping → TMP-scored fusion → HomoSize grouping with
//! memory-layer construction and gap insertion → absolute address assignment
//! → Dynamic Reusable Space extraction.

pub mod dynamic;
pub mod global;
pub mod phase_group;

use serde::{Deserialize, Serialize};

use crate::profiler::{InstanceKey, ProfiledRequests};
pub use dynamic::{DynGroup, DynamicPlan, PlacedStatic};
pub use global::GlobalOptions;

/// One planned static allocation: the runtime serves the k-th static
/// request of the (init sequence | iteration sequence) at this offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedAlloc {
    /// Expected request size (rounded to the plan alignment).
    pub size: u64,
    /// Absolute offset within the static pool.
    pub offset: u64,
    /// Allocation tick in the profiled window (diagnostics/validation).
    pub ts: u64,
    /// Free tick in the profiled window.
    pub te: u64,
}

/// Which packing strategy produced (or should produce) a plan.
///
/// The concrete packers live in `stalloc-solver`; this enum lives here
/// because it travels everywhere a [`SynthConfig`] does — the job
/// fingerprint, the wire protocol, and the binary plan codec all carry
/// it. [`synthesize`] itself always runs the baseline pipeline; callers
/// wanting another strategy (or the portfolio race) go through
/// `stalloc_solver::synthesize_strategy`, which dispatches on
/// [`SynthConfig::strategy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// The paper pipeline: HomoPhase grouping → TMP fusion → HomoSize
    /// layering with gap insertion, plus the first-fit refinement sweep.
    #[default]
    Baseline,
    /// Size-descending best-fit over the time × address plane.
    BestFit,
    /// Weight-ordered variant of the paper heuristic: fused cohorts are
    /// placed in descending time-memory-product weight order.
    TmpOrder,
    /// Temporal-lookahead interval packer: arrival-order sweep that
    /// prefers gaps whose previous occupant freed closest before the
    /// request arrives.
    Lookahead,
    /// Race every concrete strategy and keep the best plan.
    Portfolio,
}

impl StrategyChoice {
    /// Every selectable choice, concrete strategies first.
    pub const ALL: [StrategyChoice; 5] = [
        StrategyChoice::Baseline,
        StrategyChoice::BestFit,
        StrategyChoice::TmpOrder,
        StrategyChoice::Lookahead,
        StrategyChoice::Portfolio,
    ];

    /// The concrete (directly runnable) strategies the portfolio races.
    pub const CONCRETE: [StrategyChoice; 4] = [
        StrategyChoice::Baseline,
        StrategyChoice::BestFit,
        StrategyChoice::TmpOrder,
        StrategyChoice::Lookahead,
    ];

    /// Stable command-line / display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyChoice::Baseline => "baseline",
            StrategyChoice::BestFit => "bestfit",
            StrategyChoice::TmpOrder => "tmp-order",
            StrategyChoice::Lookahead => "lookahead",
            StrategyChoice::Portfolio => "portfolio",
        }
    }

    /// Parses a [`Self::name`] back into a choice.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Stable small integer for the binary plan codec and fingerprints.
    pub fn index(self) -> u8 {
        match self {
            StrategyChoice::Baseline => 0,
            StrategyChoice::BestFit => 1,
            StrategyChoice::TmpOrder => 2,
            StrategyChoice::Lookahead => 3,
            StrategyChoice::Portfolio => 4,
        }
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.index() == i)
    }
}

impl std::fmt::Display for StrategyChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Synthesis statistics (reported in experiment tables and Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// The strategy that produced this plan (for a portfolio run: the
    /// winning concrete strategy, not `Portfolio`). Defaults to
    /// `Baseline` so JSON plan artifacts written before this field
    /// existed still deserialize (mirroring the binary codec's v1
    /// fallback).
    #[serde(default)]
    pub strategy: StrategyChoice,
    /// Static requests planned (persistent + iteration).
    pub static_requests: usize,
    /// Dynamic requests profiled.
    pub dynamic_requests: usize,
    /// HomoPhase groups before fusion.
    pub phase_groups: usize,
    /// Local plans after fusion.
    pub fused_groups: usize,
    /// Memory-layers created by global planning.
    pub layers: usize,
    /// Members placed by gap insertion.
    pub gap_inserted: usize,
    /// HomoLayer (dynamic) groups.
    pub homolayer_groups: usize,
    /// Peak concurrent static demand (lower bound on the pool).
    pub peak_static_demand: u64,
    /// Final pool size.
    pub pool_size: u64,
}

impl PlanStats {
    /// Planning efficiency: peak demand over pool size (1.0 = no internal
    /// bubbles at the peak instant).
    pub fn packing_efficiency(&self) -> f64 {
        if self.pool_size == 0 {
            1.0
        } else {
            self.peak_static_demand as f64 / self.pool_size as f64
        }
    }
}

/// The complete ahead-of-time plan (paper Fig. 5 "Ahead-of-Time Plan").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plan {
    /// Static pool size in bytes.
    pub pool_size: u64,
    /// Planned allocations for the init (persistent) sequence, in arrival
    /// order.
    pub init_allocs: Vec<PlannedAlloc>,
    /// Planned allocations for each iteration's static sequence, in arrival
    /// order.
    pub iter_allocs: Vec<PlannedAlloc>,
    /// The dynamic half: HomoLayer groups and reusable space.
    pub dynamic: DynamicPlan,
    /// Synthesis statistics.
    pub stats: PlanStats,
}

impl Plan {
    /// Serializes the plan to JSON (the standalone-tool workflow of §8).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plan serializes")
    }

    /// Deserializes a plan from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Validates the §5.1 soundness constraint: no two planned static
    /// decisions overlap in both lifetime and address range, and all
    /// decisions fit the pool.
    pub fn validate(&self) -> Result<(), String> {
        let all: Vec<&PlannedAlloc> = self
            .init_allocs
            .iter()
            .chain(self.iter_allocs.iter())
            .collect();
        for d in &all {
            // Checked: plans can arrive from foreign files (the binary
            // codec's deltas wrap), so offset + size must not overflow
            // past the screen.
            let fits = d
                .offset
                .checked_add(d.size)
                .is_some_and(|end| end <= self.pool_size);
            if !fits {
                return Err(format!(
                    "decision at {} (+{}) exceeds pool {}",
                    d.offset, d.size, self.pool_size
                ));
            }
        }
        // Event sweep over time with an occupancy interval set; at any
        // instant, live decisions must occupy disjoint address ranges.
        let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(all.len() * 2);
        for (i, d) in all.iter().enumerate() {
            let te = d.te.max(d.ts.saturating_add(1));
            events.push((d.ts, false, i)); // false = start
            events.push((te, true, i)); // true = end
        }
        // Ends sort before starts at equal ticks (te is exclusive).
        events.sort_unstable_by_key(|&(t, is_end, _)| (t, !is_end as u8));
        let mut occupied = crate::geometry::IntervalSet::new();
        for (_, is_end, i) in events {
            let d = all[i];
            if is_end {
                occupied.remove(d.offset, d.size);
            } else {
                if occupied.overlaps(d.offset, d.size) {
                    return Err(format!(
                        "overlap: decision [{}, {}) x ticks [{}, {}) intersects \
                         live space",
                        d.offset,
                        d.offset + d.size,
                        d.ts,
                        d.te
                    ));
                }
                occupied.insert(d.offset, d.size);
            }
        }
        Ok(())
    }

    /// Looks up the instance sequence table as a map (runtime helper).
    pub fn instance_seq_map(&self) -> std::collections::HashMap<InstanceKey, Vec<u32>> {
        self.dynamic.instance_seq.iter().cloned().collect()
    }
}

/// Version of the synthesis *algorithm*: bump whenever a change makes
/// [`synthesize`] produce a different plan for identical inputs, so that
/// fingerprint-keyed plan caches never serve plans computed by an older
/// planner (the fingerprint mixes this in).
pub const SYNTH_ALGO_VERSION: u32 = 1;

/// Configuration of the synthesizer (ablation switches). Serializable so
/// it can travel in [`wire`](crate::wire) planning requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Enable TMP-scored HomoPhase fusion (paper behaviour: on).
    pub enable_fusion: bool,
    /// Enable gap insertion in global planning (paper behaviour: on).
    pub enable_gap_insertion: bool,
    /// Process size classes ascending instead of descending (ablation).
    pub ascending_sizes: bool,
    /// Which packing strategy to run (part of the job fingerprint).
    /// [`synthesize`] honours only `Baseline`; the solver crate's
    /// `synthesize_strategy` dispatches the rest. Defaults to
    /// `Baseline` so wire requests from clients predating this field
    /// (3-field config JSON) still deserialize.
    #[serde(default)]
    pub strategy: StrategyChoice,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            enable_fusion: true,
            enable_gap_insertion: true,
            ascending_sizes: false,
            strategy: StrategyChoice::Baseline,
        }
    }
}

/// The static half of a plan, as produced by one packing strategy:
/// an absolute offset per profiled static request plus layout
/// diagnostics. [`finish_plan`] turns it into a full [`Plan`].
#[derive(Debug, Clone)]
pub struct StaticLayout {
    /// Absolute offset of every static request, indexed like
    /// `profile.statics`.
    pub request_offsets: Vec<u64>,
    /// Static pool size (must cover every `offset + size`).
    pub pool_size: u64,
    /// HomoPhase groups before fusion (0 for strategies that skip it).
    pub phase_groups: usize,
    /// Local plans after fusion (0 for strategies that skip it).
    pub fused_groups: usize,
    /// Memory-layers created (0 for strategies without layering).
    pub layers: usize,
    /// Members placed by gap insertion (0 for strategies without it).
    pub gap_inserted: usize,
}

/// Runs the baseline (paper §5.1) static pipeline: HomoPhase grouping →
/// TMP fusion → HomoSize layering with gap insertion, then the global
/// first-fit refinement sweep (kept when it packs tighter).
pub fn baseline_layout(profile: &ProfiledRequests, config: &SynthConfig) -> StaticLayout {
    let plans = phase_group::build_phase_groups(&profile.statics);
    let phase_groups = plans.len();
    let plans = if config.enable_fusion {
        phase_group::fuse_groups(plans, &profile.statics)
    } else {
        plans
    };
    let fused_groups = plans.len();

    let layout = global::assemble(
        &plans,
        &profile.statics,
        GlobalOptions {
            gap_insertion: config.enable_gap_insertion,
            ascending_sizes: config.ascending_sizes,
        },
    );

    // Absolute offset of every static request; the first-fit refinement
    // sweep replaces the group layout when it packs tighter.
    let (request_offsets, pool_size) = {
        let (refined, refined_pool) = global::refine_first_fit(&profile.statics);
        if refined_pool < layout.pool_size {
            (refined, refined_pool)
        } else {
            (layout.request_offsets.clone(), layout.pool_size)
        }
    };

    StaticLayout {
        request_offsets,
        pool_size,
        phase_groups,
        fused_groups,
        layers: layout.layer_count,
        gap_inserted: layout.gap_inserted,
    }
}

/// Completes a plan from a strategy's static layout: builds the planned
/// allocation tables, runs dynamic planning (§5.2) against the placed
/// statics, and fills in the stats (tagged with `strategy`, the concrete
/// strategy that produced `layout`).
pub fn finish_plan(
    profile: &ProfiledRequests,
    strategy: StrategyChoice,
    layout: StaticLayout,
) -> Plan {
    let StaticLayout {
        request_offsets: offsets,
        pool_size,
        phase_groups,
        fused_groups,
        layers,
        gap_inserted,
    } = layout;
    debug_assert_eq!(offsets.len(), profile.statics.len());

    let make = |idx: usize| -> PlannedAlloc {
        let r = &profile.statics[idx];
        PlannedAlloc {
            size: r.size,
            offset: offsets[idx],
            ts: r.ts,
            te: r.te,
        }
    };
    let init_allocs: Vec<PlannedAlloc> = (0..profile.init_count).map(make).collect();
    let iter_allocs: Vec<PlannedAlloc> = (profile.init_count..profile.statics.len())
        .map(make)
        .collect();

    // --- Dynamic planning (§5.2) ---
    let placed: Vec<PlacedStatic> = profile
        .statics
        .iter()
        .enumerate()
        .map(|(i, r)| PlacedStatic {
            offset: offsets[i],
            size: r.size,
            ts: r.ts,
            te: r.te.max(r.ts + 1),
        })
        .collect();
    let dynamic = dynamic::locate_reusable_space(profile, &placed, pool_size);

    let stats = PlanStats {
        strategy,
        static_requests: profile.statics.len(),
        dynamic_requests: profile.dynamics.len(),
        phase_groups,
        fused_groups,
        layers,
        gap_inserted,
        homolayer_groups: dynamic.groups.len(),
        peak_static_demand: profile.peak_static_demand(),
        pool_size,
    };

    Plan {
        pool_size,
        init_allocs,
        iter_allocs,
        dynamic,
        stats,
    }
}

/// Runs the full plan synthesis on a profile — always with the baseline
/// pipeline, whatever [`SynthConfig::strategy`] says. Strategy dispatch
/// (and the portfolio race) lives in `stalloc_solver::synthesize_strategy`,
/// which every cache/server/CLI path routes through.
pub fn synthesize(profile: &ProfiledRequests, config: &SynthConfig) -> Plan {
    // Guard the pairing trap: fingerprint_job() hashes config.strategy,
    // so calling synthesize() (baseline-only) with a non-baseline config
    // would cache a baseline plan under another strategy's fingerprint.
    debug_assert_eq!(
        config.strategy,
        StrategyChoice::Baseline,
        "synthesize() always runs the baseline pipeline; dispatch other \
         strategies through stalloc_solver::synthesize_strategy"
    );
    finish_plan(
        profile,
        StrategyChoice::Baseline,
        baseline_layout(profile, config),
    )
}
