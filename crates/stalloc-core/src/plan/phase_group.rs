//! HomoPhase grouping and TMP-scored fusion (paper §5.1, Figs. 6–7).
//!
//! Requests sharing an (allocation phase, free phase) pair form a
//! *HomoPhase Group*; each group is packed into a compact local plan.
//! Adjacent groups (one's end phase equals the other's start phase) are
//! fused when doing so raises the *time-memory product* (TMP, Eq. 2) above
//! the weighted average of the originals — i.e. when fusion removes
//! spatio-temporal bubbles.

use std::collections::HashMap;

use crate::geometry::{Rect, TimeSpacePacker};
use crate::profiler::RequestEvent;

/// A local plan: one (possibly fused) HomoPhase group with relative offsets.
#[derive(Debug, Clone)]
pub struct LocalPlan {
    /// Members: (static-request index, relative offset).
    pub members: Vec<(usize, u64)>,
    /// Occupancy of the plan's members.
    pub packer: TimeSpacePacker,
    /// Earliest allocation tick.
    pub ts: u64,
    /// Latest free tick.
    pub te: u64,
    /// Earliest free tick among members — before this, no space frees, so
    /// fusion with later groups cannot help (fusion pre-filter).
    pub min_te: u64,
    /// Allocation phase of the group (first group's, after fusion).
    pub ps: u32,
    /// Free phase of the group (last group's, after fusion).
    pub pe: u32,
}

impl LocalPlan {
    /// Footprint in bytes (`D_g.s`).
    pub fn size(&self) -> u64 {
        self.packer.height()
    }

    /// Time-memory product (Eq. 2). 1.0 means zero bubbles.
    pub fn tmp(&self) -> f64 {
        let denom = self.size() as f64 * (self.te - self.ts) as f64;
        if denom == 0.0 {
            1.0
        } else {
            self.packer.area() as f64 / denom
        }
    }

    /// TMP denominator, used as the fusion-acceptance weight.
    pub fn weight(&self) -> f64 {
        self.size() as f64 * (self.te - self.ts) as f64
    }
}

/// Builds one packed local plan per (pˢ, pᵉ) class.
///
/// Within a class, requests are placed in allocation order at the lowest
/// conflict-free offset. For fully-overlapping lifespans (the common scoped
/// case) this degenerates to the paper's contiguous stacking; for same-phase
/// transients it additionally reuses space across disjoint lifetimes.
pub fn build_phase_groups(reqs: &[RequestEvent]) -> Vec<LocalPlan> {
    let mut classes: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    let mut singles: Vec<usize> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        if r.ps == r.pe {
            // Same-phase transients don't share a common lifespan; placing
            // them individually lets global planning slot each one into the
            // staircase of progressively-freed scoped space.
            singles.push(i);
        } else {
            classes.entry((r.ps, r.pe)).or_default().push(i);
        }
    }
    let mut keys: Vec<(u32, u32)> = classes.keys().copied().collect();
    keys.sort_unstable();

    let mut plans = Vec::with_capacity(keys.len() + singles.len());
    for i in singles {
        let r = &reqs[i];
        let t1 = r.te.max(r.ts + 1);
        let mut packer = TimeSpacePacker::new();
        packer.place_at(Rect {
            t0: r.ts,
            t1,
            off: 0,
            len: r.size,
        });
        plans.push(LocalPlan {
            members: vec![(i, 0)],
            packer,
            ts: r.ts,
            te: t1,
            min_te: t1,
            ps: r.ps,
            pe: r.pe,
        });
    }
    for key in keys {
        let mut idxs = classes.remove(&key).expect("key exists");
        idxs.sort_unstable_by_key(|&i| reqs[i].ts);
        let mut packer = TimeSpacePacker::new();
        let mut members = Vec::with_capacity(idxs.len());
        let (mut ts, mut te, mut min_te) = (u64::MAX, 0u64, u64::MAX);
        for i in idxs {
            let r = &reqs[i];
            let t1 = r.te.max(r.ts + 1);
            let off = packer.pack(r.ts, t1, r.size);
            members.push((i, off));
            ts = ts.min(r.ts);
            te = te.max(t1);
            min_te = min_te.min(t1);
        }
        plans.push(LocalPlan {
            members,
            packer,
            ts,
            te,
            min_te,
            ps: key.0,
            pe: key.1,
        });
    }
    plans
}

/// Attempts to fuse `host` and `guest` (paper Fig. 6 upper-left): the host's
/// members are re-stacked by descending end time (forming a staircase of
/// progressively earlier-freed space), then the guest's members are inserted
/// in ascending start-time order at the lowest conflict-free offsets.
///
/// Returns the fused plan if its TMP exceeds the weighted average of the
/// originals (Fig. 7 acceptance rule), `None` otherwise.
pub fn try_fuse(host: &LocalPlan, guest: &LocalPlan, reqs: &[RequestEvent]) -> Option<LocalPlan> {
    let mut packer = TimeSpacePacker::new();
    let mut members = Vec::with_capacity(host.members.len() + guest.members.len());

    // Host re-stack: descending end time, contiguous.
    let mut host_members = host.members.clone();
    host_members.sort_unstable_by(|&(a, _), &(b, _)| {
        reqs[b]
            .te
            .cmp(&reqs[a].te)
            .then_with(|| reqs[a].ts.cmp(&reqs[b].ts))
    });
    let mut cursor = 0u64;
    for (i, _) in host_members {
        let r = &reqs[i];
        let t1 = r.te.max(r.ts + 1);
        packer.place_at(Rect {
            t0: r.ts,
            t1,
            off: cursor,
            len: r.size,
        });
        members.push((i, cursor));
        cursor += r.size;
    }

    // Guest insertion: ascending start time, lowest available offset.
    let mut guest_members = guest.members.clone();
    guest_members.sort_unstable_by_key(|&(i, _)| reqs[i].ts);
    for (i, _) in guest_members {
        let r = &reqs[i];
        let t1 = r.te.max(r.ts + 1);
        let off = packer
            .find_first_fit(r.ts, t1, r.size, u64::MAX)
            .expect("unbounded");
        packer.place_at(Rect {
            t0: r.ts,
            t1,
            off,
            len: r.size,
        });
        members.push((i, off));
    }

    let fused = LocalPlan {
        members,
        packer,
        ts: host.ts.min(guest.ts),
        te: host.te.max(guest.te),
        min_te: host.min_te.min(guest.min_te),
        ps: if host.ts <= guest.ts {
            host.ps
        } else {
            guest.ps
        },
        pe: if host.te >= guest.te {
            host.pe
        } else {
            guest.pe
        },
    };

    let wa = (host.tmp() * host.weight() + guest.tmp() * guest.weight())
        / (host.weight() + guest.weight()).max(f64::MIN_POSITIVE);
    if fused.tmp() > wa {
        Some(fused)
    } else {
        None
    }
}

/// Greedy fusion pass: repeatedly fuses phase-adjacent plan pairs (one's
/// `pᵉ` equals the other's `pˢ`) whenever the TMP acceptance rule fires,
/// until no fusion is accepted.
pub fn fuse_groups(mut plans: Vec<LocalPlan>, reqs: &[RequestEvent]) -> Vec<LocalPlan> {
    loop {
        let mut fused_any = false;
        'outer: for a in 0..plans.len() {
            for b in 0..plans.len() {
                if a == b {
                    continue;
                }
                if plans[a].pe != plans[b].ps {
                    continue;
                }
                // The larger plan hosts; the smaller is inserted.
                let (host, guest) = if plans[a].size() >= plans[b].size() {
                    (a, b)
                } else {
                    (b, a)
                };
                // Pre-filters: singleton same-phase transients are placed
                // individually by global planning; and fusion can only
                // remove bubbles if some host space frees before the guest
                // finishes.
                let is_single_transient = |p: &LocalPlan| p.members.len() == 1 && p.ps == p.pe;
                if is_single_transient(&plans[host]) || is_single_transient(&plans[guest]) {
                    continue;
                }
                if plans[guest].te <= plans[host].min_te {
                    continue;
                }
                if let Some(fused) = try_fuse(&plans[host], &plans[guest], reqs) {
                    let (hi, lo) = if host > guest {
                        (host, guest)
                    } else {
                        (guest, host)
                    };
                    plans.swap_remove(hi);
                    plans.swap_remove(lo);
                    plans.push(fused);
                    fused_any = true;
                    break 'outer;
                }
            }
        }
        if !fused_any {
            return plans;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(size: u64, ts: u64, te: u64, ps: u32, pe: u32) -> RequestEvent {
        RequestEvent {
            size,
            ts,
            te,
            ps,
            pe,
            dynamic: false,
            ls: None,
            le: None,
        }
    }

    #[test]
    fn groups_form_per_phase_pair() {
        let reqs = vec![
            req(512, 0, 10, 1, 2),
            req(512, 1, 9, 1, 2),
            req(1024, 2, 3, 1, 1),
        ];
        let plans = build_phase_groups(&reqs);
        assert_eq!(plans.len(), 2);
        let scoped = plans.iter().find(|p| p.pe == 2).unwrap();
        assert_eq!(scoped.members.len(), 2);
        assert_eq!(scoped.size(), 1024, "overlapping lifespans stack");
    }

    #[test]
    fn same_phase_transients_become_singletons() {
        // Transients are handed to global planning one by one; the
        // HomoSize memory-layers later share their space (same size,
        // disjoint lifespans -> one layer).
        let reqs = vec![req(512, 0, 5, 1, 1), req(512, 5, 9, 1, 1)];
        let plans = build_phase_groups(&reqs);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| p.members.len() == 1));
        let layout = crate::plan::global::assemble(
            &plans,
            &reqs,
            crate::plan::global::GlobalOptions::default(),
        );
        assert_eq!(layout.pool_size, 512, "layering shares the slot");
    }

    #[test]
    fn tmp_is_one_for_perfect_packing() {
        let reqs = vec![req(512, 0, 10, 1, 2)];
        let plans = build_phase_groups(&reqs);
        assert!((plans[0].tmp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fusion_accepts_staircase_fill() {
        // Host: two members freed at different times (staircase).
        // Guest: members starting exactly as host space frees.
        let reqs = vec![
            req(512, 0, 10, 1, 2), // host, lives long
            req(512, 0, 6, 1, 2),  // host, frees early
            req(512, 6, 12, 2, 3), // guest, fits the freed step
        ];
        let plans = build_phase_groups(&reqs);
        assert_eq!(plans.len(), 2);
        let fused = fuse_groups(plans, &reqs);
        assert_eq!(fused.len(), 1, "fusion accepted");
        assert_eq!(fused[0].size(), 1024, "guest reused the freed step");
        // Host member with the later end time sits at the bottom.
        let bottom = fused[0]
            .members
            .iter()
            .find(|&&(_, off)| off == 0)
            .unwrap()
            .0;
        assert_eq!(reqs[bottom].te, 10);
    }

    #[test]
    fn fusion_rejects_when_tmp_drops() {
        // The guest starts while the host is still fully live: fusing just
        // stacks them and stretches the footprint over extra idle time.
        let reqs = vec![
            req(2048, 0, 10, 1, 2),
            req(2048, 2, 10, 2, 2), // starts while host still fully live
        ];
        let plans = build_phase_groups(&reqs);
        assert_eq!(plans.len(), 2);
        let fused = fuse_groups(plans, &reqs);
        assert_eq!(fused.len(), 2, "fusion rejected: no bubble removed");
    }

    #[test]
    fn fusion_chain_converges() {
        // Each group has a long-lived and a short-lived member (bubbles);
        // each adjacent group starts exactly as the previous one's short
        // member frees, so every fusion strictly raises TMP.
        let reqs = vec![
            req(512, 0, 12, 1, 2),
            req(512, 0, 4, 1, 2), // frees early: bubble until tick 12
            req(512, 4, 24, 2, 3),
            req(512, 4, 8, 2, 3),
            req(512, 8, 20, 3, 4),
        ];
        let plans = build_phase_groups(&reqs);
        assert_eq!(plans.len(), 3);
        let fused = fuse_groups(plans, &reqs);
        assert!(
            fused.len() < 3,
            "at least one fusion accepted, got {} groups",
            fused.len()
        );
        let total: u64 = fused.iter().map(|p| p.size()).sum();
        assert!(total < 512 * 5, "fusion reuses freed steps: {total}");
    }

    #[test]
    fn equal_tmp_fusion_is_rejected_but_harmless() {
        // Perfectly packed adjacent groups (TMP = 1.0 each): fusing cannot
        // raise TMP, so the paper's strict acceptance rejects it. The
        // HomoSize layering later shares one layer anyway.
        let reqs = vec![req(512, 0, 4, 1, 2), req(512, 4, 8, 2, 3)];
        let plans = build_phase_groups(&reqs);
        let fused = fuse_groups(plans, &reqs);
        assert_eq!(fused.len(), 2, "no strict TMP gain, no fusion");
    }
}
