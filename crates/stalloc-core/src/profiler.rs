//! The Allocation Profiler (paper §4).
//!
//! Replays one training iteration's event stream and characterizes every
//! memory request as `m = (s, tˢ, tᵉ, pˢ, pᵉ, dyn)`, augmented for dynamic
//! requests with the originating module instances `(lˢ, lᵉ)`. Tensors that
//! live across the whole profiled window (weights, optimizer state) become
//! *persistent* requests pinned to the synthetic boundary phases.
//!
//! In the real system the profiler runs the workload on native `cudaMalloc`
//! (see `allocators::NativeAllocator`) for three iterations; here it reads
//! the same information from a [`Trace`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use trace_gen::{ModuleId, Trace, TraceEvent};

/// Rounding granularity for planned offsets (matches the driver alignment).
pub const PLAN_ALIGN: u64 = 512;

/// A dynamic-layer execution instance: one module within one (normalized)
/// computation phase — the granularity of the paper's HomoLayer groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceKey {
    /// The module issuing the request.
    pub module: ModuleId,
    /// Normalized phase number within the iteration (1-based; 0 = init).
    pub phase: u32,
}

/// One characterized memory request event (the paper's `m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Request size in bytes, rounded to [`PLAN_ALIGN`].
    pub size: u64,
    /// Allocation tick (window-relative; persistent requests use 0).
    pub ts: u64,
    /// Free tick, exclusive (requests outliving the window use the window
    /// end).
    pub te: u64,
    /// Phase of allocation (0 = init/before-window, `1..=P` in-window,
    /// `P+1` = after-window).
    pub ps: u32,
    /// Phase of free.
    pub pe: u32,
    /// Whether the request originates from a dynamic layer.
    pub dynamic: bool,
    /// Allocating instance (dynamic requests only).
    pub ls: Option<InstanceKey>,
    /// Freeing instance (dynamic requests only).
    pub le: Option<InstanceKey>,
}

/// Profiler output: the plan synthesizer's input `M` (paper §4), split into
/// static and dynamic subsets, plus the bookkeeping the runtime matcher
/// needs to map arriving requests back onto profiled ones.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfiledRequests {
    /// Static requests: the first [`Self::init_count`] are persistent
    /// (allocated before the window, in original allocation order); the
    /// rest are the iteration's static requests in arrival order.
    pub statics: Vec<RequestEvent>,
    /// Number of persistent entries at the head of `statics`.
    pub init_count: usize,
    /// Dynamic requests in arrival order.
    pub dynamics: Vec<RequestEvent>,
    /// Number of phases inside the profiled iteration (`P`).
    pub num_phases: u32,
    /// Window length in ticks.
    pub window_len: u64,
    /// Execution window of each dynamic-layer instance: first-enter and
    /// last-exit ticks, window-relative.
    pub instance_windows: Vec<(InstanceKey, (u64, u64))>,
    /// Arrival order of dynamic requests per allocating instance: indices
    /// into `dynamics`.
    pub instance_arrivals: Vec<(InstanceKey, Vec<u32>)>,
}

impl ProfiledRequests {
    /// Static requests belonging to the iteration body (excluding the
    /// persistent prefix), in arrival order — what the runtime matches
    /// against each iteration.
    pub fn iter_statics(&self) -> &[RequestEvent] {
        &self.statics[self.init_count..]
    }

    /// Sum of all static request bytes that are simultaneously live at the
    /// worst moment (a lower bound on the static pool size).
    pub fn peak_static_demand(&self) -> u64 {
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.statics.len() * 2);
        for r in &self.statics {
            events.push((r.ts, r.size as i64));
            events.push((r.te, -(r.size as i64)));
        }
        events.sort_unstable_by_key(|&(t, delta)| (t, delta));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as u64
    }
}

/// Errors produced while profiling a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The requested iteration does not exist in the trace.
    MissingIteration(u32),
    /// The trace is malformed.
    InvalidTrace(String),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::MissingIteration(i) => write!(f, "iteration {i} not in trace"),
            ProfileError::InvalidTrace(s) => write!(f, "invalid trace: {s}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Profiles iteration `iter` of a trace (1-based; use 1 for steady state —
/// the generator emits identical static behaviour every iteration).
pub fn profile_trace(trace: &Trace, iter: u32) -> Result<ProfiledRequests, ProfileError> {
    let (win_start, win_end) = trace
        .iteration_range(iter)
        .ok_or(ProfileError::MissingIteration(iter))?;
    let win_start = win_start as u64;
    let win_end = win_end as u64;
    let window_len = win_end - win_start;

    // Pass 1: phase normalization and module-instance windows.
    let mut phase_norm: HashMap<u32, u32> = HashMap::new(); // PhaseId.0 -> 1..=P
    let mut num_phases = 0u32;
    let mut module_stack: Vec<ModuleId> = Vec::new();
    let mut cur_phase_norm = 0u32;
    let mut instance_windows: HashMap<InstanceKey, (u64, u64)> = HashMap::new();

    // Pass 2 state: live tensor table.
    struct LiveInfo {
        size: u64,
        ts: u64,
        ps: u32,
        dynamic: bool,
        ls: Option<InstanceKey>,
        order: u64,
        in_window: bool,
    }
    let mut live: HashMap<trace_gen::TensorId, LiveInfo> = HashMap::new();
    let mut statics_iter: Vec<RequestEvent> = Vec::new();
    let mut persistents: Vec<(u64, RequestEvent)> = Vec::new();
    let mut dynamics: Vec<RequestEvent> = Vec::new();
    let mut instance_arrivals: HashMap<InstanceKey, Vec<u32>> = HashMap::new();
    let mut order_counter = 0u64;

    let rel = |idx: u64| -> u64 { idx.saturating_sub(win_start).min(window_len) };
    let in_window = |idx: u64| -> bool { idx >= win_start && idx < win_end };

    for (i, ev) in trace.events.iter().enumerate() {
        let i = i as u64;
        match ev {
            TraceEvent::PhaseBegin(p) => {
                if in_window(i) {
                    num_phases += 1;
                    phase_norm.insert(p.0, num_phases);
                    cur_phase_norm = num_phases;
                } else if i < win_start {
                    cur_phase_norm = 0;
                } else {
                    cur_phase_norm = num_phases + 1;
                }
            }
            TraceEvent::ModuleEnter(m) => {
                module_stack.push(*m);
                if in_window(i) {
                    let key = InstanceKey {
                        module: *m,
                        phase: cur_phase_norm,
                    };
                    let e = instance_windows.entry(key).or_insert((rel(i), rel(i)));
                    e.0 = e.0.min(rel(i));
                }
            }
            TraceEvent::ModuleExit(m) => {
                if module_stack.last() == Some(m) {
                    module_stack.pop();
                } else {
                    return Err(ProfileError::InvalidTrace(format!(
                        "unbalanced module exit at event {i}"
                    )));
                }
                if in_window(i) {
                    let key = InstanceKey {
                        module: *m,
                        phase: cur_phase_norm,
                    };
                    let e = instance_windows.entry(key).or_insert((rel(i), rel(i)));
                    e.1 = e.1.max(rel(i));
                }
            }
            TraceEvent::Alloc {
                id, size, dynamic, ..
            } => {
                let ls = module_stack.last().map(|&m| InstanceKey {
                    module: m,
                    phase: cur_phase_norm,
                });
                live.insert(
                    *id,
                    LiveInfo {
                        size: round_plan(*size),
                        ts: i,
                        ps: cur_phase_norm,
                        dynamic: *dynamic,
                        ls,
                        order: order_counter,
                        in_window: in_window(i),
                    },
                );
                order_counter += 1;
            }
            TraceEvent::Free { id } => {
                let Some(info) = live.remove(id) else {
                    return Err(ProfileError::InvalidTrace(format!(
                        "free of unknown tensor at event {i}"
                    )));
                };
                // Only requests alive at some point inside the window
                // matter for the plan.
                let alive_in_window = info.ts < win_end && i > win_start;
                if !alive_in_window {
                    continue;
                }
                if !info.in_window && i >= win_end {
                    // Spans the whole window: persistent.
                    persistents.push((
                        info.order,
                        RequestEvent {
                            size: info.size,
                            ts: 0,
                            te: window_len,
                            ps: 0,
                            pe: num_phases + 1,
                            dynamic: false,
                            ls: None,
                            le: None,
                        },
                    ));
                    continue;
                }
                if !info.in_window {
                    // Allocated before the window, freed inside: treat the
                    // allocation as happening at the window start.
                    record_request(
                        &trace.events,
                        &mut statics_iter,
                        &mut dynamics,
                        &mut instance_arrivals,
                        RequestEvent {
                            size: info.size,
                            ts: 0,
                            te: rel(i),
                            ps: 0,
                            pe: cur_phase_norm,
                            dynamic: info.dynamic,
                            ls: info.ls,
                            le: current_instance(&module_stack, cur_phase_norm),
                        },
                    );
                    continue;
                }
                let (te, pe, le) = if i < win_end {
                    (
                        rel(i),
                        cur_phase_norm,
                        current_instance(&module_stack, cur_phase_norm),
                    )
                } else {
                    (window_len, num_phases + 1, None)
                };
                record_request(
                    &trace.events,
                    &mut statics_iter,
                    &mut dynamics,
                    &mut instance_arrivals,
                    RequestEvent {
                        size: info.size,
                        ts: rel(info.ts),
                        te,
                        ps: info.ps,
                        pe,
                        dynamic: info.dynamic,
                        ls: info.ls,
                        le,
                    },
                );
            }
            _ => {}
        }
    }

    // Tensors never freed: persistent if they predate the window, tail
    // otherwise.
    for (_, info) in live {
        if info.ts >= win_end {
            continue;
        }
        if !info.in_window {
            persistents.push((
                info.order,
                RequestEvent {
                    size: info.size,
                    ts: 0,
                    te: window_len,
                    ps: 0,
                    pe: num_phases + 1,
                    dynamic: false,
                    ls: None,
                    le: None,
                },
            ));
        } else {
            record_request(
                &trace.events,
                &mut statics_iter,
                &mut dynamics,
                &mut instance_arrivals,
                RequestEvent {
                    size: info.size,
                    ts: rel(info.ts),
                    te: window_len,
                    ps: info.ps,
                    pe: num_phases + 1,
                    dynamic: info.dynamic,
                    ls: info.ls,
                    le: None,
                },
            );
        }
    }

    persistents.sort_unstable_by_key(|&(order, _)| order);
    // The iteration statics must be in arrival (ts) order for the matcher.
    statics_iter.sort_unstable_by_key(|r| r.ts);
    dynamics.sort_unstable_by_key(|r| r.ts);
    // Rebuild arrival lists after the sort.
    let mut arrivals: HashMap<InstanceKey, Vec<u32>> = HashMap::new();
    for (idx, d) in dynamics.iter().enumerate() {
        if let Some(ls) = d.ls {
            arrivals.entry(ls).or_default().push(idx as u32);
        }
    }

    let init_count = persistents.len();
    let mut statics: Vec<RequestEvent> = persistents.into_iter().map(|(_, r)| r).collect();
    statics.extend(statics_iter);

    let mut instance_windows: Vec<(InstanceKey, (u64, u64))> =
        instance_windows.into_iter().collect();
    instance_windows.sort_unstable_by_key(|&(k, _)| k);
    let mut instance_arrivals: Vec<(InstanceKey, Vec<u32>)> = arrivals.into_iter().collect();
    instance_arrivals.sort_unstable_by_key(|&(k, _)| k);

    Ok(ProfiledRequests {
        statics,
        init_count,
        dynamics,
        num_phases,
        window_len,
        instance_windows,
        instance_arrivals,
    })
}

fn current_instance(stack: &[ModuleId], phase: u32) -> Option<InstanceKey> {
    stack.last().map(|&m| InstanceKey { module: m, phase })
}

fn record_request(
    _events: &[TraceEvent],
    statics: &mut Vec<RequestEvent>,
    dynamics: &mut Vec<RequestEvent>,
    arrivals: &mut HashMap<InstanceKey, Vec<u32>>,
    r: RequestEvent,
) {
    if r.dynamic {
        let idx = dynamics.len() as u32;
        dynamics.push(r);
        if let Some(ls) = r.ls {
            arrivals.entry(ls).or_default().push(idx);
        }
    } else {
        statics.push(r);
    }
}

/// Rounds a request size to the planning alignment.
pub fn round_plan(size: u64) -> u64 {
    PLAN_ALIGN * size.max(1).div_ceil(PLAN_ALIGN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn trace() -> trace_gen::Trace {
        TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(4)
        .with_iterations(3)
        .build_trace()
        .unwrap()
    }

    #[test]
    fn round_plan_aligns_to_512() {
        assert_eq!(round_plan(0), 512);
        assert_eq!(round_plan(1), 512);
        assert_eq!(round_plan(512), 512);
        assert_eq!(round_plan(513), 1024);
    }

    #[test]
    fn persistent_requests_span_the_window() {
        let t = trace();
        let p = profile_trace(&t, 2).unwrap();
        assert!(p.init_count > 0);
        for r in &p.statics[..p.init_count] {
            assert_eq!(r.ts, 0);
            assert_eq!(r.te, p.window_len);
            assert_eq!(r.ps, 0);
            assert_eq!(r.pe, p.num_phases + 1);
        }
    }

    #[test]
    fn iteration_requests_have_inwindow_lifespans() {
        let t = trace();
        let p = profile_trace(&t, 2).unwrap();
        for r in p.iter_statics() {
            assert!(r.ts < r.te.max(r.ts + 1));
            assert!(r.te <= p.window_len);
            assert!(r.ps >= 1 && r.ps <= p.num_phases);
        }
    }

    #[test]
    fn phase_count_matches_schedule() {
        let t = trace();
        let p = profile_trace(&t, 1).unwrap();
        // 4 microbatches x (F + B) + optimizer step.
        assert_eq!(p.num_phases, 9);
    }

    #[test]
    fn profiles_of_different_iterations_agree_statically() {
        let t = trace();
        let p1 = profile_trace(&t, 1).unwrap();
        let p3 = profile_trace(&t, 3).unwrap();
        let sizes = |p: &ProfiledRequests| -> Vec<(u64, u32, u32)> {
            p.iter_statics()
                .iter()
                .map(|r| (r.size, r.ps, r.pe))
                .collect()
        };
        assert_eq!(sizes(&p1), sizes(&p3));
        assert_eq!(p1.num_phases, p3.num_phases);
    }

    #[test]
    fn peak_demand_is_between_bounds() {
        let t = trace();
        let p = profile_trace(&t, 1).unwrap();
        let peak = p.peak_static_demand();
        let persistent: u64 = p.statics[..p.init_count].iter().map(|r| r.size).sum();
        let total: u64 = p.statics.iter().map(|r| r.size).sum();
        assert!(peak >= persistent, "peak includes persistents");
        assert!(peak <= total);
    }

    #[test]
    fn moe_dynamics_have_instances() {
        let t = TrainJob::new(
            ModelSpec::qwen15_moe_a27b(),
            ParallelConfig::new(1, 1, 8).with_ep(4),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(2)
        .with_iterations(2)
        .build_trace()
        .unwrap();
        let p = profile_trace(&t, 1).unwrap();
        assert!(!p.dynamics.is_empty());
        for d in &p.dynamics {
            assert!(d.dynamic);
            assert!(d.ls.is_some(), "alloc instance recorded");
        }
        // Arrival lists cover every dynamic request exactly once.
        let covered: usize = p.instance_arrivals.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(covered, p.dynamics.len());
    }

    #[test]
    fn instance_windows_are_ordered() {
        let t = trace();
        let p = profile_trace(&t, 1).unwrap();
        for (_, (start, end)) in &p.instance_windows {
            assert!(start <= end);
            assert!(*end <= p.window_len);
        }
    }
}
