//! The Runtime Allocator (paper §6): serves requests from the ahead-of-time
//! plan, with online dynamic allocation inside the Dynamic Reusable Space
//! and a PyTorch-style caching allocator as the fallback for mismatches.
//!
//! * **Static allocator** (§6.1): reserves one static memory pool of the
//!   planned size before training and hands out pre-planned addresses in
//!   O(1) by sequence matching.
//! * **Dynamic allocator** (§6.2): tracks the pool's free intervals `A_a`;
//!   a dynamic request in HomoLayer group `g` is placed best-fit inside
//!   `A_c = A_a ∩ A_i(g)` (Eq. 7).
//! * **Request matcher**: routes requests using the same hook information
//!   (phase, module, dynamicity) the real implementation obtains from
//!   PyTorch; size mismatches fall back to the caching allocator, keeping
//!   the system robust to plan divergence.

use std::collections::HashMap;

use allocators::{
    AllocError, AllocRequest, Allocation, AllocatorStats, CachingAllocator, CachingConfig,
    GpuAllocator,
};
use gpu_sim::{Device, DevicePtr};
use trace_gen::{ModuleId, PhaseId, PhaseInfo, TensorId};

use crate::geometry::IntervalSet;
use crate::plan::Plan;
use crate::profiler::{round_plan, InstanceKey};

/// How far ahead of the sequence cursor the matcher searches for a
/// size-equal planned request before falling back (tolerates small
/// reorderings between profile and run).
const MATCH_LOOKAHEAD: usize = 64;

/// Runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Let dynamic requests reuse idle static-pool space (§6.2). Disabling
    /// this reproduces the paper's "STAlloc w/o reuse" ablation (Fig. 13).
    pub dynamic_reuse: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            dynamic_reuse: true,
        }
    }
}

/// Event counters of the runtime allocator (Table 3 inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Requests served at their planned address.
    pub static_planned: u64,
    /// Static requests that missed the plan and fell back.
    pub static_fallback: u64,
    /// Dynamic requests placed inside the Dynamic Reusable Space.
    pub dynamic_reused: u64,
    /// Dynamic requests that fell back to the caching allocator.
    pub dynamic_fallback: u64,
    /// Sequence mismatches tolerated via lookahead.
    pub lookahead_matches: u64,
    /// Planned placements refused because the range was still occupied
    /// (plan divergence caught before memory stomping).
    pub stomps_avoided: u64,
    /// Bytes served through the fallback allocator (peak concurrent).
    pub fallback_bytes_peak: u64,
}

#[derive(Debug, Clone, Copy)]
enum Placement {
    /// Served from the static pool at `(offset, size)`.
    Pool { offset: u64, size: u64 },
    /// Served by the fallback caching allocator.
    Fallback,
}

/// The STAlloc runtime allocator.
#[derive(Debug)]
pub struct StallocAllocator {
    plan: Plan,
    config: RuntimeConfig,
    fallback: CachingAllocator,
    /// Device pointer of the reserved pool (set on first use).
    pool: Option<DevicePtr>,
    /// Free intervals of the pool (`A_a`).
    free: IntervalSet,
    /// Per-instance dynamic group lookup.
    instance_seq: HashMap<InstanceKey, Vec<u32>>,
    /// Iteration-sequence matcher state.
    iter_cursor: usize,
    iter_used: Vec<bool>,
    init_cursor: usize,
    in_init: bool,
    /// Normalized phase counter within the current iteration.
    phase_norm: u32,
    module_stack: Vec<ModuleId>,
    dyn_cursors: HashMap<InstanceKey, usize>,
    live: HashMap<TensorId, Placement>,
    fallback_live_bytes: u64,
    counters: RuntimeCounters,
    stats: AllocatorStats,
}

impl StallocAllocator {
    /// Creates a runtime allocator from a plan.
    pub fn new(plan: Plan, config: RuntimeConfig) -> Self {
        let instance_seq = plan.instance_seq_map();
        let iter_used = vec![false; plan.iter_allocs.len()];
        let free = IntervalSet::full(plan.pool_size);
        Self {
            plan,
            config,
            fallback: CachingAllocator::new(CachingConfig::torch_2_3()),
            pool: None,
            free,
            instance_seq,
            iter_cursor: 0,
            iter_used,
            init_cursor: 0,
            in_init: true,
            phase_norm: 0,
            module_stack: Vec::new(),
            dyn_cursors: HashMap::new(),
            live: HashMap::new(),
            fallback_live_bytes: 0,
            counters: RuntimeCounters::default(),
            stats: AllocatorStats::default(),
        }
    }

    /// Runtime event counters.
    pub fn counters(&self) -> RuntimeCounters {
        self.counters
    }

    /// The plan in effect.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Reserves the static pool if not yet done.
    fn ensure_pool(&mut self, dev: &mut Device) -> Result<(), AllocError> {
        if self.pool.is_none() && self.plan.pool_size > 0 {
            let ptr = dev
                .cuda_malloc(self.plan.pool_size)
                .map_err(|e| AllocError::from_device(e, self.plan.pool_size, 0))?;
            self.pool = Some(ptr);
            self.refresh_reserved();
        }
        Ok(())
    }

    fn pool_base(&self) -> u64 {
        self.pool.map(|p| p.addr()).unwrap_or(0)
    }

    fn refresh_reserved(&mut self) {
        let pool = if self.pool.is_some() {
            self.plan.pool_size
        } else {
            0
        };
        self.stats
            .set_reserved(pool + self.fallback.stats().reserved);
    }

    /// Claims `[offset, offset+size)` in the pool for `tensor`.
    fn claim(&mut self, tensor: TensorId, offset: u64, size: u64) -> Allocation {
        self.free.remove(offset, size);
        self.live.insert(tensor, Placement::Pool { offset, size });
        self.stats.on_alloc(size);
        Allocation {
            addr: self.pool_base() + offset,
            granted: size,
        }
    }

    fn fallback_alloc(
        &mut self,
        dev: &mut Device,
        req: &AllocRequest,
    ) -> Result<Allocation, AllocError> {
        let alloc = self.fallback.malloc(dev, req)?;
        self.live.insert(req.tensor, Placement::Fallback);
        self.fallback_live_bytes += alloc.granted;
        self.counters.fallback_bytes_peak = self
            .counters
            .fallback_bytes_peak
            .max(self.fallback_live_bytes);
        self.stats.on_alloc(alloc.granted);
        self.refresh_reserved();
        Ok(alloc)
    }

    /// Static path: sequence-match against the plan.
    fn malloc_static(
        &mut self,
        dev: &mut Device,
        req: &AllocRequest,
    ) -> Result<Allocation, AllocError> {
        let size = round_plan(req.size);
        let (allocs, cursor_start): (&[crate::plan::PlannedAlloc], usize) = if self.in_init {
            (&self.plan.init_allocs, self.init_cursor)
        } else {
            (&self.plan.iter_allocs, self.iter_cursor)
        };

        // Find the first unused planned slot with matching size within the
        // lookahead window.
        let limit = (cursor_start + MATCH_LOOKAHEAD).min(allocs.len());
        let found = (cursor_start..limit).find(|&j| {
            let used = !self.in_init && self.iter_used[j];
            !used && allocs[j].size == size
        });

        let Some(j) = found else {
            self.counters.static_fallback += 1;
            return self.fallback_alloc(dev, req);
        };
        let planned = allocs[j];
        if !self.free.contains(planned.offset, planned.size) {
            // The planned range is still occupied (plan divergence, e.g. a
            // dynamic tensor overstaying its profiled window). The real
            // system would stomp; we route to the fallback and count it.
            self.counters.stomps_avoided += 1;
            self.counters.static_fallback += 1;
            return self.fallback_alloc(dev, req);
        }

        if self.in_init {
            // Init sequence is strictly ordered; advance past the match.
            if j != self.init_cursor {
                self.counters.lookahead_matches += 1;
            }
            self.init_cursor = j + 1;
        } else {
            if j != self.iter_cursor {
                self.counters.lookahead_matches += 1;
            }
            self.iter_used[j] = true;
            // Advance the cursor over the used prefix.
            let mut c = self.iter_cursor;
            while c < self.iter_used.len() && self.iter_used[c] {
                c += 1;
            }
            self.iter_cursor = c;
        }
        self.counters.static_planned += 1;
        dev.advance_clock_ns(dev.latency().cache_hit_ns);
        Ok(self.claim(req.tensor, planned.offset, planned.size))
    }

    /// Dynamic path: best-fit within `A_a ∩ A_i` (§6.2).
    fn malloc_dynamic(
        &mut self,
        dev: &mut Device,
        req: &AllocRequest,
    ) -> Result<Allocation, AllocError> {
        if !self.config.dynamic_reuse {
            self.counters.dynamic_fallback += 1;
            return self.fallback_alloc(dev, req);
        }
        let size = round_plan(req.size);
        let instance = self.current_instance();
        let group = instance.and_then(|key| {
            let cursor = self.dyn_cursors.entry(key).or_insert(0);
            let seq = self.instance_seq.get(&key)?;
            let g = seq.get(*cursor).copied();
            *cursor += 1;
            g.filter(|&g| g != u32::MAX)
        });
        let Some(g) = group else {
            self.counters.dynamic_fallback += 1;
            return self.fallback_alloc(dev, req);
        };
        let intervals = &self.plan.dynamic.groups[g as usize].intervals;
        match self.free.best_fit_within(intervals, size) {
            Some(offset) => {
                self.counters.dynamic_reused += 1;
                dev.advance_clock_ns(dev.latency().cache_hit_ns);
                Ok(self.claim(req.tensor, offset, size))
            }
            None => {
                self.counters.dynamic_fallback += 1;
                self.fallback_alloc(dev, req)
            }
        }
    }

    fn current_instance(&self) -> Option<InstanceKey> {
        self.module_stack.last().map(|&m| InstanceKey {
            module: m,
            phase: self.phase_norm,
        })
    }
}

impl GpuAllocator for StallocAllocator {
    fn name(&self) -> String {
        if self.config.dynamic_reuse {
            "STAlloc".into()
        } else {
            "STAlloc w/o reuse".into()
        }
    }

    fn malloc(&mut self, dev: &mut Device, req: &AllocRequest) -> Result<Allocation, AllocError> {
        self.ensure_pool(dev)?;
        if req.dynamic {
            self.malloc_dynamic(dev, req)
        } else {
            self.malloc_static(dev, req)
        }
    }

    fn free(&mut self, dev: &mut Device, tensor: TensorId) -> Result<u64, AllocError> {
        match self.live.remove(&tensor) {
            Some(Placement::Pool { offset, size }) => {
                self.free.insert(offset, size);
                self.stats.on_free(size);
                dev.advance_clock_ns(dev.latency().cache_hit_ns);
                Ok(size)
            }
            Some(Placement::Fallback) => {
                let granted = self.fallback.free(dev, tensor)?;
                self.fallback_live_bytes -= granted;
                self.stats.on_free(granted);
                Ok(granted)
            }
            None => Err(AllocError::UnknownTensor(tensor)),
        }
    }

    fn stats(&self) -> AllocatorStats {
        self.stats
    }

    fn iteration_begin(&mut self, _dev: &mut Device, _iter: u32) {
        self.in_init = false;
        self.phase_norm = 0;
        self.iter_cursor = 0;
        self.iter_used.iter_mut().for_each(|u| *u = false);
        self.dyn_cursors.clear();
    }

    fn phase_begin(&mut self, _dev: &mut Device, _phase: PhaseId, _info: &PhaseInfo) {
        if !self.in_init {
            self.phase_norm += 1;
        }
    }

    fn module_enter(&mut self, _dev: &mut Device, module: ModuleId) {
        self.module_stack.push(module);
    }

    fn module_exit(&mut self, _dev: &mut Device, module: ModuleId) {
        if self.module_stack.last() == Some(&module) {
            self.module_stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DynamicPlan, PlanStats};
    use gpu_sim::DeviceSpec;

    fn dev() -> Device {
        Device::with_latency(DeviceSpec::test_device(1 << 30), LatencyModel::zero())
    }

    use gpu_sim::LatencyModel;

    /// A tiny hand-built plan: two iteration statics of 1 KiB and 2 KiB.
    fn tiny_plan() -> Plan {
        Plan {
            pool_size: 8192,
            init_allocs: vec![crate::plan::PlannedAlloc {
                size: 512,
                offset: 0,
                ts: 0,
                te: 100,
            }],
            iter_allocs: vec![
                crate::plan::PlannedAlloc {
                    size: 1024,
                    offset: 512,
                    ts: 1,
                    te: 50,
                },
                crate::plan::PlannedAlloc {
                    size: 2048,
                    offset: 2048,
                    ts: 2,
                    te: 60,
                },
            ],
            dynamic: DynamicPlan::default(),
            stats: PlanStats::default(),
        }
    }

    fn req(id: u64, size: u64) -> AllocRequest {
        AllocRequest {
            tensor: TensorId(id),
            size,
            dynamic: false,
        }
    }

    #[test]
    fn static_requests_get_planned_addresses() {
        let mut d = dev();
        let mut a = StallocAllocator::new(tiny_plan(), RuntimeConfig::default());
        // Init: the persistent tensor.
        let w = a.malloc(&mut d, &req(0, 512)).unwrap();
        a.iteration_begin(&mut d, 1);
        let x = a.malloc(&mut d, &req(1, 1024)).unwrap();
        let y = a.malloc(&mut d, &req(2, 2048)).unwrap();
        // Offsets relative to the pool base match the plan.
        assert_eq!(x.addr - w.addr, 512);
        assert_eq!(y.addr - w.addr, 2048);
        assert_eq!(a.counters().static_planned, 3);
        assert_eq!(a.counters().static_fallback, 0);
    }

    #[test]
    fn lookahead_tolerates_reordering() {
        let mut d = dev();
        let mut a = StallocAllocator::new(tiny_plan(), RuntimeConfig::default());
        a.malloc(&mut d, &req(0, 512)).unwrap();
        a.iteration_begin(&mut d, 1);
        // The 2 KiB request arrives before the 1 KiB one.
        let y = a.malloc(&mut d, &req(2, 2048)).unwrap();
        let x = a.malloc(&mut d, &req(1, 1024)).unwrap();
        assert_eq!(y.addr - x.addr, 1536);
        let c = a.counters();
        assert_eq!(c.static_planned, 3);
        assert_eq!(c.lookahead_matches, 1);
        assert_eq!(c.static_fallback, 0);
    }

    #[test]
    fn unplanned_size_falls_back() {
        let mut d = dev();
        let mut a = StallocAllocator::new(tiny_plan(), RuntimeConfig::default());
        a.malloc(&mut d, &req(0, 512)).unwrap();
        a.iteration_begin(&mut d, 1);
        // 3 KiB matches nothing in the plan.
        a.malloc(&mut d, &req(5, 3072)).unwrap();
        let c = a.counters();
        assert_eq!(c.static_fallback, 1);
        // The planned requests still match afterwards.
        a.malloc(&mut d, &req(1, 1024)).unwrap();
        assert_eq!(a.counters().static_planned, 2, "init + one iter request");
        // Reserved includes pool + a fallback segment.
        assert!(a.stats().reserved > 8192);
    }

    #[test]
    fn occupied_planned_range_is_not_stomped() {
        let mut d = dev();
        let mut a = StallocAllocator::new(tiny_plan(), RuntimeConfig::default());
        a.malloc(&mut d, &req(0, 512)).unwrap();
        a.iteration_begin(&mut d, 1);
        a.malloc(&mut d, &req(1, 1024)).unwrap();
        // Iteration restarts while tensor 1 is still live (divergence).
        a.iteration_begin(&mut d, 2);
        a.malloc(&mut d, &req(10, 1024)).unwrap();
        let c = a.counters();
        assert_eq!(c.stomps_avoided, 1, "the live range was protected");
        assert_eq!(c.static_fallback, 1);
        // Free both; no accounting corruption.
        a.free(&mut d, TensorId(1)).unwrap();
        a.free(&mut d, TensorId(10)).unwrap();
        assert_eq!(a.stats().allocated, 512);
    }

    #[test]
    fn iteration_reset_reuses_the_pool() {
        let mut d = dev();
        let mut a = StallocAllocator::new(tiny_plan(), RuntimeConfig::default());
        a.malloc(&mut d, &req(0, 512)).unwrap();
        for iter in 1..=5u32 {
            a.iteration_begin(&mut d, iter);
            let base = 100 * iter as u64;
            a.malloc(&mut d, &req(base, 1024)).unwrap();
            a.malloc(&mut d, &req(base + 1, 2048)).unwrap();
            a.free(&mut d, TensorId(base)).unwrap();
            a.free(&mut d, TensorId(base + 1)).unwrap();
        }
        let c = a.counters();
        assert_eq!(c.static_planned, 11, "1 init + 2 per iteration");
        assert_eq!(c.static_fallback, 0);
        assert_eq!(a.stats().reserved, 8192, "pool only, no fallback growth");
    }

    #[test]
    fn dynamic_without_reuse_goes_to_fallback() {
        let mut d = dev();
        let mut a = StallocAllocator::new(
            tiny_plan(),
            RuntimeConfig {
                dynamic_reuse: false,
            },
        );
        a.iteration_begin(&mut d, 1);
        a.malloc(
            &mut d,
            &AllocRequest {
                tensor: TensorId(7),
                size: 4096,
                dynamic: true,
            },
        )
        .unwrap();
        let c = a.counters();
        assert_eq!(c.dynamic_fallback, 1);
        assert_eq!(c.dynamic_reused, 0);
    }
}
