//! Plan introspection: replay a finished [`Plan`] into a fragmentation /
//! occupancy timeline.
//!
//! A plan is a set of placed rectangles in the time × address plane; this
//! module re-derives the quality picture the packer saw while placing
//! them — per-tick live bytes, the free-gap distribution, and *stranded*
//! memory: free bytes trapped below the occupied high-water mark, which
//! no same-tick allocation could use without moving something. Stranded
//! byte-ticks are attributed to the allocation sitting immediately above
//! each gap (the placement that "roofed over" the hole), so `stalloc
//! explain` can name the top offending tensors.
//!
//! The byte sweep visits **every** allocation event, so
//! [`PlanTimeline::peak_live_bytes`] equals
//! [`PlanStats::peak_static_demand`](crate::PlanStats) exactly — the
//! property tests assert this across the model zoo. Gap walks are more
//! expensive (a sort per tick), so they run at up to [`MAX_SAMPLES`]
//! evenly-strided distinct ticks.

use serde::{Deserialize, Serialize};
use stalloc_obs::{HistogramSnapshot, LatencyHistogram};

use crate::plan::{Plan, PlannedAlloc};

/// Upper bound on gap-walked sample ticks (the byte sweep is exact
/// regardless).
pub const MAX_SAMPLES: usize = 512;

/// One sampled instant of the plan's life.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// The tick this sample describes (state *after* all events at it).
    pub tick: u64,
    /// Bytes of live static allocations.
    pub live_bytes: u64,
    /// Pool bytes not covered by a live allocation.
    pub free_bytes: u64,
    /// Interior free gaps below the occupied high-water mark.
    pub gap_count: u64,
    /// Largest free gap (interior or above the high-water mark), bytes.
    pub largest_gap: u64,
    /// Free bytes trapped below the occupied high-water mark.
    pub stranded_bytes: u64,
}

/// One allocation's share of the blame for stranded memory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrandedTensor {
    /// `"init"` (persistent prefix) or `"iter"` (iteration body).
    pub kind: String,
    /// Index within its alloc table.
    pub index: u64,
    /// Allocation size, bytes.
    pub size: u64,
    /// Planned offset.
    pub offset: u64,
    /// Lifetime start tick.
    pub ts: u64,
    /// Lifetime end tick.
    pub te: u64,
    /// Gap bytes × ticks charged to this allocation (it sat directly
    /// above the gap while the gap was open).
    pub stranded_byte_ticks: u64,
}

/// The replayed quality picture of one plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanTimeline {
    /// The plan's pool size, bytes.
    pub pool_size: u64,
    /// Maximum simultaneously-live static bytes — equals the plan's
    /// `stats.peak_static_demand` exactly.
    pub peak_live_bytes: u64,
    /// First tick at which the peak is reached.
    pub peak_tick: u64,
    /// `pool_size − peak_live_bytes`: bytes the pool carries beyond the
    /// information-theoretic lower bound.
    pub fragmentation: u64,
    /// Sampled occupancy/gap states, ascending by tick (≤ [`MAX_SAMPLES`]).
    pub samples: Vec<TimelineSample>,
    /// Log2 histogram of every interior gap observed at sampled ticks.
    pub gap_sizes: HistogramSnapshot,
    /// Top-K allocations by stranded byte-ticks, descending.
    pub stranded: Vec<StrandedTensor>,
}

/// The allocs of a plan with their table-of-origin tags, in
/// (init, iter) table order.
fn tagged_allocs(plan: &Plan) -> Vec<(&'static str, u64, &PlannedAlloc)> {
    plan.init_allocs
        .iter()
        .enumerate()
        .map(|(i, a)| ("init", i as u64, a))
        .chain(
            plan.iter_allocs
                .iter()
                .enumerate()
                .map(|(i, a)| ("iter", i as u64, a)),
        )
        .collect()
}

/// Replays `plan` into its timeline, keeping the `top_k` worst stranded
/// allocations.
///
/// Liveness follows the profiler's sweep convention (`ts ≤ t < te`, raw
/// end ticks): the peak found here is byte-identical to
/// `peak_static_demand`. Degenerate allocations (`te ≤ ts`) are never
/// live at any tick under that convention and contribute nothing.
pub fn analyze_plan(plan: &Plan, top_k: usize) -> PlanTimeline {
    let allocs = tagged_allocs(plan);

    // --- Exact byte sweep (the profiler's peak algorithm, verbatim). ---
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(allocs.len() * 2);
    for (_, _, a) in &allocs {
        events.push((a.ts, a.size as i64));
        events.push((a.te, -(a.size as i64)));
    }
    events.sort_unstable_by_key(|&(t, delta)| (t, delta));
    let mut cur = 0i64;
    let mut peak = 0i64;
    let mut peak_tick = 0u64;
    // Live bytes after all events at each distinct tick. Frees sort
    // before allocations within a tick, so the running value only dips
    // mid-tick: the per-tick end state preserves the exact maximum.
    let mut tick_live: Vec<(u64, u64)> = Vec::new();
    for (t, d) in events {
        cur += d;
        if cur > peak {
            peak = cur;
            peak_tick = t;
        }
        match tick_live.last_mut() {
            Some((lt, lv)) if *lt == t => *lv = cur.max(0) as u64,
            _ => tick_live.push((t, cur.max(0) as u64)),
        }
    }
    let peak = peak.max(0) as u64;

    // --- Sampled gap walks. ---
    let stride = tick_live.len().div_ceil(MAX_SAMPLES).max(1);
    let sampled: Vec<(u64, u64)> = tick_live
        .iter()
        .copied()
        .enumerate()
        .filter(|&(i, _)| i % stride == 0 || i == tick_live.len() - 1)
        .map(|(_, tl)| tl)
        .collect();

    let gap_hist = LatencyHistogram::new();
    let mut samples = Vec::with_capacity(sampled.len());
    let mut blame: Vec<u64> = vec![0; allocs.len()];
    for (si, &(tick, live_bytes)) in sampled.iter().enumerate() {
        // Ticks are open until the next sample; the final sample covers
        // one tick (the plan's state no longer changes after it).
        let dt = sampled
            .get(si + 1)
            .map(|&(nt, _)| nt - tick)
            .unwrap_or(1)
            .max(1);
        // Live address spans at this tick, ascending, tagged with the
        // alloc they belong to.
        let mut spans: Vec<(u64, u64, usize)> = allocs
            .iter()
            .enumerate()
            .filter(|(_, (_, _, a))| a.size > 0 && a.ts <= tick && tick < a.te)
            .map(|(ai, (_, _, a))| (a.offset, a.offset + a.size, ai))
            .collect();
        spans.sort_unstable();

        let mut gap_count = 0u64;
        let mut largest_gap = 0u64;
        let mut stranded = 0u64;
        let mut cursor = 0u64;
        for &(s, e, ai) in &spans {
            if s > cursor {
                let gap = s - cursor;
                gap_hist.record(gap);
                gap_count += 1;
                largest_gap = largest_gap.max(gap);
                stranded += gap;
                blame[ai] = blame[ai].saturating_add(gap.saturating_mul(dt));
            }
            cursor = cursor.max(e);
        }
        // The space above the high-water mark is free but not stranded.
        if plan.pool_size > cursor {
            largest_gap = largest_gap.max(plan.pool_size - cursor);
        }
        samples.push(TimelineSample {
            tick,
            live_bytes,
            free_bytes: plan.pool_size.saturating_sub(live_bytes),
            gap_count,
            largest_gap,
            stranded_bytes: stranded,
        });
    }

    let mut worst: Vec<usize> = (0..allocs.len()).filter(|&i| blame[i] > 0).collect();
    worst.sort_unstable_by_key(|&i| (u64::MAX - blame[i], i));
    worst.truncate(top_k);
    let stranded = worst
        .into_iter()
        .map(|i| {
            let (kind, index, a) = allocs[i];
            StrandedTensor {
                kind: kind.to_string(),
                index,
                size: a.size,
                offset: a.offset,
                ts: a.ts,
                te: a.te,
                stranded_byte_ticks: blame[i],
            }
        })
        .collect();

    PlanTimeline {
        pool_size: plan.pool_size,
        peak_live_bytes: peak,
        peak_tick,
        fragmentation: plan.pool_size.saturating_sub(peak),
        samples,
        gap_sizes: gap_hist.snapshot(),
        stranded,
    }
}

/// Lifetime classes for the SVG memory map's coloring.
fn lifetime_class(kind: &str, a: &PlannedAlloc, horizon: u64) -> &'static str {
    if kind == "init" {
        "#4e79a7" // persistent: blue
    } else if a.te.saturating_sub(a.ts) * 2 >= horizon {
        "#59a14f" // long-lived: green
    } else {
        "#f28e2b" // short-lived: orange
    }
}

/// Renders the plan as an SVG memory map: x = time (ticks), y = pool
/// offset (0 at the bottom), one rectangle per planned allocation,
/// colored by lifetime class (blue = persistent, green = long-lived,
/// orange = short-lived). A dashed line marks the peak static demand;
/// the top edge is the pool size. Self-contained — no scripts, no
/// external references.
pub fn render_svg(plan: &Plan, timeline: &PlanTimeline) -> String {
    use std::fmt::Write;
    const W: f64 = 960.0;
    const H: f64 = 540.0;
    const ML: f64 = 60.0; // left margin (offset axis labels)
    const MT: f64 = 28.0; // top margin (title)
    const MB: f64 = 24.0; // bottom margin (tick axis)
    let plot_w = W - ML - 8.0;
    let plot_h = H - MT - MB;

    let allocs = tagged_allocs(plan);
    let horizon = allocs
        .iter()
        .map(|(_, _, a)| a.te.max(a.ts + 1))
        .max()
        .unwrap_or(1)
        .max(1);
    let pool = plan.pool_size.max(1);
    let x = |t: u64| ML + t.min(horizon) as f64 / horizon as f64 * plot_w;
    let y = |off: u64| MT + plot_h - (off.min(pool) as f64 / pool as f64 * plot_h);

    let mut svg = String::with_capacity(4096 + allocs.len() * 96);
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"##
    );
    let _ = write!(
        svg,
        r##"<rect x="0" y="0" width="{W}" height="{H}" fill="#ffffff"/>"##
    );
    let _ = write!(
        svg,
        r##"<text x="{ML}" y="18" font-family="monospace" font-size="13">{} · pool {} B · peak {} B · fragmentation {} B</text>"##,
        plan.stats.strategy.name(),
        plan.pool_size,
        timeline.peak_live_bytes,
        timeline.fragmentation,
    );
    // Plot frame.
    let _ = write!(
        svg,
        r##"<rect x="{ML}" y="{MT}" width="{plot_w}" height="{plot_h}" fill="#f4f4f4" stroke="#888"/>"##
    );
    for (kind, _, a) in &allocs {
        if a.size == 0 {
            continue;
        }
        let t1 = a.te.max(a.ts + 1);
        let rx = x(a.ts);
        let rw = (x(t1) - rx).max(0.5);
        let ry = y(a.offset + a.size);
        let rh = (y(a.offset) - ry).max(0.5);
        let _ = write!(
            svg,
            r##"<rect x="{rx:.2}" y="{ry:.2}" width="{rw:.2}" height="{rh:.2}" fill="{}" fill-opacity="0.8" stroke="#333" stroke-width="0.3"/>"##,
            lifetime_class(kind, a, horizon),
        );
    }
    // Peak static demand line.
    let py = y(timeline.peak_live_bytes);
    let _ = write!(
        svg,
        r##"<line x1="{ML}" y1="{py:.2}" x2="{:.2}" y2="{py:.2}" stroke="#e15759" stroke-dasharray="6,3" stroke-width="1.2"/>"##,
        ML + plot_w,
    );
    let _ = write!(
        svg,
        r##"<text x="{ML}" y="{:.2}" font-family="monospace" font-size="11" fill="#e15759">peak</text>"##,
        py - 4.0,
    );
    // Axis labels: pool extremes and the time horizon.
    let _ = write!(
        svg,
        r##"<text x="4" y="{:.2}" font-family="monospace" font-size="11">{pool}</text>"##,
        MT + 10.0,
    );
    let _ = write!(
        svg,
        r##"<text x="4" y="{:.2}" font-family="monospace" font-size="11">0</text>"##,
        MT + plot_h,
    );
    let _ = write!(
        svg,
        r##"<text x="{:.2}" y="{:.2}" font-family="monospace" font-size="11">tick {horizon}</text>"##,
        ML + plot_w - 80.0,
        H - 8.0,
    );
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(offset: u64, size: u64, ts: u64, te: u64) -> PlannedAlloc {
        PlannedAlloc {
            size,
            offset,
            ts,
            te,
        }
    }

    /// Pool 100: A fills [0,40) and B fills [60,100) over ticks [0,10) —
    /// a 20-byte hole is stranded under B the whole time.
    fn holey_plan() -> Plan {
        Plan {
            pool_size: 100,
            init_allocs: vec![alloc(0, 40, 0, 10)],
            iter_allocs: vec![alloc(60, 40, 0, 10)],
            ..Plan::default()
        }
    }

    #[test]
    fn peak_and_samples_track_liveness() {
        let tl = analyze_plan(&holey_plan(), 4);
        assert_eq!(tl.peak_live_bytes, 80);
        assert_eq!(tl.peak_tick, 0);
        assert_eq!(tl.fragmentation, 20);
        // Distinct ticks: 0 (both live) and 10 (both freed).
        assert_eq!(tl.samples.len(), 2);
        let s0 = &tl.samples[0];
        assert_eq!((s0.tick, s0.live_bytes, s0.free_bytes), (0, 80, 20));
        assert_eq!(
            (s0.gap_count, s0.largest_gap, s0.stranded_bytes),
            (1, 20, 20)
        );
        let s1 = &tl.samples[1];
        assert_eq!((s1.tick, s1.live_bytes), (10, 0));
        assert_eq!(s1.gap_count, 0, "nothing live, nothing stranded");
        assert_eq!(s1.largest_gap, 100, "the whole pool is one free gap");
    }

    #[test]
    fn stranded_blame_lands_on_the_roofing_alloc() {
        let tl = analyze_plan(&holey_plan(), 4);
        assert_eq!(tl.stranded.len(), 1, "only B roofs a hole");
        let b = &tl.stranded[0];
        assert_eq!((b.kind.as_str(), b.index, b.offset), ("iter", 0, 60));
        // The 20-byte gap is open from tick 0 to the next sample (10).
        assert_eq!(b.stranded_byte_ticks, 20 * 10);
        assert_eq!(tl.gap_sizes.total(), 1);
    }

    #[test]
    fn top_k_truncates_and_orders_by_blame() {
        // Two holes: 30 bytes under C (offset 70), 10 bytes under B (40).
        let plan = Plan {
            pool_size: 100,
            init_allocs: vec![],
            iter_allocs: vec![
                alloc(0, 30, 0, 10),
                alloc(40, 0, 0, 10), // zero-size: ignored
                alloc(40, 0, 0, 0),  // degenerate: never live
                alloc(40, 10, 0, 10),
                alloc(80, 20, 0, 10),
            ],
            ..Plan::default()
        };
        let tl = analyze_plan(&plan, 1);
        assert_eq!(tl.stranded.len(), 1, "top-1 keeps only the worst");
        assert_eq!(
            tl.stranded[0].offset, 80,
            "the 30-byte hole outranks the 10"
        );
        let tl2 = analyze_plan(&plan, 10);
        assert_eq!(tl2.stranded.len(), 2);
        assert!(tl2.stranded[0].stranded_byte_ticks >= tl2.stranded[1].stranded_byte_ticks);
    }

    #[test]
    fn empty_plan_is_all_zero() {
        let tl = analyze_plan(&Plan::default(), 4);
        assert_eq!(tl.peak_live_bytes, 0);
        assert_eq!(tl.fragmentation, 0);
        assert!(tl.samples.is_empty());
        assert!(tl.stranded.is_empty());
    }

    #[test]
    fn long_plans_sample_at_most_max_samples() {
        let iter_allocs: Vec<PlannedAlloc> = (0..2_000u64)
            .map(|i| alloc(0, 8, i * 2, i * 2 + 1))
            .collect();
        let plan = Plan {
            pool_size: 8,
            iter_allocs,
            ..Plan::default()
        };
        let tl = analyze_plan(&plan, 4);
        assert!(tl.samples.len() <= MAX_SAMPLES + 1);
        assert_eq!(tl.peak_live_bytes, 8);
        // Samples stay in ascending tick order with the last tick present.
        assert!(tl.samples.windows(2).all(|w| w[0].tick < w[1].tick));
        assert_eq!(tl.samples.last().unwrap().tick, 2 * 1_999 + 1);
    }

    #[test]
    fn timeline_roundtrips_through_json() {
        let tl = analyze_plan(&holey_plan(), 4);
        let json = serde_json::to_string(&tl).unwrap();
        let back: PlanTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tl);
    }

    #[test]
    fn svg_is_self_contained_and_draws_every_alloc() {
        let plan = holey_plan();
        let tl = analyze_plan(&plan, 4);
        let svg = render_svg(&plan, &tl);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // Frame + background + 2 allocs; no scripts or external refs.
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(!svg.contains("<script"));
        assert_eq!(svg.matches("http").count(), 1, "xmlns is the only URI");
        assert!(svg.contains("xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.contains("fragmentation 20 B"));
    }
}
