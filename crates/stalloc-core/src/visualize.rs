//! ASCII visualization of allocation plans: the time × address plane
//! rendered as a character grid, for plan debugging and the
//! `plan_inspect` example.
//!
//! Each output row is an address band of the pool, each column a slice of
//! the profiled iteration; a cell shows how much of the band×slice area is
//! occupied by planned decisions (` `, `░`, `▒`, `▓`, `█` for 0–100 %).

use crate::plan::Plan;

/// Renders the static plan's occupancy as an ASCII grid of
/// `rows x cols` cells. Returns a multi-line string.
pub fn render_plan(plan: &Plan, rows: usize, cols: usize) -> String {
    let rows = rows.max(1);
    let cols = cols.max(1);
    let pool = plan.pool_size.max(1);
    let horizon = plan
        .init_allocs
        .iter()
        .chain(plan.iter_allocs.iter())
        .map(|d| d.te.max(d.ts + 1))
        .max()
        .unwrap_or(1)
        .max(1);

    // Accumulate covered area per cell.
    let mut area = vec![vec![0u64; cols]; rows];
    let band = pool.div_ceil(rows as u64);
    let slice = horizon.div_ceil(cols as u64);
    for d in plan.init_allocs.iter().chain(plan.iter_allocs.iter()) {
        let te = d.te.max(d.ts + 1);
        let r0 = (d.offset / band) as usize;
        let r1 = (((d.offset + d.size - 1) / band) as usize).min(rows - 1);
        let c0 = (d.ts / slice) as usize;
        let c1 = (((te - 1) / slice) as usize).min(cols - 1);
        for (r, row) in area.iter_mut().enumerate().take(r1 + 1).skip(r0) {
            let band_lo = r as u64 * band;
            let band_hi = (band_lo + band).min(pool);
            let ov_addr = d.offset.max(band_lo).min(band_hi)..(d.offset + d.size).min(band_hi);
            let addr_len = ov_addr.end.saturating_sub(ov_addr.start);
            for (c, cell) in row.iter_mut().enumerate().take(c1 + 1).skip(c0) {
                let sl_lo = c as u64 * slice;
                let sl_hi = (sl_lo + slice).min(horizon);
                let ov_t = d.ts.max(sl_lo).min(sl_hi)..te.min(sl_hi);
                let t_len = ov_t.end.saturating_sub(ov_t.start);
                *cell += addr_len * t_len;
            }
        }
    }

    let cell_area = (band * slice).max(1);
    let glyph = |a: u64| -> char {
        let fill = a as f64 / cell_area as f64;
        match () {
            _ if fill <= 0.01 => ' ',
            _ if fill <= 0.25 => '░',
            _ if fill <= 0.60 => '▒',
            _ if fill <= 0.90 => '▓',
            _ => '█',
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "static plan: pool {:.2} GiB x {} ticks (addr grows downward)\n",
        pool as f64 / (1u64 << 30) as f64,
        horizon
    ));
    // Highest addresses first so the pool "floor" is the last row.
    for row in area.iter().rev() {
        out.push('|');
        for &a in row {
            out.push(glyph(a));
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DynamicPlan, PlanStats, PlannedAlloc};

    fn plan_with(decisions: Vec<PlannedAlloc>, pool: u64) -> Plan {
        Plan {
            pool_size: pool,
            init_allocs: Vec::new(),
            iter_allocs: decisions,
            dynamic: DynamicPlan::default(),
            stats: PlanStats::default(),
        }
    }

    #[test]
    fn full_occupancy_renders_solid() {
        let plan = plan_with(
            vec![PlannedAlloc {
                size: 1024,
                offset: 0,
                ts: 0,
                te: 100,
            }],
            1024,
        );
        let s = render_plan(&plan, 2, 10);
        let body: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(body.len(), 2);
        assert!(body
            .iter()
            .all(|l| l.chars().filter(|&c| c == '█').count() == 10));
    }

    #[test]
    fn half_pool_renders_half_empty() {
        let plan = plan_with(
            vec![PlannedAlloc {
                size: 512,
                offset: 0,
                ts: 0,
                te: 100,
            }],
            1024,
        );
        let s = render_plan(&plan, 2, 10);
        let body: Vec<&str> = s.lines().skip(1).collect();
        // Low addresses (bottom row) full, high addresses (top row) empty.
        assert!(body[1].contains('█'));
        assert!(!body[0].contains('█'));
    }

    #[test]
    fn temporal_gap_is_visible() {
        let plan = plan_with(
            vec![
                PlannedAlloc {
                    size: 1024,
                    offset: 0,
                    ts: 0,
                    te: 40,
                },
                PlannedAlloc {
                    size: 1024,
                    offset: 0,
                    ts: 60,
                    te: 100,
                },
            ],
            1024,
        );
        let s = render_plan(&plan, 1, 10);
        let row = s.lines().nth(1).unwrap();
        assert!(row.contains(' '), "idle window renders empty: {row}");
        assert!(row.starts_with("|█"));
        assert!(row.ends_with("█|"));
    }

    #[test]
    fn empty_plan_renders_blank() {
        let plan = plan_with(Vec::new(), 1024);
        let s = render_plan(&plan, 2, 4);
        assert_eq!(s.lines().count(), 3);
        assert!(s.lines().skip(1).all(|l| !l.contains('█')));
    }
}
