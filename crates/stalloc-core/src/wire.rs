//! Wire-facing types of the plan-synthesis service (`stalloc-served`).
//!
//! The planning daemon and its clients exchange these types as JSON
//! payloads inside length-prefixed frames (the framing itself lives in
//! `stalloc-served::frame`; this module is deliberately transport-free so
//! that any crate can speak the protocol without pulling in the server).
//!
//! A request is either a full planning job `(ProfiledRequests,
//! SynthConfig)` — with the profile inline as JSON (`Plan`) or in a
//! follow-up `PROF` binary-codec frame (`ProfileBin`, see
//! [`ProfileEncoding`]) — a lookup by job
//! [`Fingerprint`](crate::Fingerprint), a
//! [`ServeStats`] snapshot request, a [`ServeMetrics`] latency report
//! request, or a liveness ping. Responses carry
//! the plan plus provenance ([`PlanSource`]: which cache tier answered,
//! or whether this request rode on another request's in-flight
//! synthesis), per-request timing, and typed errors ([`WireErrorKind`])
//! for protocol violations.

use serde::{Deserialize, Serialize};
use stalloc_obs::{HistogramSnapshot, SpanSnapshot, TraceContext};

use crate::plan::{Plan, SynthConfig};
use crate::profiler::ProfiledRequests;

/// How a plan should travel in the response.
///
/// `Json` embeds the plan inside the JSON response document (simple,
/// `nc`-debuggable). `Binary` answers with a [`PlanResponse::PlanBin`]
/// header frame followed by one *raw* frame holding the plan in the
/// `stalloc-store` binary codec — skipping the JSON value-tree round
/// trip that dominates big-plan responses.
///
/// The request field is optional on the wire: frames from clients that
/// predate it carry no `encoding` key and are served `Json`, exactly as
/// before the field existed — old clients keep working against new
/// servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanEncoding {
    /// Plan embedded in the JSON response (the pre-`encoding` behaviour).
    Json,
    /// Plan in a follow-up binary-codec frame.
    #[default]
    Binary,
}

/// How the profile of a `Plan` job travels in the request.
///
/// `Json` embeds the profile inside the JSON [`PlanRequest::Plan`]
/// frame — the pre-binary behaviour, and what every request without an
/// explicit choice means: clients that predate this type never send a
/// [`PlanRequest::ProfileBin`] header, so they keep working unchanged.
/// `Binary` sends a [`PlanRequest::ProfileBin`] header frame followed by
/// one *raw* frame holding the profile in the `stalloc-store` `PROF`
/// binary codec — skipping the serde value-tree round trip that
/// dominates per-request cost even on cache hits (the profile is by far
/// the largest recurring payload of the protocol).
///
/// The default is `Binary`: that is what new clients (`PlanClient`,
/// `stalloc plan --remote`) send unless told otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileEncoding {
    /// Profile embedded in the JSON `Plan` request (the pre-`ProfileBin`
    /// behaviour, and the implied encoding of every `Plan` frame).
    Json,
    /// Profile in a follow-up `PROF` binary-codec frame, announced by a
    /// `ProfileBin` header frame.
    #[default]
    Binary,
}

/// One client request to the planning service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlanRequest {
    /// Plan this job: answer from cache on a fingerprint hit, synthesize
    /// (with single-flight deduplication) on a miss.
    Plan {
        /// The profiled request set (paper §4 output).
        profile: ProfiledRequests,
        /// Synthesizer switches; part of the cache key.
        config: SynthConfig,
        /// Response encoding; absent (old clients) means `Json`.
        encoding: Option<PlanEncoding>,
        /// Distributed-tracing context; absent (old clients) means the
        /// server mints its own ids. Old servers ignore the key — the
        /// decoder skips unknown fields — so the field is compatible in
        /// both directions.
        #[serde(default)]
        trace: Option<TraceContext>,
    },
    /// Plan this job, profile in [`ProfileEncoding::Binary`]: this header
    /// frame is immediately followed by one raw frame whose payload is
    /// the profile in the `stalloc-store` `PROF` binary codec (`bytes`
    /// long, checked before the read). Semantically identical to
    /// [`PlanRequest::Plan`] — same fingerprint, same caches, same
    /// single-flight — only the profile's wire form differs.
    ProfileBin {
        /// Synthesizer switches; part of the cache key (tiny, stays
        /// JSON).
        config: SynthConfig,
        /// Response encoding; absent means `Json`, exactly as on `Plan`.
        encoding: Option<PlanEncoding>,
        /// Payload length of the follow-up binary profile frame.
        bytes: u64,
        /// Distributed-tracing context; absent means server-minted ids,
        /// exactly as on `Plan`.
        #[serde(default)]
        trace: Option<TraceContext>,
    },
    /// Plan the *next* job of a profile family, sent as an edit script:
    /// this header frame is immediately followed by one raw frame whose
    /// payload is a `PROF-DELTA` binary edit script (`bytes` long)
    /// against a base profile the server has seen before, identified by
    /// the fingerprint inside the script. A server that still holds the
    /// base patches the cached base plan in-process (the `patched` tier)
    /// instead of synthesizing; one that does not answers
    /// `NotFound { fingerprint: <base profile hex> }`, and the client
    /// transparently retries with the full profile. Added after
    /// `TraceGet`; servers that predate it answer a typed `BadFrame`
    /// error (an unknown verb) and close, which clients also treat as
    /// "retry full" — old clients never send it.
    PlanDelta {
        /// Synthesizer switches; part of the cache key (tiny, stays
        /// JSON).
        config: SynthConfig,
        /// Response encoding; absent means `Json`, exactly as on `Plan`.
        encoding: Option<PlanEncoding>,
        /// Payload length of the follow-up binary delta frame.
        bytes: u64,
        /// Distributed-tracing context; absent means server-minted ids,
        /// exactly as on `Plan`.
        #[serde(default)]
        trace: Option<TraceContext>,
    },
    /// Look up a previously planned job by fingerprint only. Never
    /// synthesizes: answers `NotFound` on a miss.
    Get {
        /// Lower-case hex fingerprint, as printed by `Fingerprint::to_hex`.
        fingerprint: String,
        /// Response encoding; absent (old clients) means `Json`.
        encoding: Option<PlanEncoding>,
        /// Distributed-tracing context; absent means server-minted ids,
        /// exactly as on `Plan`.
        #[serde(default)]
        trace: Option<TraceContext>,
    },
    /// Return the spans of one trace still in the server's recent-span
    /// ring, oldest first (empty once they have been overwritten — the
    /// ring is bounded, so callers query promptly after their request).
    /// Added after `Metrics`; servers that predate it answer a typed
    /// `BadFrame` error (an unknown verb) and close, which clients
    /// surface as such — old clients never send it.
    TraceGet {
        /// 32-hex-digit trace id, as minted by `stalloc_obs::IdGen`.
        trace_id: String,
    },
    /// Report the server's cumulative counters.
    Stats,
    /// Report the server's latency distributions: per-phase and
    /// per-cache-tier histograms plus the slowest retained request
    /// spans, alongside the same counters `Stats` returns. Added after
    /// `Stats`; servers that predate it answer with a typed `BadFrame`
    /// error (an unknown verb), which clients surface as such — old
    /// clients are unaffected because they never send it.
    Metrics,
    /// Liveness check.
    Ping,
}

impl PlanRequest {
    /// The trace context this request carries, if any. `Stats`,
    /// `Metrics`, `Ping`, and `TraceGet` serialize as bare strings or
    /// id-only payloads (changing them would break old peers), so only
    /// the plan-serving verbs propagate context; the server mints ids
    /// for the rest.
    pub fn trace_context(&self) -> Option<TraceContext> {
        match self {
            PlanRequest::Plan { trace, .. }
            | PlanRequest::ProfileBin { trace, .. }
            | PlanRequest::PlanDelta { trace, .. }
            | PlanRequest::Get { trace, .. } => *trace,
            PlanRequest::TraceGet { .. }
            | PlanRequest::Stats
            | PlanRequest::Metrics
            | PlanRequest::Ping => None,
        }
    }
}

/// Which tier of the serving stack produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSource {
    /// In-process sharded LRU in front of the disk store.
    Lru,
    /// Decoded from the shared on-disk `PlanStore`.
    Store,
    /// Synthesized by this request (the single-flight leader).
    Synthesized,
    /// Waited on an identical in-flight synthesis started by another
    /// request (a single-flight follower).
    Coalesced,
    /// Patched in-process from a cached base plan (a `PlanDelta`
    /// request whose base fingerprint was still on hand) — the
    /// synthesizer never ran. Added with `PlanDelta`; old clients never
    /// see it because they never send the verb.
    Patched,
}

impl PlanSource {
    /// Whether the plan was served without running the synthesizer for
    /// this request (coalesced followers count as hits: the synthesis
    /// cost was paid once, by the leader; patched plans skip it
    /// entirely).
    pub fn is_hit(self) -> bool {
        !matches!(self, PlanSource::Synthesized)
    }
}

/// Typed protocol-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireErrorKind {
    /// The frame could not be parsed (bad length header, missing
    /// terminator, or a payload that is not a valid request).
    BadFrame,
    /// The declared payload length exceeds the server's frame limit.
    Oversized,
    /// The request decoded but cannot be served (e.g. an unparseable
    /// fingerprint).
    BadRequest,
    /// The server's accept queue is full; retry later.
    Busy,
    /// The server is shutting down.
    ShuttingDown,
    /// Unexpected server-side failure (e.g. storage error).
    Internal,
}

impl std::fmt::Display for WireErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireErrorKind::BadFrame => "bad frame",
            WireErrorKind::Oversized => "oversized frame",
            WireErrorKind::BadRequest => "bad request",
            WireErrorKind::Busy => "server busy",
            WireErrorKind::ShuttingDown => "server shutting down",
            WireErrorKind::Internal => "internal server error",
        };
        f.write_str(s)
    }
}

/// Cumulative server counters, reported by the `Stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Total requests decoded (all verbs).
    pub requests: u64,
    /// `Plan` requests.
    pub plan_requests: u64,
    /// `Plan`/`Get` requests answered from the in-process LRU.
    pub lru_hits: u64,
    /// `Plan`/`Get` requests answered from the on-disk store.
    pub store_hits: u64,
    /// `Plan` requests that ran the synthesizer (single-flight leaders).
    pub misses: u64,
    /// `Plan` requests that waited on an identical in-flight synthesis.
    pub coalesced: u64,
    /// Connections rejected with `Busy` because the accept queue was full.
    pub rejected: u64,
    /// Requests answered with a protocol or server error.
    pub errors: u64,
    /// Requests currently being processed by workers.
    pub in_flight: u64,
    /// Connections currently waiting in the accept queue.
    pub queue_depth: u64,
    /// Size of the worker pool.
    pub workers: u64,
    /// `Metrics` requests served. Added after the struct first shipped:
    /// `default` keeps old-shape JSON documents (no such key) decoding,
    /// so a new client can read an old server's `Stats` response.
    #[serde(default)]
    pub metrics_requests: u64,
    /// Capacity of the slowest-span retention list (`serve --slowest`).
    /// Added with tracing; `default` (0 = unreported) keeps old-server
    /// `Stats` documents decoding.
    #[serde(default)]
    pub slowest_capacity: u64,
    /// `PlanDelta` requests decoded. Added with incremental
    /// re-planning; `default` keeps old-server `Stats` documents
    /// decoding.
    #[serde(default)]
    pub delta_requests: u64,
    /// `PlanDelta` requests whose *next* plan was already cached
    /// (LRU/store) — also counted in `lru_hits`/`store_hits`, this
    /// counter only attributes them to the delta path.
    #[serde(default)]
    pub delta_hits: u64,
    /// `PlanDelta` requests answered by patching a cached base plan
    /// in-process (the `patched` tier).
    #[serde(default)]
    pub delta_patched: u64,
}

impl ServeStats {
    /// All cache hits (LRU + store + coalesced followers + patched
    /// plans — every plan served without running the synthesizer).
    pub fn hits(&self) -> u64 {
        self.lru_hits + self.store_hits + self.coalesced + self.delta_patched
    }

    /// Fraction of plan-serving requests answered without running the
    /// synthesizer for the caller (0.0 when none have been served).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// A latency histogram labelled with what it measures (a phase name or
/// a cache-tier name).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Stable label: a `stalloc_obs::Phase::name` or a tier name
    /// (`"lru"`, `"store"`, `"miss"`, `"coalesced"`, `"patched"`).
    pub name: String,
    /// The distribution (microseconds).
    pub hist: HistogramSnapshot,
}

/// One strategy's aggregated synthesis accounting in the `Metrics`
/// verb's `solver` section: counters summed over every synthesis run the
/// server performed with that strategy (including losing portfolio
/// racers), plus the distribution of its wall-clock times.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverStrategyMetrics {
    /// Stable strategy name (`"baseline"`, `"bestfit"`, ...).
    pub strategy: String,
    /// Synthesis runs (portfolio races count each racer once).
    #[serde(default)]
    pub runs: u64,
    /// Runs whose plan was selected (the winning candidate).
    #[serde(default)]
    pub wins: u64,
    /// Runs whose candidate failed validation or panicked.
    #[serde(default)]
    pub invalid: u64,
    /// Total request ordering / grouping time, µs.
    #[serde(default)]
    pub layout_micros: u64,
    /// Total packer (gap scan + placement) time, µs.
    #[serde(default)]
    pub pack_micros: u64,
    /// Total plan assembly time, µs.
    #[serde(default)]
    pub finish_micros: u64,
    /// Placement candidates examined.
    #[serde(default)]
    pub candidates_evaluated: u64,
    /// Placements committed.
    #[serde(default)]
    pub placements_tried: u64,
    /// Candidates examined but passed over.
    #[serde(default)]
    pub placements_rejected: u64,
    /// Distribution of end-to-end per-run wall time, microseconds.
    #[serde(default)]
    pub elapsed: HistogramSnapshot,
}

/// The `Metrics` verb's payload: everything `Stats` reports plus latency
/// distributions and the slowest retained request spans.
///
/// Unknown-to-old-peers by construction (old clients never send
/// `Metrics`); all vector fields carry `default` so a future server can
/// add sections without breaking today's clients.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeMetrics {
    /// Counter snapshot, identical in shape to the `Stats` response.
    pub stats: ServeStats,
    /// Per-phase request-time distributions, one per
    /// `stalloc_obs::Phase`, recorded only for requests that entered the
    /// phase.
    #[serde(default)]
    pub phases: Vec<NamedHistogram>,
    /// End-to-end latency distributions keyed by the cache tier that
    /// answered (`"lru"`, `"store"`, `"miss"`, `"coalesced"`,
    /// `"patched"`); each tier's `count` matches the corresponding
    /// `ServeStats` counter.
    #[serde(default)]
    pub tiers: Vec<NamedHistogram>,
    /// The slowest retained request spans, slowest first.
    #[serde(default)]
    pub slowest: Vec<SpanSnapshot>,
    /// Per-strategy synthesis accounting, in `StrategyChoice::CONCRETE`
    /// order; strategies the server never ran are absent. Empty on
    /// pre-solver-profiling servers (`default`).
    #[serde(default)]
    pub solver: Vec<SolverStrategyMetrics>,
}

impl ServeMetrics {
    /// The named phase histogram, if present.
    pub fn phase(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.phases.iter().find(|h| h.name == name).map(|h| &h.hist)
    }

    /// The named tier histogram, if present.
    pub fn tier(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.tiers.iter().find(|h| h.name == name).map(|h| &h.hist)
    }

    /// The named strategy's solver accounting, if present.
    pub fn solver_strategy(&self, name: &str) -> Option<&SolverStrategyMetrics> {
        self.solver.iter().find(|s| s.strategy == name)
    }
}

/// One server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlanResponse {
    /// A plan, from cache or synthesis.
    Plan {
        /// Hex fingerprint of the job.
        fingerprint: String,
        /// Which tier produced the plan.
        source: PlanSource,
        /// Server-side handling time, microseconds.
        micros: u64,
        /// The plan itself.
        plan: Plan,
    },
    /// A plan served with [`PlanEncoding::Binary`]: this header frame is
    /// immediately followed by one raw frame whose payload is the plan in
    /// the `stalloc-store` binary codec (`bytes` long, for sanity
    /// checking before the read).
    PlanBin {
        /// Hex fingerprint of the job.
        fingerprint: String,
        /// Which tier produced the plan.
        source: PlanSource,
        /// Server-side handling time, microseconds.
        micros: u64,
        /// Payload length of the follow-up binary frame.
        bytes: u64,
    },
    /// `Get` miss: no cached plan under that fingerprint.
    NotFound {
        /// The fingerprint that missed.
        fingerprint: String,
    },
    /// Counter snapshot.
    Stats {
        /// The counters at response time.
        stats: ServeStats,
    },
    /// Latency distributions and slowest spans (the `Metrics` verb).
    Metrics {
        /// The metrics at response time.
        metrics: ServeMetrics,
    },
    /// The `TraceGet` reply: every span of the requested trace still in
    /// the recent-span ring, oldest first.
    Trace {
        /// The 32-hex-digit trace id that was asked for.
        trace_id: String,
        /// Matching spans, oldest first; empty if none survive in the
        /// ring.
        spans: Vec<SpanSnapshot>,
    },
    /// `Ping` reply.
    Pong,
    /// Typed failure.
    Error {
        /// Machine-readable failure class.
        kind: WireErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let ids = stalloc_obs::IdGen::seeded(41);
        let reqs = [
            PlanRequest::Get {
                fingerprint: "a".repeat(32),
                encoding: Some(PlanEncoding::Json),
                trace: None,
            },
            PlanRequest::Get {
                fingerprint: "b".repeat(32),
                encoding: Some(PlanEncoding::Binary),
                trace: Some(ids.root().child(&ids)),
            },
            PlanRequest::TraceGet {
                trace_id: ids.root().trace_hex(),
            },
            PlanRequest::Stats,
            PlanRequest::Ping,
        ];
        for r in reqs {
            let json = serde_json::to_string(&r).unwrap();
            let back: PlanRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(format!("{r:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn plan_request_carries_profile_and_config() {
        let r = PlanRequest::Plan {
            profile: ProfiledRequests::default(),
            config: SynthConfig::default(),
            encoding: Some(PlanEncoding::Binary),
            trace: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: PlanRequest = serde_json::from_str(&json).unwrap();
        match back {
            PlanRequest::Plan {
                profile,
                config,
                encoding,
                ..
            } => {
                assert_eq!(profile.statics.len(), 0);
                assert_eq!(config, SynthConfig::default());
                assert_eq!(encoding, Some(PlanEncoding::Binary));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn requests_without_encoding_still_decode() {
        // Wire compatibility: frames from clients that predate the
        // `encoding` field must keep parsing (and default to Json
        // server-side).
        let old = r#"{"Get": {"fingerprint": "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}}"#;
        match serde_json::from_str::<PlanRequest>(old).unwrap() {
            PlanRequest::Get {
                encoding, trace, ..
            } => {
                assert_eq!(encoding, None);
                assert_eq!(trace, None, "old clients carry no trace context");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        // Same for `Plan` requests, whose config additionally predates
        // the `strategy` field: a 3-field SynthConfig must decode as
        // Baseline (the only behaviour old servers had).
        let profile = serde_json::to_string(&ProfiledRequests::default()).unwrap();
        let old_plan = format!(
            r#"{{"Plan": {{"profile": {profile}, "config": {{"enable_fusion": true, "enable_gap_insertion": true, "ascending_sizes": false}}}}}}"#
        );
        match serde_json::from_str::<PlanRequest>(&old_plan).unwrap() {
            PlanRequest::Plan {
                config, encoding, ..
            } => {
                assert_eq!(config, SynthConfig::default());
                assert_eq!(config.strategy, crate::plan::StrategyChoice::Baseline);
                assert_eq!(encoding, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn profile_bin_header_roundtrips() {
        let r = PlanRequest::ProfileBin {
            config: SynthConfig::default(),
            encoding: Some(PlanEncoding::Binary),
            bytes: 12_345,
            trace: None,
        };
        let json = serde_json::to_string(&r).unwrap();
        match serde_json::from_str::<PlanRequest>(&json).unwrap() {
            PlanRequest::ProfileBin {
                config,
                encoding,
                bytes,
                ..
            } => {
                assert_eq!(config, SynthConfig::default());
                assert_eq!(encoding, Some(PlanEncoding::Binary));
                assert_eq!(bytes, 12_345);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // New clients default to binary profiles; old clients simply
        // never send this header, which is how "absent means Json" works.
        assert_eq!(ProfileEncoding::default(), ProfileEncoding::Binary);
    }

    #[test]
    fn plan_delta_header_roundtrips() {
        let ids = stalloc_obs::IdGen::seeded(45);
        let r = PlanRequest::PlanDelta {
            config: SynthConfig::default(),
            encoding: Some(PlanEncoding::Binary),
            bytes: 222,
            trace: Some(ids.root()),
        };
        assert!(r.trace_context().is_some());
        let json = serde_json::to_string(&r).unwrap();
        match serde_json::from_str::<PlanRequest>(&json).unwrap() {
            PlanRequest::PlanDelta {
                config,
                encoding,
                bytes,
                trace,
            } => {
                assert_eq!(config, SynthConfig::default());
                assert_eq!(encoding, Some(PlanEncoding::Binary));
                assert_eq!(bytes, 222);
                assert!(trace.is_some());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The header without optional fields — what a minimal client
        // sends — also decodes, with Json response encoding implied.
        let config = serde_json::to_string(&SynthConfig::default()).unwrap();
        let minimal = format!(r#"{{"PlanDelta": {{"config": {config}, "bytes": 9}}}}"#);
        match serde_json::from_str::<PlanRequest>(&minimal).unwrap() {
            PlanRequest::PlanDelta {
                encoding, trace, ..
            } => {
                assert_eq!(encoding, None);
                assert_eq!(trace, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn plan_bin_header_roundtrips() {
        let resp = PlanResponse::PlanBin {
            fingerprint: "7".repeat(32),
            source: PlanSource::Store,
            micros: 77,
            bytes: 4096,
        };
        let json = serde_json::to_string(&resp).unwrap();
        match serde_json::from_str::<PlanResponse>(&json).unwrap() {
            PlanResponse::PlanBin {
                source,
                micros,
                bytes,
                ..
            } => {
                assert_eq!(source, PlanSource::Store);
                assert_eq!(micros, 77);
                assert_eq!(bytes, 4096);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(PlanEncoding::default(), PlanEncoding::Binary);
    }

    #[test]
    fn responses_roundtrip_through_json() {
        let resp = PlanResponse::Plan {
            fingerprint: "0".repeat(32),
            source: PlanSource::Coalesced,
            micros: 1234,
            plan: Plan::default(),
        };
        let json = serde_json::to_string(&resp).unwrap();
        match serde_json::from_str::<PlanResponse>(&json).unwrap() {
            PlanResponse::Plan { source, micros, .. } => {
                assert_eq!(source, PlanSource::Coalesced);
                assert_eq!(micros, 1234);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let err = PlanResponse::Error {
            kind: WireErrorKind::Oversized,
            message: "too big".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        match serde_json::from_str::<PlanResponse>(&json).unwrap() {
            PlanResponse::Error { kind, message } => {
                assert_eq!(kind, WireErrorKind::Oversized);
                assert_eq!(message, "too big");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn metrics_roundtrip_through_json() {
        use stalloc_obs::{LatencyHistogram, Phase, RequestSpan, SpanSnapshot};

        let hist = LatencyHistogram::new();
        for v in [69, 70, 147_000] {
            hist.record(v);
        }
        let mut span = RequestSpan::new("Plan");
        span.seq = 3;
        span.tier = "miss";
        span.total_micros = 147_000;
        span.record(Phase::Synthesis, 146_500);

        let metrics = ServeMetrics {
            stats: ServeStats {
                requests: 3,
                misses: 1,
                lru_hits: 2,
                metrics_requests: 1,
                ..ServeStats::default()
            },
            phases: vec![NamedHistogram {
                name: Phase::Synthesis.name().into(),
                hist: hist.snapshot(),
            }],
            tiers: vec![NamedHistogram {
                name: "lru".into(),
                hist: hist.snapshot(),
            }],
            slowest: vec![SpanSnapshot::from(&span)],
            solver: vec![SolverStrategyMetrics {
                strategy: "bestfit".into(),
                runs: 1,
                wins: 1,
                layout_micros: 120,
                pack_micros: 4_400,
                finish_micros: 300,
                candidates_evaluated: 900,
                placements_tried: 450,
                placements_rejected: 450,
                elapsed: hist.snapshot(),
                ..SolverStrategyMetrics::default()
            }],
        };
        let request = serde_json::to_string(&PlanRequest::Metrics).unwrap();
        match serde_json::from_str::<PlanRequest>(&request).unwrap() {
            PlanRequest::Metrics => {}
            other => panic!("wrong variant: {other:?}"),
        }
        let json = serde_json::to_string(&PlanResponse::Metrics {
            metrics: metrics.clone(),
        })
        .unwrap();
        match serde_json::from_str::<PlanResponse>(&json).unwrap() {
            PlanResponse::Metrics { metrics: back } => {
                assert_eq!(back, metrics);
                assert_eq!(back.phase("synthesis").unwrap().total(), 3);
                assert_eq!(
                    back.tier("lru").unwrap().quantile(0.5),
                    hist.snapshot().quantile(0.5)
                );
                assert!(back.phase("nope").is_none());
                assert_eq!(back.slowest[0].tier, "miss");
                let solver = back.solver_strategy("bestfit").unwrap();
                assert_eq!((solver.runs, solver.wins), (1, 1));
                assert_eq!(solver.candidates_evaluated, 900);
                assert_eq!(solver.elapsed.total(), 3);
                assert!(back.solver_strategy("lookahead").is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn trace_context_rides_the_plan_serving_verbs() {
        let ids = stalloc_obs::IdGen::seeded(43);
        let ctx = ids.root().child(&ids);
        let r = PlanRequest::Get {
            fingerprint: "c".repeat(32),
            encoding: None,
            trace: Some(ctx),
        };
        assert_eq!(r.trace_context(), Some(ctx));
        assert_eq!(PlanRequest::Stats.trace_context(), None);
        assert_eq!(PlanRequest::Ping.trace_context(), None);

        // The wire form is the fixed-width hex object, and it survives a
        // round trip.
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains(&format!("\"trace_id\":\"{}\"", ctx.trace_hex())));
        match serde_json::from_str::<PlanRequest>(&json).unwrap() {
            PlanRequest::Get { trace, .. } => assert_eq!(trace, Some(ctx)),
            other => panic!("wrong variant: {other:?}"),
        }

        // Unit verbs stay bare strings: converting them to struct
        // variants would break every old peer, so they deliberately
        // carry no context.
        assert_eq!(
            serde_json::to_string(&PlanRequest::Ping).unwrap(),
            "\"Ping\""
        );
    }

    #[test]
    fn unknown_request_fields_are_ignored_like_an_old_server_would() {
        // An old server's decoder looks fields up by name and skips the
        // rest — this document simulates a *newer* client (extra `trace`
        // plus a field from the future) hitting today's decoder, which
        // is exactly what a new client's frame looks like to an old
        // server.
        let futuristic = r#"{"Get": {"fingerprint": "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            "trace": {"trace_id": "000102030405060708090a0b0c0d0e0f",
                      "span_id": "0001020304050607",
                      "parent_span_id": "0000000000000000"},
            "field_from_the_future": 7}}"#;
        match serde_json::from_str::<PlanRequest>(futuristic).unwrap() {
            PlanRequest::Get {
                fingerprint, trace, ..
            } => {
                assert_eq!(fingerprint.len(), 32);
                let ctx = trace.expect("trace decodes");
                assert_eq!(ctx.trace_id, 0x000102030405060708090a0b0c0d0e0f);
                assert_eq!(ctx.span_id, 0x0001020304050607);
                assert_eq!(ctx.parent_span_id, 0);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn trace_get_roundtrips_and_trace_response_carries_spans() {
        use stalloc_obs::{IdGen, RequestSpan, SpanSnapshot};
        let ids = IdGen::seeded(44);
        let ctx = ids.root();
        let req = PlanRequest::TraceGet {
            trace_id: ctx.trace_hex(),
        };
        let json = serde_json::to_string(&req).unwrap();
        match serde_json::from_str::<PlanRequest>(&json).unwrap() {
            PlanRequest::TraceGet { trace_id } => assert_eq!(trace_id, ctx.trace_hex()),
            other => panic!("wrong variant: {other:?}"),
        }

        let mut span = RequestSpan::new("Plan");
        span.trace = ctx;
        span.total_micros = 99;
        let resp = PlanResponse::Trace {
            trace_id: ctx.trace_hex(),
            spans: vec![SpanSnapshot::from(&span)],
        };
        let json = serde_json::to_string(&resp).unwrap();
        match serde_json::from_str::<PlanResponse>(&json).unwrap() {
            PlanResponse::Trace { trace_id, spans } => {
                assert_eq!(trace_id, ctx.trace_hex());
                assert_eq!(spans.len(), 1);
                assert_eq!(spans[0].trace_id, ctx.trace_hex());
                assert_eq!(spans[0].total_micros, 99);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn old_shape_metrics_json_still_decodes_without_solver() {
        // A `Metrics` payload as a pre-solver-profiling server writes
        // it: no `solver` key. New clients must decode it with the
        // section defaulted to empty, not reject the document.
        let old = r#"{"stats": {"requests": 2, "plan_requests": 1,
                      "lru_hits": 1, "store_hits": 0, "misses": 0,
                      "coalesced": 0, "rejected": 0, "errors": 0,
                      "in_flight": 0, "queue_depth": 0, "workers": 2},
                      "phases": [], "tiers": [], "slowest": []}"#;
        let m: ServeMetrics = serde_json::from_str(old).unwrap();
        assert_eq!(m.stats.requests, 2);
        assert!(m.solver.is_empty(), "absent section defaults to empty");
        assert!(m.solver_strategy("baseline").is_none());
    }

    #[test]
    fn old_shape_stats_json_still_decodes() {
        // A `Stats` response as an old server writes it: no
        // `metrics_requests` key. New clients must decode it with the
        // field defaulted, not reject the document.
        let old = r#"{"requests": 9, "plan_requests": 4, "lru_hits": 2,
                      "store_hits": 1, "misses": 1, "coalesced": 0,
                      "rejected": 0, "errors": 0, "in_flight": 0,
                      "queue_depth": 0, "workers": 4}"#;
        let stats: ServeStats = serde_json::from_str(old).unwrap();
        assert_eq!(stats.requests, 9);
        assert_eq!(stats.metrics_requests, 0, "absent field defaults");
        assert_eq!(stats.slowest_capacity, 0, "absent field defaults");
        assert_eq!(stats.delta_requests, 0, "absent field defaults");
        assert_eq!(stats.delta_hits, 0, "absent field defaults");
        assert_eq!(stats.delta_patched, 0, "absent field defaults");
        assert_eq!(stats.hits(), 3);
    }

    #[test]
    fn hit_ratio_is_total_over_plan_serving_requests() {
        let s = ServeStats {
            lru_hits: 2,
            store_hits: 1,
            coalesced: 1,
            misses: 1,
            ..ServeStats::default()
        };
        assert!((s.hit_ratio() - 0.8).abs() < 1e-9);
        assert_eq!(ServeStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn stats_hit_accounting() {
        let s = ServeStats {
            lru_hits: 2,
            store_hits: 3,
            coalesced: 5,
            misses: 7,
            delta_patched: 4,
            ..ServeStats::default()
        };
        assert_eq!(s.hits(), 14);
        assert!(PlanSource::Lru.is_hit());
        assert!(PlanSource::Store.is_hit());
        assert!(PlanSource::Coalesced.is_hit());
        assert!(PlanSource::Patched.is_hit());
        assert!(!PlanSource::Synthesized.is_hit());
    }
}
