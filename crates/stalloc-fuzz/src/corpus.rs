//! Corpus management: committed regression seeds on disk plus runtime
//! seeds generated from the 4-model zoo.
//!
//! The committed corpus lives under `crates/stalloc-fuzz/corpus/<target>/`
//! — one hand-minimized file per decoder rejection class, named after
//! the `CodecError`/`FrameError` variant it triggers. It is replayed
//! *before* any mutation, so every required variant is exercised even on
//! a 1-iteration run, and a regression found once stays covered forever.

use crate::FuzzTarget;
use stalloc_core::{
    diff_profiles, profile_trace, synthesize, ProfiledRequests, StrategyChoice, SynthConfig,
};
use stalloc_served::write_frame;
use stalloc_store::{encode_plan, encode_profile, encode_profile_delta};
use std::path::{Path, PathBuf};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

/// The in-repo committed corpus root (next to this crate's sources).
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Committed regression seeds for `target`, sorted by file name for a
/// deterministic replay order. Missing directories yield an empty set
/// (the caller decides whether that is fatal).
pub fn committed_seeds(dir: &Path, target: FuzzTarget) -> Vec<(PathBuf, Vec<u8>)> {
    let sub = dir.join(target.dir_name());
    let mut out = Vec::new();
    let Ok(rd) = std::fs::read_dir(&sub) else {
        return out;
    };
    for entry in rd.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "bin") {
            if let Ok(bytes) = std::fs::read(&path) {
                out.push((path, bytes));
            }
        }
    }
    out.sort();
    out
}

/// One zoo job per model family, mirroring the codec round-trip tests:
/// GPT-2 naive, GPT-2 interleaved-VPP + recompute, Llama-2 7B +
/// recompute, Qwen1.5 MoE expert-parallel.
fn zoo_job(idx: u64) -> (ModelSpec, ParallelConfig, OptimConfig) {
    match idx % 4 {
        0 => (
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        ),
        1 => (
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 4, 1).with_vpp(2),
            OptimConfig::r(),
        ),
        2 => (
            ModelSpec::llama2_7b(),
            ParallelConfig::new(2, 2, 1),
            OptimConfig::r(),
        ),
        _ => (
            ModelSpec::qwen15_moe_a27b(),
            ParallelConfig::new(1, 1, 4).with_ep(4),
            OptimConfig::naive(),
        ),
    }
}

/// A profiled zoo job (seq 256, one microbatch round per pipeline stage).
pub fn zoo_profile(idx: u64) -> ProfiledRequests {
    let (model, parallel, optim) = zoo_job(idx);
    let trace = TrainJob::new(model, parallel, optim)
        .with_mbs(1)
        .with_seq(256)
        .with_microbatches(parallel.pp)
        .with_iterations(1)
        .with_seed(idx)
        .build_trace()
        .expect("zoo jobs build");
    profile_trace(&trace, 1).expect("zoo jobs profile")
}

/// Runtime seed corpus for `target`, generated from the zoo: encoded
/// profiles, encoded plans (tagged with every valid strategy index so
/// mutation explores each tag), and framed payloads of assorted shapes.
pub fn runtime_seeds(target: FuzzTarget) -> Vec<Vec<u8>> {
    match target {
        FuzzTarget::Prof => (0..4).map(|i| encode_profile(&zoo_profile(i))).collect(),
        FuzzTarget::Stpl => (0..4)
            .map(|i| {
                let profile = zoo_profile(i);
                let mut plan = synthesize(&profile, &SynthConfig::default());
                // Retag so the committed+runtime corpus carries every
                // valid strategy byte, not just Baseline.
                if let Some(s) = StrategyChoice::from_index((i % 5) as u8) {
                    plan.stats.strategy = s;
                }
                encode_plan(&plan)
            })
            .collect(),
        FuzzTarget::Delta => {
            // One realistic edit script per zoo family (resize + insert
            // against its own base), plus the identity delta — the
            // degenerate all-Copy script with inherit-everything flags.
            let mut seeds: Vec<Vec<u8>> = (0..4)
                .map(|i| {
                    let base = zoo_profile(i);
                    let mut next = base.clone();
                    for r in next.statics.iter_mut().skip(base.init_count).take(3) {
                        r.size += 4096;
                    }
                    next.statics.push(stalloc_core::RequestEvent {
                        size: 1 << 20,
                        ts: 5,
                        te: 30,
                        ps: 0,
                        pe: 0,
                        dynamic: false,
                        ls: None,
                        le: None,
                    });
                    encode_profile_delta(&diff_profiles(&base, &next))
                })
                .collect();
            let base = zoo_profile(0);
            seeds.push(encode_profile_delta(&diff_profiles(&base, &base)));
            seeds
        }
        FuzzTarget::Frame => {
            let mut seeds = Vec::new();
            for payload in [
                &b""[..],
                &b"{}"[..],
                &b"{\"Ping\":null}"[..],
                &[0xab; 300][..],
            ] {
                let mut buf = Vec::new();
                write_frame(&mut buf, payload).expect("vec write");
                seeds.push(buf);
            }
            // A two-frame stream: boundaries between frames are where
            // resynchronization bugs live.
            let mut double = Vec::new();
            write_frame(&mut double, b"one").expect("vec write");
            write_frame(&mut double, b"two").expect("vec write");
            seeds.push(double);
            seeds
        }
        FuzzTarget::Server => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_corpus_is_present_for_every_codec_target() {
        let dir = default_corpus_dir();
        for target in [
            FuzzTarget::Prof,
            FuzzTarget::Stpl,
            FuzzTarget::Delta,
            FuzzTarget::Frame,
        ] {
            let seeds = committed_seeds(&dir, target);
            assert!(
                seeds.len() >= 3,
                "{} corpus has {} seeds, need >= 3",
                target.name(),
                seeds.len()
            );
        }
    }

    /// Regenerates `corpus/delta/` — one minimal seed per `CodecError`
    /// variant the `PROF-DELTA` decoder can emit, named after it.
    /// Run with `cargo test -p stalloc-fuzz -- --ignored gen_delta_corpus`
    /// after a wire-format change, then commit the result.
    #[test]
    #[ignore]
    fn gen_delta_corpus() {
        use stalloc_store::decode_profile_delta;

        // header: magic + version + 16-byte base fingerprint
        let mut header = Vec::new();
        header.extend_from_slice(b"PRFD\x01\x00");
        header.extend_from_slice(&[0u8; 16]);

        let with = |tail: &[u8]| {
            let mut b = header.clone();
            b.extend_from_slice(tail);
            b
        };
        let candidates: Vec<(&str, Vec<u8>)> = vec![
            ("bad-magic", b"\0\0\0\0".to_vec()),
            ("unsupported-version", b"PRFD\x02\x00".to_vec()),
            // ends inside the base fingerprint
            ("truncated", b"PRFD\x01\x00".to_vec()),
            // init_count varint never terminates within 10 bytes
            ("varint-overflow", with(&[0xff; 10])),
            // overlong zero-padded init_count
            ("non-canonical-varint", with(&[0x80, 0x00])),
            // num_phases = 2^32, one past u32
            (
                "int-out-of-range",
                with(&[0x00, 0x80, 0x80, 0x80, 0x80, 0x10]),
            ),
            // empty scripts, then a windows section claiming 2^35-1 rows
            (
                "length-overflow",
                with(&[
                    0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f,
                ]),
            ),
            // a complete minimal stream plus one stray byte
            (
                "trailing-bytes",
                with(&[0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xee]),
            ),
        ];

        let kebab = |variant: &str| {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('-');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        };
        let dir = default_corpus_dir().join("delta");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in candidates {
            let key = {
                let e = decode_profile_delta(&bytes).expect_err(name);
                (
                    e.variant_name().to_string(),
                    e.context().map(str::to_string),
                )
            };
            assert_eq!(kebab(&key.0), name, "{name}: wrong variant {key:?}");
            let min = crate::minimize::minimize_bytes(
                &bytes,
                |cand| {
                    decode_profile_delta(cand).err().map(|e| {
                        (
                            e.variant_name().to_string(),
                            e.context().map(str::to_string),
                        )
                    }) == Some(key.clone())
                },
                50_000,
            );
            std::fs::write(dir.join(format!("{name}.bin")), &min).unwrap();
            println!("{name}: {} -> {} bytes", bytes.len(), min.len());
        }
    }

    #[test]
    fn runtime_seeds_cover_the_zoo() {
        assert_eq!(runtime_seeds(FuzzTarget::Prof).len(), 4);
        assert_eq!(runtime_seeds(FuzzTarget::Stpl).len(), 4);
        assert_eq!(runtime_seeds(FuzzTarget::Delta).len(), 5);
        assert!(runtime_seeds(FuzzTarget::Frame).len() >= 4);
        assert!(runtime_seeds(FuzzTarget::Server).is_empty());
    }
}
