//! Branch-level coverage proxy over the strict decoders.
//!
//! The decoders expose their rejection taxonomy through
//! `CodecError::variant_name()` / `context()` (and the analogous
//! `FrameError` hooks): every typed rejection names both the error class
//! and the field whose parse rejected the stream. A corpus that never
//! produces one of the required classes has a blind spot, so
//! [`crate::run`] fails when any required variant goes unexercised.

use std::collections::BTreeSet;

/// Which error variants and decoder branches a corpus has exercised.
#[derive(Debug, Default)]
pub struct CoverageLedger {
    variants: BTreeSet<String>,
    contexts: BTreeSet<String>,
    ok_decodes: u64,
}

impl CoverageLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one typed rejection; `context` (when the variant carries
    /// one) identifies the decoder branch that rejected the stream.
    pub fn record_error(&mut self, variant: &str, context: Option<&str>) {
        self.variants.insert(variant.to_string());
        if let Some(c) = context {
            self.contexts.insert(format!("{variant}:{c}"));
        }
    }

    /// Records one successful decode (the oracles then take over).
    pub fn record_ok(&mut self) {
        self.ok_decodes += 1;
    }

    pub fn ok_decodes(&self) -> u64 {
        self.ok_decodes
    }

    /// Distinct error variants seen.
    pub fn variants(&self) -> usize {
        self.variants.len()
    }

    /// Distinct `(variant, context)` decoder branches seen.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Whether an input producing `(variant, context)` adds coverage the
    /// ledger does not have yet. Used to grow the mutation pool.
    pub fn is_new(&self, variant: &str, context: Option<&str>) -> bool {
        !self.variants.contains(variant)
            || context.is_some_and(|c| !self.contexts.contains(&format!("{variant}:{c}")))
    }

    /// Required variants never exercised — non-empty fails the run.
    pub fn missing(&self, required: &[&str]) -> Vec<String> {
        required
            .iter()
            .filter(|v| !self.variants.contains(**v))
            .map(|v| v.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_tracks_required_set() {
        let mut cov = CoverageLedger::new();
        cov.record_error("BadMagic", None);
        cov.record_error("Truncated", Some("magic"));
        assert_eq!(
            cov.missing(&["BadMagic", "Truncated", "TrailingBytes"]),
            vec!["TrailingBytes"]
        );
        assert_eq!(cov.contexts(), 1);
        assert!(cov.is_new("Truncated", Some("pool_size")));
        assert!(!cov.is_new("Truncated", Some("magic")));
        assert!(cov.is_new("VarintOverflow", None));
    }
}
