//! Deterministic, structure-aware mutational fuzzing for the wire trust
//! boundary — the four strict decoders (`PROF` profiles, `STPL` plans
//! v1/v2, `PROF-DELTA` edit scripts, the length-prefixed frame layer)
//! plus a loopback harness that fires mutated request streams at a live
//! `PlanServer`.
//!
//! Everything is offline and reproducible: mutation runs on the vendored
//! `rand` xoshiro stream, so `--seed 42` produces the same mutants on
//! every machine, release after release. There is no cargo-fuzz, no
//! network, no wall-clock dependence.
//!
//! A run is more than a panic hunt. Each target enforces [`oracle`]
//! differential checks on every accepted mutant (decode→re-encode
//! fixpoint, fingerprint-of-bytes == fingerprint-of-value, v1/v2
//! interop, malformed-stream recovery), tracks a [`coverage`] proxy over
//! the decoders' typed rejection classes — the run **fails** if a
//! required `CodecError`/`FrameError` variant is never produced — and
//! [`minimize`]s any failing input before reporting it, so a failure
//! lands as a few bytes ready to commit to the [`corpus`].
//!
//! Entry point: [`run`] with a [`FuzzConfig`]; the CLI front end is
//! `stalloc fuzz --iters N --seed N --target prof|stpl|delta|frame|server|all`.

pub mod corpus;
pub mod coverage;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod server_harness;

use coverage::CoverageLedger;
use mutate::Mutator;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

/// One fuzzable surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// The `PROF` binary profile decoder.
    Prof,
    /// The `STPL` binary plan decoder (v1 and v2).
    Stpl,
    /// The `PROF-DELTA` binary edit-script decoder.
    Delta,
    /// The length-prefixed frame layer.
    Frame,
    /// The live loopback `PlanServer` harness.
    Server,
}

impl FuzzTarget {
    pub const ALL: [FuzzTarget; 5] = [
        FuzzTarget::Prof,
        FuzzTarget::Stpl,
        FuzzTarget::Delta,
        FuzzTarget::Frame,
        FuzzTarget::Server,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FuzzTarget::Prof => "prof",
            FuzzTarget::Stpl => "stpl",
            FuzzTarget::Delta => "delta",
            FuzzTarget::Frame => "frame",
            FuzzTarget::Server => "server",
        }
    }

    /// Corpus subdirectory name (same as [`Self::name`]; servers keep no
    /// byte corpus).
    pub fn dir_name(self) -> &'static str {
        self.name()
    }

    pub fn parse(s: &str) -> Option<FuzzTarget> {
        match s {
            "prof" => Some(FuzzTarget::Prof),
            "stpl" => Some(FuzzTarget::Stpl),
            "delta" => Some(FuzzTarget::Delta),
            "frame" => Some(FuzzTarget::Frame),
            "server" => Some(FuzzTarget::Server),
            _ => None,
        }
    }
}

/// One fuzzing run's shape.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Mutational iterations per codec target (the server harness runs
    /// `min(iters, 256)` real TCP scenarios).
    pub iters: u64,
    /// Master seed; every mutant derives from it deterministically.
    pub seed: u64,
    /// Targets to run, in order.
    pub targets: Vec<FuzzTarget>,
    /// Committed-corpus root; `None` = the in-repo corpus.
    pub corpus_dir: Option<PathBuf>,
    /// Where minimized failing inputs are written (best-effort);
    /// `None` = `target/fuzz-failures`.
    pub failure_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 100_000,
            seed: 42,
            targets: FuzzTarget::ALL.to_vec(),
            corpus_dir: None,
            failure_dir: None,
        }
    }
}

/// Outcome for one target.
#[derive(Debug)]
pub struct TargetReport {
    pub target: &'static str,
    /// Inputs executed (corpus replays + seeds + mutants, or server
    /// scenarios).
    pub executed: u64,
    /// Inputs the decoder accepted (oracles ran on each).
    pub ok_decodes: u64,
    /// Decoder panics caught (always a bug).
    pub panics: u64,
    /// Oracle violations, truncated to the first few with a witness.
    pub violations: Vec<String>,
    /// Required error variants never produced (fails the run).
    pub missing_variants: Vec<String>,
    /// Distinct error variants seen.
    pub variants_seen: usize,
    /// Distinct `(variant, decoder-branch)` pairs seen.
    pub branches_seen: usize,
}

impl TargetReport {
    pub fn ok(&self) -> bool {
        self.panics == 0 && self.violations.is_empty() && self.missing_variants.is_empty()
    }
}

/// Whole-run outcome.
#[derive(Debug)]
pub struct FuzzReport {
    pub targets: Vec<TargetReport>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.targets.iter().all(TargetReport::ok)
    }

    /// One human-readable line per target plus a verdict.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for t in &self.targets {
            out.push_str(&format!(
                "{:<7} {:>8} execs  {:>7} accepted  coverage {} variants / {} branches  {} panics  {} violations{}\n",
                t.target,
                t.executed,
                t.ok_decodes,
                t.variants_seen,
                t.branches_seen,
                t.panics,
                t.violations.len(),
                if t.missing_variants.is_empty() {
                    String::new()
                } else {
                    format!("  MISSING: {}", t.missing_variants.join(", "))
                },
            ));
            for v in &t.violations {
                out.push_str(&format!("  violation: {v}\n"));
            }
        }
        out.push_str(if self.ok() {
            "fuzz: PASS (zero panics, zero oracle violations, full variant coverage)"
        } else {
            "fuzz: FAIL"
        });
        out
    }
}

/// Runs every configured target and aggregates the reports. Never
/// panics: decoder panics are caught, counted, minimized, and reported.
pub fn run(config: &FuzzConfig) -> FuzzReport {
    let targets = config
        .targets
        .iter()
        .map(|&t| match t {
            FuzzTarget::Server => run_server_target(config),
            codec => run_codec_target(codec, config),
        })
        .collect();
    FuzzReport { targets }
}

fn run_server_target(config: &FuzzConfig) -> TargetReport {
    let outcome = server_harness::fuzz_server(config.iters, config.seed);
    TargetReport {
        target: FuzzTarget::Server.name(),
        executed: outcome.executed,
        ok_decodes: 0,
        panics: 0,
        violations: outcome.violations,
        missing_variants: outcome.missing,
        variants_seen: 0,
        branches_seen: 0,
    }
}

/// How one input fared, for the minimization predicate.
enum Fate {
    Clean,
    Violation,
    Panic,
}

fn classify(target: FuzzTarget, bytes: &[u8], cov: &mut CoverageLedger) -> Fate {
    let check = match target {
        FuzzTarget::Prof => oracle::check_prof,
        FuzzTarget::Stpl => oracle::check_stpl,
        FuzzTarget::Delta => oracle::check_delta,
        FuzzTarget::Frame => oracle::check_frame,
        FuzzTarget::Server => unreachable!("server target has no byte oracle"),
    };
    match std::panic::catch_unwind(AssertUnwindSafe(|| check(bytes, cov))) {
        Ok(Ok(())) => Fate::Clean,
        Ok(Err(_)) => Fate::Violation,
        Err(_) => Fate::Panic,
    }
}

fn run_codec_target(target: FuzzTarget, config: &FuzzConfig) -> TargetReport {
    let required: &[&str] = match target {
        FuzzTarget::Frame => oracle::REQUIRED_FRAME_VARIANTS,
        _ => oracle::REQUIRED_CODEC_VARIANTS,
    };
    let corpus_dir = config
        .corpus_dir
        .clone()
        .unwrap_or_else(corpus::default_corpus_dir);
    let failure_dir = config
        .failure_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/fuzz-failures"));

    let mut cov = CoverageLedger::new();
    let mut executed = 0u64;
    let mut panics = 0u64;
    let mut violations: Vec<String> = Vec::new();
    let mut failure_no = 0u32;

    let handle_input = |bytes: &[u8],
                        origin: &str,
                        cov: &mut CoverageLedger,
                        panics: &mut u64,
                        violations: &mut Vec<String>,
                        failure_no: &mut u32| {
        let check = match target {
            FuzzTarget::Prof => oracle::check_prof,
            FuzzTarget::Stpl => oracle::check_stpl,
            FuzzTarget::Delta => oracle::check_delta,
            FuzzTarget::Frame => oracle::check_frame,
            FuzzTarget::Server => unreachable!(),
        };
        match std::panic::catch_unwind(AssertUnwindSafe(|| check(bytes, cov))) {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                let min = minimize::minimize_bytes(
                    bytes,
                    |cand| {
                        let mut scratch = CoverageLedger::new();
                        matches!(classify(target, cand, &mut scratch), Fate::Violation)
                    },
                    2_000,
                );
                let path = persist_failure(&failure_dir, target, *failure_no, &min);
                *failure_no += 1;
                if violations.len() < 8 {
                    violations.push(format!(
                        "{origin}: {msg} (minimized to {} bytes{path})",
                        min.len()
                    ));
                }
            }
            Err(_) => {
                *panics += 1;
                let min = minimize::minimize_bytes(
                    bytes,
                    |cand| {
                        let mut scratch = CoverageLedger::new();
                        matches!(classify(target, cand, &mut scratch), Fate::Panic)
                    },
                    2_000,
                );
                let path = persist_failure(&failure_dir, target, *failure_no, &min);
                *failure_no += 1;
                if violations.len() < 8 {
                    violations.push(format!(
                        "{origin}: decoder panicked (minimized to {} bytes{path})",
                        min.len()
                    ));
                }
            }
        }
    };

    // 1. Replay the committed regression corpus — every required variant
    //    is exercised before a single mutation runs.
    let committed = corpus::committed_seeds(&corpus_dir, target);
    for (path, bytes) in &committed {
        handle_input(
            bytes,
            &format!("corpus {}", path.display()),
            &mut cov,
            &mut panics,
            &mut violations,
            &mut failure_no,
        );
        executed += 1;
    }

    // 2. Runtime zoo seeds: large valid artifacts for the oracles and as
    //    mutation base material.
    let seeds = corpus::runtime_seeds(target);
    for (i, bytes) in seeds.iter().enumerate() {
        handle_input(
            bytes,
            &format!("zoo seed {i}"),
            &mut cov,
            &mut panics,
            &mut violations,
            &mut failure_no,
        );
        executed += 1;
    }

    // 3. The mutation loop. Pool evolves: inputs reaching new decoder
    //    branches join the base material (classic coverage-guided shape,
    //    with the typed-rejection ledger standing in for edge coverage).
    let mut pool: Vec<Vec<u8>> = committed.into_iter().map(|(_, b)| b).chain(seeds).collect();
    if pool.is_empty() {
        pool.push(Vec::new());
    }
    let mut mutator = Mutator::new(config.seed ^ fnv1a(target.name().as_bytes()));
    for i in 0..config.iters {
        let pick = pool[mutator.pick_index(pool.len())].clone();
        // Every 8th mutant is structure-aware: decode → tweak → re-encode
        // keeps it on the valid path, where the differential oracles live.
        let input = if i % 8 == 3 {
            match target {
                FuzzTarget::Prof => mutate::structured_profile_mutant(&mut mutator, &pick),
                FuzzTarget::Stpl => mutate::structured_plan_mutant(&mut mutator, &pick),
                FuzzTarget::Delta => mutate::structured_delta_mutant(&mut mutator, &pick),
                _ => None,
            }
            .unwrap_or_else(|| mutator.mutate(&pick))
        } else {
            mutator.mutate(&pick)
        };

        // Peek at coverage growth to decide pool admission.
        let before = (cov.variants(), cov.contexts());
        handle_input(
            &input,
            &format!("iter {i}"),
            &mut cov,
            &mut panics,
            &mut violations,
            &mut failure_no,
        );
        executed += 1;
        if (cov.variants(), cov.contexts()) != before && pool.len() < 256 {
            pool.push(input);
        }
    }

    TargetReport {
        target: target.name(),
        executed,
        ok_decodes: cov.ok_decodes(),
        panics,
        violations,
        missing_variants: cov.missing(required),
        variants_seen: cov.variants(),
        branches_seen: cov.contexts(),
    }
}

/// Best-effort persistence of a minimized failing input; returns a
/// display suffix for the report line.
fn persist_failure(dir: &std::path::Path, target: FuzzTarget, no: u32, bytes: &[u8]) -> String {
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{}-{no:03}.bin", target.name()));
    match std::fs::write(&path, bytes) {
        Ok(()) => format!(", saved to {}", path.display()),
        Err(_) => String::new(),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(target: FuzzTarget, iters: u64) -> FuzzConfig {
        FuzzConfig {
            iters,
            seed: 42,
            targets: vec![target],
            corpus_dir: None,
            failure_dir: Some(std::env::temp_dir().join("stalloc-fuzz-test-failures")),
        }
    }

    #[test]
    fn short_prof_run_is_clean_and_fully_covered() {
        let report = run(&quick_config(FuzzTarget::Prof, 1500));
        let t = &report.targets[0];
        assert!(t.ok(), "{}", report.summary());
        assert_eq!(t.missing_variants, Vec::<String>::new());
        assert!(t.ok_decodes > 0, "structure-aware mutants must decode");
    }

    #[test]
    fn short_stpl_run_is_clean_and_fully_covered() {
        let report = run(&quick_config(FuzzTarget::Stpl, 1500));
        let t = &report.targets[0];
        assert!(t.ok(), "{}", report.summary());
        assert!(t.ok_decodes > 0);
    }

    #[test]
    fn short_delta_run_is_clean_and_fully_covered() {
        let report = run(&quick_config(FuzzTarget::Delta, 1500));
        let t = &report.targets[0];
        assert!(t.ok(), "{}", report.summary());
        assert_eq!(t.missing_variants, Vec::<String>::new());
        assert!(
            t.ok_decodes > 0,
            "structure-aware delta mutants must decode"
        );
    }

    #[test]
    fn short_frame_run_is_clean_and_fully_covered() {
        let report = run(&quick_config(FuzzTarget::Frame, 1500));
        let t = &report.targets[0];
        assert!(t.ok(), "{}", report.summary());
        assert!(t.ok_decodes > 0);
    }

    #[test]
    fn reports_are_deterministic_for_a_seed() {
        let a = run(&quick_config(FuzzTarget::Frame, 400));
        let b = run(&quick_config(FuzzTarget::Frame, 400));
        assert_eq!(a.targets[0].ok_decodes, b.targets[0].ok_decodes);
        assert_eq!(a.targets[0].branches_seen, b.targets[0].branches_seen);
    }

    #[test]
    fn target_parsing_round_trips() {
        for t in FuzzTarget::ALL {
            assert_eq!(FuzzTarget::parse(t.name()), Some(t));
        }
        assert_eq!(FuzzTarget::parse("nope"), None);
    }

    /// The committed corpus is the ground truth for required-variant
    /// coverage: each seed must trigger exactly the (variant, context)
    /// its file name promises, and must already be minimal for it.
    #[test]
    fn committed_seeds_trigger_their_named_variant_and_are_minimal() {
        use stalloc_store::{decode_plan, decode_profile, decode_profile_delta};

        let dir = corpus::default_corpus_dir();
        for target in [FuzzTarget::Prof, FuzzTarget::Stpl, FuzzTarget::Delta] {
            let decode_key = |bytes: &[u8]| -> Option<(String, Option<String>)> {
                let e = match target {
                    FuzzTarget::Prof => decode_profile(bytes).err()?,
                    FuzzTarget::Delta => decode_profile_delta(bytes).err()?,
                    _ => decode_plan(bytes).err()?,
                };
                Some((
                    e.variant_name().to_string(),
                    e.context().map(str::to_string),
                ))
            };
            let seeds = corpus::committed_seeds(&dir, target);
            let mut variants_hit = std::collections::BTreeSet::new();
            for (path, bytes) in &seeds {
                let stem = path.file_stem().unwrap().to_string_lossy().to_string();
                let key = decode_key(bytes)
                    .unwrap_or_else(|| panic!("{} decodes cleanly", path.display()));
                assert_eq!(
                    kebab(&key.0),
                    stem,
                    "{} triggers {:?}, not its name",
                    path.display(),
                    key
                );
                variants_hit.insert(key.0.clone());
                let min = minimize::minimize_bytes(
                    bytes,
                    |cand| decode_key(cand).as_ref() == Some(&key),
                    50_000,
                );
                assert_eq!(
                    min.len(),
                    bytes.len(),
                    "{} is not minimal: {} -> {} bytes",
                    path.display(),
                    bytes.len(),
                    min.len()
                );
            }
            for v in oracle::REQUIRED_CODEC_VARIANTS {
                assert!(
                    variants_hit.contains(*v),
                    "{} corpus misses {v}",
                    target.name()
                );
            }
        }
    }

    #[test]
    fn committed_frame_seeds_trigger_their_named_variant() {
        use stalloc_served::read_frame;
        use std::io::Cursor;

        let dir = corpus::default_corpus_dir();
        let seeds = corpus::committed_seeds(&dir, FuzzTarget::Frame);
        let mut variants_hit = std::collections::BTreeSet::new();
        for (path, bytes) in &seeds {
            let stem = path.file_stem().unwrap().to_string_lossy().to_string();
            match read_frame(&mut Cursor::new(bytes.as_slice()), oracle::FRAME_FUZZ_MAX) {
                Ok(Some(_)) => assert!(
                    stem.starts_with("ok"),
                    "{} decodes cleanly but is named {stem}",
                    path.display()
                ),
                Ok(None) => panic!("{} is empty", path.display()),
                Err(e) => {
                    assert!(
                        stem.starts_with(&kebab(e.variant_name())),
                        "{} triggers {}, not its name",
                        path.display(),
                        e.variant_name()
                    );
                    variants_hit.insert(e.variant_name().to_string());
                }
            }
        }
        for v in oracle::REQUIRED_FRAME_VARIANTS {
            assert!(variants_hit.contains(*v), "frame corpus misses {v}");
        }
    }

    fn kebab(variant: &str) -> String {
        let mut out = String::new();
        for (i, c) in variant.chars().enumerate() {
            if c.is_ascii_uppercase() {
                if i > 0 {
                    out.push('-');
                }
                out.push(c.to_ascii_lowercase());
            } else {
                out.push(c);
            }
        }
        out
    }
}
