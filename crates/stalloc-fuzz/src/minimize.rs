//! Byte-level input minimization for fuzz failures: ddmin-style chunk
//! removal (halving granularity) followed by a byte-zeroing pass, all
//! under a bounded predicate budget so minimization can never stall a
//! run.

/// Shrinks `input` while `still_fails` holds, spending at most `budget`
/// predicate evaluations. The result fails the same predicate (the
/// original is returned unchanged if nothing smaller fails).
pub fn minimize_bytes<F>(input: &[u8], mut still_fails: F, budget: usize) -> Vec<u8>
where
    F: FnMut(&[u8]) -> bool,
{
    let mut cur = input.to_vec();
    let mut attempts = 0usize;

    // Phase 1: remove chunks, halving the chunk size until single bytes.
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut offset = 0;
        while offset < cur.len() {
            if attempts >= budget {
                return cur;
            }
            let end = (offset + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - offset));
            cand.extend_from_slice(&cur[..offset]);
            cand.extend_from_slice(&cur[end..]);
            attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                removed_any = true;
                // Retry the same offset: the bytes shifted down into it.
            } else {
                offset = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
            // Keep sweeping at byte granularity until a full clean pass.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    // Phase 2: canonicalize surviving bytes toward zero.
    let mut i = 0;
    while i < cur.len() {
        if attempts >= budget {
            break;
        }
        if cur[i] != 0 {
            let mut cand = cur.clone();
            cand[i] = 0;
            attempts += 1;
            if still_fails(&cand) {
                cur = cand;
            }
        }
        i += 1;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failure_witness() {
        // Fails iff the bytes contain 0xAA followed somewhere by 0xBB.
        let pred = |b: &[u8]| {
            let a = b.iter().position(|&x| x == 0xaa);
            match a {
                Some(i) => b[i..].contains(&0xbb),
                None => false,
            }
        };
        let mut input = vec![0x11; 200];
        input[50] = 0xaa;
        input[150] = 0xbb;
        assert!(pred(&input));
        let min = minimize_bytes(&input, pred, 10_000);
        assert!(pred(&min), "minimized input must still fail");
        assert_eq!(min, vec![0xaa, 0xbb], "witness should be exactly two bytes");
    }

    #[test]
    fn already_minimal_inputs_survive() {
        let pred = |b: &[u8]| b == b"X";
        assert_eq!(minimize_bytes(b"X", pred, 100), b"X");
    }

    #[test]
    fn budget_bounds_work() {
        let calls = std::cell::Cell::new(0usize);
        let pred = |_: &[u8]| {
            calls.set(calls.get() + 1);
            true
        };
        let _ = minimize_bytes(&[1u8; 64], pred, 10);
        assert!(calls.get() <= 10);
    }
}
