//! Deterministic mutation engine: byte-level havoc over corpus seeds,
//! a dictionary of codec-hostile tokens, and structure-aware mutants
//! (decode → tweak a field → re-encode) that stay on the valid-input
//! path where the differential oracles bite.

use rand::{Rng, SeedableRng, StdRng};
use stalloc_core::{EditOp, StrategyChoice};
use stalloc_store::{
    decode_plan, decode_profile, decode_profile_delta, encode_plan, encode_profile,
    encode_profile_delta,
};

/// Tokens the byte mutator splices in: overlong and overflowing varints,
/// huge counts, and the values most likely to flip a decoder branch.
pub const DICTIONARY: &[&[u8]] = &[
    &[0x80, 0x00],                   // overlong (non-canonical) varint
    &[0xff; 11],                     // varint overflow
    &[0xff, 0xff, 0xff, 0xff, 0x7f], // huge 35-bit count
    &[0x80, 0x80, 0x80, 0x80, 0x10], // 2^32 — first value past u32
    &[0x00],
    &[0x01],
    &[0xff],
    // Trace-context JSON fragments: splicing these into a request frame
    // probes the wire trace-field decoder (malformed hex, wrong widths).
    br#""trace":{"trace_id":""#,
    br#""trace_id":"zz","#,
    br#""span_id":"0","#,
];

const INTERESTING_BYTES: &[u8] = &[0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff];

/// Largest mutant the engine will produce (keeps worst-case decode cost
/// per iteration bounded).
pub const MAX_MUTANT_LEN: usize = 1 << 20;

/// Deterministic byte mutator over a seeded xoshiro stream.
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform index into a non-empty collection.
    pub fn pick_index(&mut self, len: usize) -> usize {
        self.rng.gen_range(0..len.max(1))
    }

    pub fn gen_range_u32(&mut self, hi: u32) -> u32 {
        self.rng.gen_range(0..hi.max(1))
    }

    /// One mutant of `input`: usually a single havoc step, sometimes a
    /// short stack of them.
    pub fn mutate(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        let steps = if self.rng.gen_bool(0.25) {
            self.rng.gen_range(2usize..5)
        } else {
            1
        };
        for _ in 0..steps {
            self.mutate_once(&mut out);
        }
        out.truncate(MAX_MUTANT_LEN);
        out
    }

    fn mutate_once(&mut self, buf: &mut Vec<u8>) {
        if buf.is_empty() {
            buf.push(self.rng.gen_range(0u64..256) as u8);
            return;
        }
        match self.rng.gen_range(0u32..9) {
            0 => {
                // Flip one bit.
                let i = self.pick_index(buf.len());
                buf[i] ^= 1 << self.rng.gen_range(0u32..8);
            }
            1 => {
                // Overwrite with an interesting byte.
                let i = self.pick_index(buf.len());
                buf[i] = INTERESTING_BYTES[self.pick_index(INTERESTING_BYTES.len())];
            }
            2 => {
                // Truncate.
                buf.truncate(self.pick_index(buf.len()));
            }
            3 => {
                // Insert a few random bytes.
                let at = self.pick_index(buf.len() + 1);
                let n = self.rng.gen_range(1usize..9);
                let fresh: Vec<u8> = (0..n)
                    .map(|_| self.rng.gen_range(0u64..256) as u8)
                    .collect();
                buf.splice(at..at, fresh);
            }
            4 => {
                // Insert a dictionary token.
                let token = DICTIONARY[self.pick_index(DICTIONARY.len())];
                let at = self.pick_index(buf.len() + 1);
                buf.splice(at..at, token.iter().copied());
            }
            5 => {
                // Remove a chunk.
                let start = self.pick_index(buf.len());
                let len = self.rng.gen_range(1usize..17).min(buf.len() - start);
                buf.drain(start..start + len);
            }
            6 => {
                // Duplicate a chunk elsewhere (splice).
                let start = self.pick_index(buf.len());
                let len = self.rng.gen_range(1usize..17).min(buf.len() - start);
                let chunk: Vec<u8> = buf[start..start + len].to_vec();
                let at = self.pick_index(buf.len() + 1);
                buf.splice(at..at, chunk);
            }
            7 => {
                // Header tweak: magic / version bytes are the gatekeepers.
                let i = self.pick_index(buf.len().min(8));
                buf[i] = self.rng.gen_range(0u64..256) as u8;
            }
            _ => {
                // Overwrite a short run with random bytes.
                let start = self.pick_index(buf.len());
                let len = self.rng.gen_range(1usize..9).min(buf.len() - start);
                for b in &mut buf[start..start + len] {
                    *b = self.rng.gen_range(0u64..256) as u8;
                }
            }
        }
    }

    fn any_u64(&mut self, hi: u64) -> u64 {
        self.rng.gen_range(0..hi.max(1))
    }
}

/// Structure-aware `PROF` mutant: decode the seed, tweak one field, and
/// re-encode — always a *valid* stream, so the fixpoint and fingerprint
/// oracles (not just "never panic") get exercised. Returns `None` when
/// the seed itself does not decode.
pub fn structured_profile_mutant(m: &mut Mutator, seed: &[u8]) -> Option<Vec<u8>> {
    let mut p = decode_profile(seed).ok()?;
    match m.gen_range_u32(6) {
        0 => p.num_phases = m.any_u64(1 << 20) as u32,
        1 => p.window_len = m.any_u64(1 << 30),
        2 => {
            if !p.statics.is_empty() {
                let i = m.pick_index(p.statics.len());
                p.statics[i].size = m.any_u64(1 << 40);
            }
        }
        3 => {
            if !p.dynamics.is_empty() {
                let i = m.pick_index(p.dynamics.len());
                p.dynamics[i].ts = m.any_u64(1 << 30);
                p.dynamics[i].te = m.any_u64(1 << 30);
            }
        }
        4 => p.init_count = m.pick_index(p.statics.len() + 1),
        _ => {
            if !p.statics.is_empty() {
                let i = m.pick_index(p.statics.len());
                p.statics[i].ps = m.gen_range_u32(1 << 16);
                p.statics[i].pe = m.gen_range_u32(1 << 16);
            }
        }
    }
    Some(encode_profile(&p))
}

/// Structure-aware `STPL` mutant, mirroring [`structured_profile_mutant`]
/// for plans (including retagging the strategy byte, which drives the
/// v1/v2 differential oracle through every valid strategy index).
pub fn structured_plan_mutant(m: &mut Mutator, seed: &[u8]) -> Option<Vec<u8>> {
    let mut p = decode_plan(seed).ok()?;
    match m.gen_range_u32(5) {
        0 => p.pool_size = m.any_u64(1 << 40),
        1 => {
            let idx = m.pick_index(StrategyChoice::ALL.len()) as u8;
            p.stats.strategy = StrategyChoice::from_index(idx)?;
        }
        2 => {
            if !p.iter_allocs.is_empty() {
                let i = m.pick_index(p.iter_allocs.len());
                p.iter_allocs[i].size = m.any_u64(1 << 40);
                p.iter_allocs[i].offset = m.any_u64(1 << 40);
            }
        }
        3 => {
            p.stats.gap_inserted = m.pick_index(1 << 16);
            p.stats.peak_static_demand = m.any_u64(1 << 40);
        }
        _ => {
            if !p.init_allocs.is_empty() {
                let i = m.pick_index(p.init_allocs.len());
                p.init_allocs[i].ts = m.any_u64(1 << 30);
                p.init_allocs[i].te = m.any_u64(1 << 30);
            }
        }
    }
    Some(encode_plan(&p))
}

/// Structure-aware `PROF-DELTA` mutant: decode the edit script, tweak
/// one field or op, re-encode. The result is always a canonical stream
/// (the encoder is pure), so the fixpoint and — when the base
/// fingerprint survives untouched — the apply/fingerprint differential
/// oracles run, not just the rejection paths. Script *semantics* may no
/// longer fit the base (cursor overrun, underflowing resize); that is
/// the valid refusal path `apply_delta` owns.
pub fn structured_delta_mutant(m: &mut Mutator, seed: &[u8]) -> Option<Vec<u8>> {
    let mut d = decode_profile_delta(seed).ok()?;
    match m.gen_range_u32(6) {
        0 => d.window_len = m.any_u64(1 << 30),
        1 => d.num_phases = m.gen_range_u32(1 << 20),
        2 => d.init_count = m.pick_index(1 << 12),
        3 => {
            if !d.statics.is_empty() {
                let i = m.pick_index(d.statics.len());
                let signed = |m: &mut Mutator| m.any_u64(1 << 21) as i64 - (1 << 20);
                d.statics[i] = match m.gen_range_u32(4) {
                    0 => EditOp::Resize { dsize: signed(m) },
                    1 => EditOp::Retime {
                        dts: signed(m),
                        dte: signed(m),
                        dps: signed(m),
                        dpe: signed(m),
                    },
                    2 => EditOp::Remove {
                        count: 1 + m.pick_index(8),
                    },
                    _ => EditOp::Copy {
                        count: 1 + m.pick_index(8),
                    },
                };
            }
        }
        4 => {
            // Toggle the wholesale sections between inherit and replace.
            if d.instance_windows.is_some() {
                d.instance_windows = None;
            } else {
                d.instance_arrivals = match d.instance_arrivals {
                    Some(_) => None,
                    None => Some(Vec::new()),
                };
            }
        }
        _ => {
            // Stretch a Copy run: the cursor discipline is where
            // apply-time accounting bugs would live.
            if let Some(EditOp::Copy { count }) = d.statics.first_mut() {
                *count = count.saturating_add(1 + m.pick_index(4));
            } else {
                d.statics.insert(0, EditOp::Copy { count: 1 });
            }
        }
    }
    Some(encode_profile_delta(&d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let input = b"PROF\x01\x00hello world".to_vec();
        let a: Vec<Vec<u8>> = {
            let mut m = Mutator::new(7);
            (0..50).map(|_| m.mutate(&input)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut m = Mutator::new(7);
            (0..50).map(|_| m.mutate(&input)).collect()
        };
        assert_eq!(a, b);
        let mut m = Mutator::new(8);
        let c: Vec<Vec<u8>> = (0..50).map(|_| m.mutate(&input)).collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn mutants_stay_bounded() {
        let mut m = Mutator::new(1);
        let input = vec![0xab; 1000];
        for _ in 0..500 {
            assert!(m.mutate(&input).len() <= MAX_MUTANT_LEN);
        }
    }
}
