//! Differential oracles over the three strict decoders.
//!
//! "Never panic" is the floor; each oracle also enforces equivalences
//! the rest of the system silently relies on:
//!
//! * **Fixpoint** — the codecs are canonical, so any accepted stream
//!   must re-encode to exactly the bytes that were decoded.
//! * **Fingerprint** — the `PROF` body *is* the fingerprint walk, so
//!   hashing the raw body must agree with hashing the decoded value
//!   (`fingerprint_job_body(bytes) == fingerprint_job(decoded)`); the
//!   server's cache-hit-without-decode path depends on this.
//! * **Version interop** — a v1 `STPL` stream is a Baseline-tagged v2
//!   stream minus the strategy byte; downgrading must round-trip both
//!   directions, never silently diverge.
//!
//! An `Err` from a check is an **oracle violation** (a bug); a typed
//! decode error is the expected rejection path and only feeds coverage.

use crate::coverage::CoverageLedger;
use stalloc_core::{
    apply_delta, fingerprint_job, fingerprint_job_body, fingerprint_profile, Fingerprint,
    ProfiledRequests, StrategyChoice, SynthConfig,
};
use stalloc_served::{read_frame, write_frame, FrameError};
use stalloc_store::{
    decode_plan, decode_profile, decode_profile_delta, delta_base_fingerprint, encode_plan,
    encode_profile, encode_profile_delta, profile_body, CodecError,
};
use std::io::Cursor;
use std::sync::OnceLock;

/// Frame cap used by the frame-layer fuzz target (small enough that the
/// committed `Oversized` seed stays a handful of digits).
pub const FRAME_FUZZ_MAX: usize = 1 << 20;

/// `CodecError` variants the `PROF`/`STPL` corpora must exercise.
pub const REQUIRED_CODEC_VARIANTS: &[&str] = CodecError::VARIANT_NAMES;

/// `FrameError` variants the frame corpus must exercise (`Io` excluded:
/// an in-memory cursor cannot fail).
pub const REQUIRED_FRAME_VARIANTS: &[&str] =
    &["BadHeader", "Oversized", "Truncated", "MissingTerminator"];

/// The `(variant, context)` pair of a typed rejection — the coverage key.
pub fn codec_error_key(e: &CodecError) -> (&'static str, Option<&'static str>) {
    (e.variant_name(), e.context())
}

/// `PROF` oracle: typed rejection, or fixpoint + fingerprint agreement.
pub fn check_prof(bytes: &[u8], cov: &mut CoverageLedger) -> Result<(), String> {
    match decode_profile(bytes) {
        Err(e) => {
            let (v, c) = codec_error_key(&e);
            cov.record_error(v, c);
            Ok(())
        }
        Ok(p) => {
            cov.record_ok();
            let re = encode_profile(&p);
            if re != bytes {
                return Err(format!(
                    "PROF decode→re-encode is not a fixpoint ({} bytes in, {} out)",
                    bytes.len(),
                    re.len()
                ));
            }
            let body = profile_body(bytes)
                .map_err(|e| format!("profile_body rejected a decodable stream: {e}"))?;
            let config = SynthConfig::default();
            let by_body = fingerprint_job_body(body, &config);
            let by_value = fingerprint_job(&p, &config);
            if by_body != by_value {
                return Err(format!(
                    "fingerprint divergence: raw body {} vs decoded walk {}",
                    by_body.to_hex(),
                    by_value.to_hex()
                ));
            }
            Ok(())
        }
    }
}

/// The zoo bases the delta oracle can apply accepted scripts against,
/// keyed by their config-free fingerprint. Structured mutants keep the
/// seed's base fingerprint, so a healthy run applies plenty of scripts.
fn zoo_bases() -> &'static Vec<(Fingerprint, ProfiledRequests)> {
    static BASES: OnceLock<Vec<(Fingerprint, ProfiledRequests)>> = OnceLock::new();
    BASES.get_or_init(|| {
        (0..4)
            .map(|i| {
                let p = crate::corpus::zoo_profile(i);
                (fingerprint_profile(&p), p)
            })
            .collect()
    })
}

/// `PROF-DELTA` oracle: typed rejection, or fixpoint + header-peek
/// agreement; when the script names a base we hold (the zoo), it is
/// applied, and the applied profile must fingerprint identically through
/// both implementations (raw `PROF` body walk vs decoded value) — the
/// equivalence the server's delta path banks on when it caches the
/// applied profile under its fingerprint.
pub fn check_delta(bytes: &[u8], cov: &mut CoverageLedger) -> Result<(), String> {
    match decode_profile_delta(bytes) {
        Err(e) => {
            let (v, c) = codec_error_key(&e);
            cov.record_error(v, c);
            Ok(())
        }
        Ok(d) => {
            cov.record_ok();
            let re = encode_profile_delta(&d);
            if re != bytes {
                return Err(format!(
                    "PROF-DELTA decode→re-encode is not a fixpoint ({} bytes in, {} out)",
                    bytes.len(),
                    re.len()
                ));
            }
            let peek = delta_base_fingerprint(bytes)
                .map_err(|e| format!("header peek rejected a decodable stream: {e}"))?;
            if peek != d.base {
                return Err(format!(
                    "header peek {} disagrees with the decoded base {}",
                    peek.to_hex(),
                    d.base.to_hex()
                ));
            }
            if let Some((_, base)) = zoo_bases().iter().find(|(fp, _)| *fp == d.base) {
                // Script semantics may still reject (cursor overrun,
                // underflowing resize, ...) — that is the valid refusal
                // path, not a violation.
                if let Ok(applied) = apply_delta(base, &d) {
                    let config = SynthConfig::default();
                    let full = encode_profile(&applied);
                    let body = profile_body(&full)
                        .map_err(|e| format!("applied delta re-encodes unreadably: {e}"))?;
                    let by_body = fingerprint_job_body(body, &config);
                    let by_value = fingerprint_job(&applied, &config);
                    if by_body != by_value {
                        return Err(format!(
                            "applied-delta fingerprint divergence: raw body {} vs decoded walk {}",
                            by_body.to_hex(),
                            by_value.to_hex()
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

/// `STPL` oracle: typed rejection, or fixpoint (v2) / downgrade
/// round-trip (v1), plus the v2→v1 differential on Baseline plans.
pub fn check_stpl(bytes: &[u8], cov: &mut CoverageLedger) -> Result<(), String> {
    match decode_plan(bytes) {
        Err(e) => {
            let (v, c) = codec_error_key(&e);
            cov.record_error(v, c);
            Ok(())
        }
        Ok(plan) => {
            cov.record_ok();
            let version = u16::from_le_bytes([bytes[4], bytes[5]]);
            let v2 = encode_plan(&plan);
            match version {
                2 => {
                    if v2 != bytes {
                        return Err(format!(
                            "STPL v2 decode→re-encode is not a fixpoint ({} bytes in, {} out)",
                            bytes.len(),
                            v2.len()
                        ));
                    }
                }
                1 => {
                    if plan.stats.strategy != StrategyChoice::Baseline {
                        return Err(format!(
                            "v1 stream decoded to strategy {:?}, not Baseline",
                            plan.stats.strategy
                        ));
                    }
                    let down = downgrade_to_v1(&v2)
                        .ok_or("could not re-derive the v1 form of a decoded v1 stream")?;
                    if down != bytes {
                        return Err("v1 stream != downgrade(re-encode(decode(v1)))".into());
                    }
                }
                other => return Err(format!("decoder accepted unknown version {other}")),
            }
            // Differential: any valid Baseline v2 stream must survive the
            // v1 downgrade and decode to the identical plan.
            if version == 2 && plan.stats.strategy == StrategyChoice::Baseline {
                let v1 = downgrade_to_v1(bytes)
                    .ok_or("could not derive the v1 form of a valid v2 stream")?;
                match decode_plan(&v1) {
                    Ok(p1) if p1 == plan => {}
                    Ok(_) => return Err("v1 downgrade decodes to a different plan".into()),
                    Err(e) => {
                        return Err(format!("v1 downgrade of a valid v2 stream rejected: {e}"))
                    }
                }
            }
            Ok(())
        }
    }
}

/// v2 `STPL` stream → its v1 form: drop the strategy varint (the field
/// v1 predates, right after `pool_size`) and rewind the header version.
/// Returns `None` if the stream is too short or a varint never
/// terminates (only possible on undecodable input).
pub fn downgrade_to_v1(v2: &[u8]) -> Option<Vec<u8>> {
    if v2.len() < 7 {
        return None;
    }
    let skip_varint = |mut pos: usize| -> Option<usize> {
        loop {
            let b = *v2.get(pos)?;
            pos += 1;
            if b & 0x80 == 0 {
                return Some(pos);
            }
        }
    };
    let strat_start = skip_varint(6)?; // past magic+version+pool_size
    let strat_end = skip_varint(strat_start)?;
    let mut out = Vec::with_capacity(v2.len() - (strat_end - strat_start) + 1);
    out.extend_from_slice(&v2[..4]);
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&v2[6..strat_start]);
    out.extend_from_slice(&v2[strat_end..]);
    Some(out)
}

/// Frame oracle: typed rejection, or the consumed prefix re-frames to
/// exactly itself (leading-zero headers are rejected upstream precisely
/// so this holds).
pub fn check_frame(bytes: &[u8], cov: &mut CoverageLedger) -> Result<(), String> {
    let mut cur = Cursor::new(bytes);
    match read_frame(&mut cur, FRAME_FUZZ_MAX) {
        Ok(None) => {
            // Clean EOF at a frame boundary (only the empty stream).
            cov.record_ok();
            Ok(())
        }
        Ok(Some(payload)) => {
            cov.record_ok();
            let consumed = cur.position() as usize;
            let mut re = Vec::new();
            write_frame(&mut re, &payload).map_err(|e| format!("re-framing failed: {e}"))?;
            if re != bytes[..consumed] {
                return Err(format!(
                    "frame decode→re-encode is not a fixpoint ({} bytes consumed, {} re-framed)",
                    consumed,
                    re.len()
                ));
            }
            Ok(())
        }
        Err(e) => {
            if matches!(e, FrameError::Io(_)) {
                return Err(format!("in-memory cursor produced an i/o error: {e}"));
            }
            cov.record_error(e.variant_name(), None);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stalloc_core::{profile_trace, synthesize};
    use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

    fn sample_profile() -> stalloc_core::ProfiledRequests {
        let trace = TrainJob::new(
            ModelSpec::gpt2_345m(),
            ParallelConfig::new(1, 2, 1),
            OptimConfig::naive(),
        )
        .with_mbs(1)
        .with_seq(128)
        .with_microbatches(2)
        .with_iterations(1)
        .build_trace()
        .unwrap();
        profile_trace(&trace, 1).unwrap()
    }

    #[test]
    fn valid_artifacts_pass_every_oracle() {
        let profile = sample_profile();
        let plan = synthesize(&profile, &SynthConfig::default());
        let mut cov = CoverageLedger::new();
        check_prof(&encode_profile(&profile), &mut cov).unwrap();
        check_stpl(&encode_plan(&plan), &mut cov).unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, b"{\"Ping\":null}").unwrap();
        check_frame(&framed, &mut cov).unwrap();
        assert_eq!(cov.ok_decodes(), 3);
    }

    #[test]
    fn downgrade_round_trips_through_the_decoder() {
        let profile = sample_profile();
        let plan = synthesize(&profile, &SynthConfig::default());
        assert_eq!(plan.stats.strategy, StrategyChoice::Baseline);
        let v2 = encode_plan(&plan);
        let v1 = downgrade_to_v1(&v2).unwrap();
        assert_eq!(v1.len(), v2.len() - 1, "strategy byte dropped");
        assert_eq!(decode_plan(&v1).unwrap(), plan);
        // And the oracle accepts the v1 form directly.
        let mut cov = CoverageLedger::new();
        check_stpl(&v1, &mut cov).unwrap();
    }

    #[test]
    fn rejections_feed_coverage_not_violations() {
        let mut cov = CoverageLedger::new();
        check_prof(b"JUNK", &mut cov).unwrap();
        check_stpl(b"STPL\x03\x00", &mut cov).unwrap();
        check_frame(b"hello\n", &mut cov).unwrap();
        assert_eq!(cov.variants(), 3);
    }

    /// A real zoo delta passes the oracle and reaches the apply branch
    /// (its base fingerprint is one the oracle holds).
    #[test]
    fn zoo_deltas_pass_the_delta_oracle_and_apply() {
        use stalloc_core::diff_profiles;
        let base = crate::corpus::zoo_profile(0);
        let mut next = base.clone();
        if let Some(r) = next.statics.last_mut() {
            r.size += 4096;
        }
        let delta = diff_profiles(&base, &next);
        assert!(zoo_bases().iter().any(|(fp, _)| *fp == delta.base));
        let mut cov = CoverageLedger::new();
        check_delta(&encode_profile_delta(&delta), &mut cov).unwrap();
        assert_eq!(cov.ok_decodes(), 1);
        check_delta(b"JUNK", &mut cov).unwrap();
        assert_eq!(cov.variants(), 1, "bad magic fed coverage");
    }
}
