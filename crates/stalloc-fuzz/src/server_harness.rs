//! Loopback server harness: fires mutated request streams at a live
//! `PlanServer` and checks *recovery*, not just rejection — a worker
//! that rejects a malformed frame must answer the next well-formed
//! request correctly, on a fresh connection (frame-level corruption
//! closes the stream) or on the same one (request-level corruption keeps
//! it open).

use crate::mutate::Mutator;
use rand::{Rng, SeedableRng, StdRng};
use stalloc_core::wire::{PlanEncoding, PlanRequest, PlanResponse, WireErrorKind};
use stalloc_core::{diff_profiles, fingerprint_job, SynthConfig};
use stalloc_served::{read_frame, write_frame, PlanServer, ServeConfig};
use stalloc_store::{encode_profile, encode_profile_delta};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

/// Response shapes the harness must observe for full coverage: liveness,
/// real planning, and each typed rejection class the server can emit at
/// this trust boundary.
pub const REQUIRED_RESPONSES: &[&str] = &[
    "Pong",
    "Plan",
    "Metrics",
    "Trace",
    "NotFound",
    "Error:BadFrame",
    "Error:Oversized",
    "Error:BadRequest",
];

/// Per-request cap the harness server runs with (small, so an oversized
/// probe is cheap to express).
const HARNESS_MAX_FRAME: usize = 1 << 20;

const IO_TIMEOUT: Duration = Duration::from_secs(5);

pub struct ServerFuzzOutcome {
    pub executed: u64,
    pub violations: Vec<String>,
    pub missing: Vec<String>,
}

/// Runs the loopback harness for `iters` scenarios (capped at 256 — each
/// is a real TCP round trip). Deterministic for a given seed.
pub fn fuzz_server(iters: u64, seed: u64) -> ServerFuzzOutcome {
    let handle = match PlanServer::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_frame: HARNESS_MAX_FRAME,
        store_dir: None,
        lru_capacity: 16,
        poll_tick: Duration::from_millis(10),
        idle_timeout: Duration::from_secs(10),
        trace_log: None,
        trace_log_max_bytes: None,
        slowest: 16,
        metrics_addr: None,
    }) {
        Ok(h) => h,
        Err(e) => {
            return ServerFuzzOutcome {
                executed: 0,
                violations: vec![format!("server failed to start: {e}")],
                missing: REQUIRED_RESPONSES.iter().map(|s| s.to_string()).collect(),
            }
        }
    };
    let addr = handle.addr();

    // One tiny job, synthesized once server-side then a cache hit.
    let profile = crate::corpus::zoo_profile(0);
    let config = SynthConfig::default();
    let expected_fp = fingerprint_job(&profile, &config).to_hex();
    let prof_bytes = encode_profile(&profile);
    // Deterministic trace ids: the seed frames carry a wire trace
    // context so mutation probes the trace-field decode path too.
    let ids = stalloc_obs::IdGen::seeded(seed ^ 0x7ace_7ace);
    let plan_req = serde_json::to_string(&PlanRequest::Plan {
        profile: profile.clone(),
        config,
        encoding: Some(PlanEncoding::Json),
        trace: Some(ids.root().child(&ids)),
    })
    .expect("request serializes")
    .into_bytes();
    let mut framed_plan_req = Vec::new();
    write_frame(&mut framed_plan_req, &plan_req).expect("vec write");
    // Every verb the protocol knows is a mutation seed: corruption near a
    // short `Metrics`/`Stats`/`Ping` frame probes different decoder
    // branches than the big `Plan` payload does.
    // The delta family member the PlanDelta scenarios plan: a couple of
    // grown activations against the base profile above.
    let next_profile = {
        let mut p = profile.clone();
        for r in p.statics.iter_mut().skip(p.init_count).take(2) {
            r.size += 4096;
        }
        p
    };
    let delta_bytes = encode_profile_delta(&diff_profiles(&profile, &next_profile));
    let mut seeds: Vec<Vec<u8>> = vec![framed_plan_req];
    for verb in [
        PlanRequest::Metrics,
        PlanRequest::Stats,
        PlanRequest::Ping,
        PlanRequest::TraceGet {
            trace_id: ids.root().trace_hex(),
        },
        // The PlanDelta header + its PRFD frame as one stream: mutation
        // probes both the header decode and the edit-script decode.
        PlanRequest::PlanDelta {
            config,
            encoding: Some(PlanEncoding::Json),
            bytes: delta_bytes.len() as u64,
            trace: None,
        },
    ] {
        let mut framed = Vec::new();
        let payload = serde_json::to_string(&verb).expect("verb serializes");
        write_frame(&mut framed, payload.as_bytes()).expect("vec write");
        if matches!(verb, PlanRequest::PlanDelta { .. }) {
            write_frame(&mut framed, &delta_bytes).expect("vec write");
        }
        seeds.push(framed);
    }

    let n = iters.clamp(1, 256);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e4e_5e4e);
    let mut mutator = Mutator::new(seed ^ 0x00ba_df00);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut violations = Vec::new();

    for i in 0..n {
        let scenario = rng.gen_range(0u32..10);
        let result = match scenario {
            0 => garbage_then_recover(addr, &mut mutator, &seeds, &mut seen),
            1 => bad_payload_is_typed(addr, &mut seen),
            2 => oversized_header_is_typed(addr, &mut seen),
            3 => corrupt_profile_keeps_connection(addr, &prof_bytes, &config, &mut seen),
            4 => valid_plan_request(addr, &plan_req, &expected_fp, &mut seen),
            5 => metrics_is_consistent(addr, &plan_req, &mut seen),
            6 => valid_profile_bin(addr, &prof_bytes, &config, &expected_fp, &mut seen),
            7 => plan_delta_patches(
                addr,
                &plan_req,
                &next_profile,
                &delta_bytes,
                &config,
                &mut seen,
            ),
            8 => delta_unknown_base_is_not_found(addr, &profile, &next_profile, &config, &mut seen),
            _ => trace_get_finds_the_span(addr, &profile, &config, &ids, &mut seen),
        };
        if let Err(v) = result {
            violations.push(format!("iter {i} scenario {scenario}: {v}"));
            if violations.len() >= 8 {
                break;
            }
        }
    }

    handle.shutdown();
    let missing = REQUIRED_RESPONSES
        .iter()
        .filter(|r| !seen.contains(**r))
        .map(|r| r.to_string())
        .collect();
    ServerFuzzOutcome {
        executed: n,
        violations,
        missing,
    }
}

fn connect(addr: SocketAddr) -> Result<TcpStream, String> {
    let s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    s.set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    Ok(s)
}

fn read_response(s: &mut TcpStream) -> Result<Option<PlanResponse>, String> {
    match read_frame(s, HARNESS_MAX_FRAME) {
        Ok(Some(payload)) => {
            let text = std::str::from_utf8(&payload).map_err(|e| e.to_string())?;
            let resp: PlanResponse =
                serde_json::from_str(text).map_err(|e| format!("unparseable response: {e}"))?;
            Ok(Some(resp))
        }
        Ok(None) => Ok(None),
        Err(e) => Err(format!("reading response: {e}")),
    }
}

fn record(seen: &mut BTreeSet<String>, resp: &PlanResponse) {
    let label = match resp {
        PlanResponse::Pong => "Pong".to_string(),
        PlanResponse::Plan { .. } => "Plan".to_string(),
        PlanResponse::PlanBin { .. } => "PlanBin".to_string(),
        PlanResponse::NotFound { .. } => "NotFound".to_string(),
        PlanResponse::Stats { .. } => "Stats".to_string(),
        PlanResponse::Metrics { .. } => "Metrics".to_string(),
        PlanResponse::Trace { .. } => "Trace".to_string(),
        PlanResponse::Error { kind, .. } => format!("Error:{kind:?}"),
    };
    seen.insert(label);
}

fn ping(s: &mut TcpStream, seen: &mut BTreeSet<String>) -> Result<(), String> {
    let payload = serde_json::to_string(&PlanRequest::Ping)
        .expect("ping serializes")
        .into_bytes();
    write_frame(s, &payload).map_err(|e| format!("sending ping: {e}"))?;
    match read_response(s)? {
        Some(PlanResponse::Pong) => {
            seen.insert("Pong".into());
            Ok(())
        }
        Some(other) => Err(format!("ping answered with {other:?}")),
        None => Err("connection closed instead of Pong".into()),
    }
}

/// Scenario: a mutated request stream. Any typed error, valid response,
/// or connection drop is acceptable *for this connection* — the oracle
/// is that a fresh connection immediately after must serve Ping.
fn garbage_then_recover(
    addr: SocketAddr,
    mutator: &mut Mutator,
    seeds: &[Vec<u8>],
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let seed = &seeds[mutator.pick_index(seeds.len())];
    let garbage = mutator.mutate(seed);
    if let Ok(mut s) = connect(addr) {
        let _ = s.write_all(&garbage);
        let _ = s.shutdown(Shutdown::Write);
        // Best-effort read: the server may answer typed, or the close
        // may race the response away (RST after unread input). Either
        // way the stream is done; what matters is recovery below.
        if let Ok(Some(resp)) = read_response(&mut s) {
            record(seen, &resp);
        }
    }
    let mut fresh = connect(addr)?;
    ping(&mut fresh, seen)
        .map_err(|e| format!("worker did not recover after a malformed stream: {e}"))
}

/// Scenario: a well-formed frame whose payload is not a request. The
/// server consumes the whole frame, so the typed `BadFrame` answer is
/// deterministic; the connection then closes (stream unsynchronized).
fn bad_payload_is_typed(addr: SocketAddr, seen: &mut BTreeSet<String>) -> Result<(), String> {
    let mut s = connect(addr)?;
    write_frame(&mut s, b"this is not a request").map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(
            resp @ PlanResponse::Error {
                kind: WireErrorKind::BadFrame,
                ..
            },
        ) => {
            record(seen, &resp);
        }
        other => return Err(format!("expected BadFrame error, got {other:?}")),
    }
    // The stream must be closed now.
    match read_response(&mut s) {
        Ok(None) | Err(_) => {}
        Ok(Some(r)) => return Err(format!("connection stayed open after BadFrame: {r:?}")),
    }
    let mut fresh = connect(addr)?;
    ping(&mut fresh, seen)
}

/// Scenario: a header declaring more than the server's frame cap. The
/// server rejects before reading the payload — sending *only* the header
/// keeps the socket drained, so the typed answer is deterministic.
fn oversized_header_is_typed(addr: SocketAddr, seen: &mut BTreeSet<String>) -> Result<(), String> {
    let mut s = connect(addr)?;
    s.write_all(format!("{}\n", HARNESS_MAX_FRAME + 1).as_bytes())
        .map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(
            resp @ PlanResponse::Error {
                kind: WireErrorKind::Oversized,
                ..
            },
        ) => {
            record(seen, &resp);
        }
        other => return Err(format!("expected Oversized error, got {other:?}")),
    }
    let mut fresh = connect(addr)?;
    ping(&mut fresh, seen)
}

/// Scenario: a `ProfileBin` header whose follow-up frame is a corrupt
/// `PROF` stream. This is *request*-level corruption — framing stayed
/// intact — so the typed answer is `BadRequest` and the **same**
/// connection must serve the next request.
fn corrupt_profile_keeps_connection(
    addr: SocketAddr,
    prof_bytes: &[u8],
    config: &SynthConfig,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let mut corrupt = prof_bytes.to_vec();
    corrupt[4] = 0xff; // version 0xff__: UnsupportedVersion, guaranteed
    let header = serde_json::to_string(&PlanRequest::ProfileBin {
        config: *config,
        encoding: Some(PlanEncoding::Json),
        bytes: corrupt.len() as u64,
        trace: None,
    })
    .expect("header serializes")
    .into_bytes();

    let mut s = connect(addr)?;
    write_frame(&mut s, &header).map_err(|e| e.to_string())?;
    write_frame(&mut s, &corrupt).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(
            resp @ PlanResponse::Error {
                kind: WireErrorKind::BadRequest,
                ..
            },
        ) => {
            record(seen, &resp);
        }
        other => return Err(format!("expected BadRequest error, got {other:?}")),
    }
    // In-connection recovery: same socket, next request answers.
    ping(&mut s, seen).map_err(|e| format!("connection did not survive a BadRequest: {e}"))
}

/// Scenario: a valid JSON `Plan` request; the response fingerprint must
/// match the locally computed one (the client-side trust check).
fn valid_plan_request(
    addr: SocketAddr,
    plan_req: &[u8],
    expected_fp: &str,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let mut s = connect(addr)?;
    write_frame(&mut s, plan_req).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => {
            if let PlanResponse::Plan { fingerprint, .. } = &resp {
                if fingerprint != expected_fp {
                    return Err(format!(
                        "fingerprint mismatch: server {fingerprint}, local {expected_fp}"
                    ));
                }
            }
            record(seen, &resp);
            Ok(())
        }
        other => Err(format!("expected Plan response, got {other:?}")),
    }
}

/// Scenario: a `Plan` then a `Metrics` on the *same* keep-alive
/// connection. The worker records the plan's span before it reads the
/// next frame, so the metrics snapshot must already include it — and the
/// per-tier histogram counts can never run ahead of the counters they
/// mirror (spans are recorded strictly after the counter bump).
fn metrics_is_consistent(
    addr: SocketAddr,
    plan_req: &[u8],
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let mut s = connect(addr)?;
    write_frame(&mut s, plan_req).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => record(seen, &resp),
        other => return Err(format!("expected Plan response, got {other:?}")),
    }
    let payload = serde_json::to_string(&PlanRequest::Metrics)
        .expect("metrics serializes")
        .into_bytes();
    write_frame(&mut s, &payload).map_err(|e| e.to_string())?;
    let metrics = match read_response(&mut s)? {
        Some(resp @ PlanResponse::Metrics { .. }) => {
            record(seen, &resp);
            match resp {
                PlanResponse::Metrics { metrics } => metrics,
                _ => unreachable!(),
            }
        }
        other => return Err(format!("expected Metrics response, got {other:?}")),
    };
    let stats = metrics.stats;
    let tier_sum: u64 = metrics.tiers.iter().map(|t| t.hist.total()).sum();
    let counter_sum =
        stats.lru_hits + stats.store_hits + stats.misses + stats.coalesced + stats.delta_patched;
    if tier_sum == 0 {
        return Err("tier histograms empty right after a served Plan".into());
    }
    if tier_sum > counter_sum {
        return Err(format!(
            "tier histogram counts ({tier_sum}) ran ahead of the \
             hit/miss counters ({counter_sum})"
        ));
    }
    // The span ring must have retained something, and every snapshot it
    // hands out carries one slot per phase.
    if metrics.slowest.is_empty() {
        return Err("no slowest spans retained after a served Plan".into());
    }
    for span in &metrics.slowest {
        if span.phase_micros.len() != stalloc_obs::PHASE_COUNT {
            return Err(format!(
                "span #{} carries {} phase slots, expected {}",
                span.seq,
                span.phase_micros.len(),
                stalloc_obs::PHASE_COUNT
            ));
        }
    }
    Ok(())
}

/// Scenario: the same job over the binary profile path.
fn valid_profile_bin(
    addr: SocketAddr,
    prof_bytes: &[u8],
    config: &SynthConfig,
    expected_fp: &str,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let header = serde_json::to_string(&PlanRequest::ProfileBin {
        config: *config,
        encoding: Some(PlanEncoding::Json),
        bytes: prof_bytes.len() as u64,
        trace: None,
    })
    .expect("header serializes")
    .into_bytes();
    let mut s = connect(addr)?;
    write_frame(&mut s, &header).map_err(|e| e.to_string())?;
    write_frame(&mut s, prof_bytes).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => {
            if let PlanResponse::Plan { fingerprint, .. } = &resp {
                if fingerprint != expected_fp {
                    return Err(format!(
                        "fingerprint mismatch over binary path: server {fingerprint}, local {expected_fp}"
                    ));
                }
            }
            record(seen, &resp);
            Ok(())
        }
        other => Err(format!("expected Plan response, got {other:?}")),
    }
}

/// Scenario: a `Plan` for the base (seeding the server's base plan and
/// profile), then a `PlanDelta` edit script on the *same* connection.
/// The answer must be a `Plan` whose fingerprint matches the locally
/// computed fingerprint of the *next* profile — the client-side trust
/// check that the server applied the script to the right base.
fn plan_delta_patches(
    addr: SocketAddr,
    plan_req: &[u8],
    next_profile: &stalloc_core::ProfiledRequests,
    delta_bytes: &[u8],
    config: &SynthConfig,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let mut s = connect(addr)?;
    write_frame(&mut s, plan_req).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => record(seen, &resp),
        other => {
            return Err(format!(
                "expected Plan response for the base, got {other:?}"
            ))
        }
    }
    let header = serde_json::to_string(&PlanRequest::PlanDelta {
        config: *config,
        encoding: Some(PlanEncoding::Json),
        bytes: delta_bytes.len() as u64,
        trace: None,
    })
    .expect("header serializes")
    .into_bytes();
    write_frame(&mut s, &header).map_err(|e| e.to_string())?;
    write_frame(&mut s, delta_bytes).map_err(|e| e.to_string())?;
    let expected = fingerprint_job(next_profile, config).to_hex();
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => {
            if let PlanResponse::Plan { fingerprint, .. } = &resp {
                if *fingerprint != expected {
                    return Err(format!(
                        "delta answered fingerprint {fingerprint}, locally computed {expected}"
                    ));
                }
            }
            record(seen, &resp);
        }
        other => return Err(format!("expected a patched Plan response, got {other:?}")),
    }
    // The connection stays synchronized after the two-frame verb.
    ping(&mut s, seen).map_err(|e| format!("connection did not survive a PlanDelta: {e}"))
}

/// Scenario: an edit script against a base the server has never seen.
/// The typed answer is `NotFound` carrying the base fingerprint — the
/// signal a real client turns into a transparent full retry — and the
/// same connection must serve the next request.
fn delta_unknown_base_is_not_found(
    addr: SocketAddr,
    profile: &stalloc_core::ProfiledRequests,
    next_profile: &stalloc_core::ProfiledRequests,
    config: &SynthConfig,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    // A stranger base: a profile variant never sent to the server.
    let mut stranger = profile.clone();
    if let Some(r) = stranger.statics.first_mut() {
        r.size += 1;
    }
    let delta = diff_profiles(&stranger, next_profile);
    let bytes = encode_profile_delta(&delta);
    let header = serde_json::to_string(&PlanRequest::PlanDelta {
        config: *config,
        encoding: Some(PlanEncoding::Json),
        bytes: bytes.len() as u64,
        trace: None,
    })
    .expect("header serializes")
    .into_bytes();
    let mut s = connect(addr)?;
    write_frame(&mut s, &header).map_err(|e| e.to_string())?;
    write_frame(&mut s, &bytes).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::NotFound { .. }) => {
            if let PlanResponse::NotFound { fingerprint } = &resp {
                let expected = delta.base.to_hex();
                if *fingerprint != expected {
                    return Err(format!(
                        "NotFound names {fingerprint}, sent base {expected}"
                    ));
                }
            }
            record(seen, &resp);
        }
        other => {
            return Err(format!(
                "expected NotFound for a stranger base, got {other:?}"
            ))
        }
    }
    ping(&mut s, seen).map_err(|e| format!("connection did not survive a NotFound: {e}"))
}

/// Scenario: a `Plan` carrying a fresh wire trace context, then a
/// `TraceGet` for that trace id on the *same* connection. The worker
/// records the span — propagated ids intact, not server-minted — before
/// reading the next frame, so the `Trace` response must already hold
/// exactly that span.
fn trace_get_finds_the_span(
    addr: SocketAddr,
    profile: &stalloc_core::ProfiledRequests,
    config: &SynthConfig,
    ids: &stalloc_obs::IdGen,
    seen: &mut BTreeSet<String>,
) -> Result<(), String> {
    let ctx = ids.root().child(ids);
    let req = serde_json::to_string(&PlanRequest::Plan {
        profile: profile.clone(),
        config: *config,
        encoding: Some(PlanEncoding::Json),
        trace: Some(ctx),
    })
    .expect("request serializes")
    .into_bytes();
    let mut s = connect(addr)?;
    write_frame(&mut s, &req).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Plan { .. }) => record(seen, &resp),
        other => return Err(format!("expected Plan response, got {other:?}")),
    }
    let tg = serde_json::to_string(&PlanRequest::TraceGet {
        trace_id: ctx.trace_hex(),
    })
    .expect("trace-get serializes")
    .into_bytes();
    write_frame(&mut s, &tg).map_err(|e| e.to_string())?;
    match read_response(&mut s)? {
        Some(resp @ PlanResponse::Trace { .. }) => {
            if let PlanResponse::Trace { trace_id, spans } = &resp {
                if *trace_id != ctx.trace_hex() {
                    return Err(format!(
                        "Trace echoed id {trace_id}, asked for {}",
                        ctx.trace_hex()
                    ));
                }
                if spans.is_empty() {
                    return Err("TraceGet found no span for a just-served traced Plan".into());
                }
                for span in spans {
                    if span.trace_id != ctx.trace_hex() || span.span_id != ctx.span_hex() {
                        return Err(format!(
                            "server recorded ids {}/{} instead of the propagated {}/{}",
                            span.trace_id,
                            span.span_id,
                            ctx.trace_hex(),
                            ctx.span_hex()
                        ));
                    }
                }
            }
            record(seen, &resp);
            Ok(())
        }
        other => Err(format!("expected Trace response, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_harness_passes_with_full_coverage() {
        let outcome = fuzz_server(48, 7);
        assert_eq!(outcome.violations, Vec::<String>::new());
        assert_eq!(outcome.missing, Vec::<String>::new());
        assert_eq!(outcome.executed, 48);
    }
}
