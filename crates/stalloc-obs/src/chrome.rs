//! Chrome trace-event exporter: renders span snapshots — client,
//! server, or both — as the JSON array `chrome://tracing` and Perfetto
//! load (`[{"ph":"X","ts":…,"dur":…,"pid":…,"tid":…,"name":…,
//! "args":{…}}]`).
//!
//! Span records carry durations, not wall-clock timestamps (the hot
//! path never reads a clock it doesn't need), so the exporter *lays
//! out* a synthetic timeline in relative microseconds: each lane is a
//! `pid`, spans on a lane sit back-to-back, and a span's phases nest
//! inside it as child slices laid in wall-clock order. For a merged
//! client+server request, [`merged_request_timeline`] centers the
//! server span inside the client's `await` slice and reports the
//! leftover (`client await − server total`, i.e. two network legs plus
//! accept-queue residency) as `net_queue_micros`.

use crate::client::{ClientPhase, ClientSpanSnapshot};
use crate::span::{Phase, SpanSnapshot};
use serde::Value;

/// The `pid` lane merged timelines put the client on.
pub const CLIENT_PID: u64 = 1;
/// The `pid` lane merged timelines put the server on.
pub const SERVER_PID: u64 = 2;

/// A span reduced to what the exporter needs: a name, a total, the
/// entered phases in wall-clock order, and string args for the root
/// slice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanView {
    /// Root slice name (the request verb).
    pub name: String,
    /// Root slice duration, microseconds.
    pub total_micros: u64,
    /// Entered phases `(name, micros)` in wall-clock order.
    pub phases: Vec<(String, u64)>,
    /// `args` entries on the root slice (trace ids, tier, seq, ...).
    pub args: Vec<(String, String)>,
}

impl From<&SpanSnapshot> for SpanView {
    fn from(s: &SpanSnapshot) -> Self {
        let phases = Phase::ALL
            .into_iter()
            .zip(s.phase_micros.iter().copied())
            .filter(|&(_, us)| us > 0)
            .map(|(p, us)| (p.name().to_string(), us))
            .collect();
        let mut args = vec![
            ("verb".to_string(), s.verb.clone()),
            ("seq".to_string(), s.seq.to_string()),
        ];
        if !s.tier.is_empty() {
            args.push(("tier".to_string(), s.tier.clone()));
        }
        push_id_args(&mut args, &s.trace_id, &s.span_id, &s.parent_span_id);
        SpanView {
            name: s.verb.clone(),
            total_micros: s.total_micros,
            phases,
            args,
        }
    }
}

impl From<&ClientSpanSnapshot> for SpanView {
    fn from(s: &ClientSpanSnapshot) -> Self {
        let phases = ClientPhase::ALL
            .into_iter()
            .zip(s.phase_micros.iter().copied())
            .filter(|&(_, us)| us > 0)
            .map(|(p, us)| (p.name().to_string(), us))
            .collect();
        let mut args = vec![("verb".to_string(), s.verb.clone())];
        push_id_args(&mut args, &s.trace_id, &s.span_id, &s.parent_span_id);
        SpanView {
            name: s.verb.clone(),
            total_micros: s.total_micros,
            phases,
            args,
        }
    }
}

fn push_id_args(args: &mut Vec<(String, String)>, trace: &str, span: &str, parent: &str) {
    if !trace.is_empty() {
        args.push(("trace_id".to_string(), trace.to_string()));
    }
    if !span.is_empty() {
        args.push(("span_id".to_string(), span.to_string()));
    }
    if !parent.is_empty() {
        args.push(("parent_span_id".to_string(), parent.to_string()));
    }
}

/// Keys of a JSONL trace line that are metadata, not phase timings.
const LINE_META_KEYS: &[&str] = &[
    "seq",
    "verb",
    "tier",
    "total_micros",
    "trace_id",
    "span_id",
    "parent_span_id",
];

impl SpanView {
    /// Parses one line of a [`crate::TraceLog`] JSONL file (already
    /// JSON-decoded). Phase keys keep the order they appear in — the
    /// log writes them in wall-clock order. Returns `None` if the value
    /// is not an object with a `verb`.
    pub fn from_trace_line(v: &Value) -> Option<SpanView> {
        let entries = match v {
            Value::Map(entries) => entries,
            _ => return None,
        };
        let str_of = |key: &str| match v.get(key) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let name = str_of("verb")?;
        let total_micros = v.get("total_micros").and_then(|t| t.as_u64()).unwrap_or(0);
        let phases = entries
            .iter()
            .filter(|(k, _)| !LINE_META_KEYS.contains(&k.as_str()))
            .filter_map(|(k, val)| val.as_u64().map(|us| (k.clone(), us)))
            .filter(|&(_, us)| us > 0)
            .collect();
        let mut args = vec![("verb".to_string(), name.clone())];
        if let Some(seq) = v.get("seq").and_then(|s| s.as_u64()) {
            args.push(("seq".to_string(), seq.to_string()));
        }
        if let Some(tier) = str_of("tier").filter(|t| !t.is_empty()) {
            args.push(("tier".to_string(), tier));
        }
        push_id_args(
            &mut args,
            &str_of("trace_id").unwrap_or_default(),
            &str_of("span_id").unwrap_or_default(),
            &str_of("parent_span_id").unwrap_or_default(),
        );
        Some(SpanView {
            name,
            total_micros,
            phases,
            args,
        })
    }
}

/// One `pid` lane of a timeline: a name and its spans in order.
#[derive(Debug, Clone, Default)]
pub struct Lane {
    /// Process name shown by the viewer (`"client"`, a file name, ...).
    pub name: String,
    /// Spans laid back-to-back on the lane.
    pub spans: Vec<SpanView>,
}

enum Event {
    /// `"ph":"M"` process-name metadata.
    ProcessName { pid: u64, name: String },
    /// `"ph":"X"` complete slice.
    Complete {
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        name: String,
        args: Vec<(String, String)>,
    },
}

/// An in-progress Chrome trace: a flat list of events rendered by
/// [`ChromeTrace::to_json`].
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a `pid` lane (a `process_name` metadata event).
    pub fn name_lane(&mut self, pid: u64, name: &str) {
        self.events.push(Event::ProcessName {
            pid,
            name: name.to_string(),
        });
    }

    /// Adds one complete slice.
    pub fn slice(
        &mut self,
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        name: &str,
        args: Vec<(String, String)>,
    ) {
        self.events.push(Event::Complete {
            pid,
            tid,
            ts,
            dur,
            name: name.to_string(),
            args,
        });
    }

    /// Lays one span at `ts`: a root slice covering
    /// `[ts, ts + total_micros]` with each phase as a child slice laid
    /// back-to-back from `ts` (clamped so children never escape the
    /// root). Returns the root's end timestamp.
    pub fn add_span(&mut self, pid: u64, tid: u64, ts: u64, view: &SpanView) -> u64 {
        self.add_span_return_phase(pid, tid, ts, view, "").0
    }

    /// [`ChromeTrace::add_span`], additionally returning the laid-out
    /// window `(ts, dur)` of the named phase if the span entered it.
    fn add_span_return_phase(
        &mut self,
        pid: u64,
        tid: u64,
        ts: u64,
        view: &SpanView,
        phase_of_interest: &str,
    ) -> (u64, Option<(u64, u64)>) {
        let end = ts + view.total_micros;
        self.slice(
            pid,
            tid,
            ts,
            view.total_micros,
            &view.name,
            view.args.clone(),
        );
        let mut cursor = ts;
        let mut window = None;
        for (phase, micros) in &view.phases {
            let dur = (*micros).min(end.saturating_sub(cursor));
            self.slice(pid, tid, cursor, dur, phase, Vec::new());
            if phase == phase_of_interest {
                window = Some((cursor, dur));
            }
            cursor += dur;
        }
        (end, window)
    }

    /// Serializes the trace as a Chrome trace-event JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push('[');
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            match event {
                Event::ProcessName { pid, name } => {
                    out.push_str(&format!(
                        r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":{}}}}}"#,
                        json_str(name)
                    ));
                }
                Event::Complete {
                    pid,
                    tid,
                    ts,
                    dur,
                    name,
                    args,
                } => {
                    out.push_str(&format!(
                        r#"{{"ph":"X","pid":{pid},"tid":{tid},"ts":{ts},"dur":{dur},"name":{},"args":{{"#,
                        json_str(name)
                    ));
                    for (j, (k, v)) in args.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n]\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a set of lanes as one timeline: lane `i` is `pid = i + 1`,
/// spans back-to-back (1 µs apart so zero-duration spans stay
/// distinguishable), phases nested per span.
pub fn lanes_timeline(lanes: &[Lane]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    for (i, lane) in lanes.iter().enumerate() {
        let pid = i as u64 + 1;
        trace.name_lane(pid, &lane.name);
        let mut cursor = 0u64;
        for span in &lane.spans {
            cursor = trace.add_span(pid, 1, cursor, span) + 1;
        }
    }
    trace
}

/// Merges one client span and the matching server span into a single
/// request timeline: the client on pid [`CLIENT_PID`] starting at
/// `ts = 0`, the server on pid [`SERVER_PID`] centered inside the
/// client's `await` slice when it fits there. A server span *larger*
/// than the await window is real, not skew: the server reads (and may
/// decode) the request while the client is still writing it, so the
/// span's head overlaps the client's write phase — it is laid out
/// ending at the await end, spilling left into the root (or pinned to
/// the root start, or laid after the client entirely, as it grows).
/// The client root gains a `net_queue_micros` arg: `client await −
/// server total` (saturating), the part of the wait the server cannot
/// account for — wire transfer plus accept-queue residency.
pub fn merged_request_timeline(client: &SpanView, server: Option<&SpanView>) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_lane(CLIENT_PID, "client");

    let server_total = server.map(|s| s.total_micros).unwrap_or(0);
    let mut client = client.clone();
    let mut await_window = None;
    if let Some(await_us) = client
        .phases
        .iter()
        .find(|(name, _)| name == "await")
        .map(|&(_, us)| us)
    {
        if server.is_some() {
            client.args.push((
                "net_queue_micros".to_string(),
                await_us.saturating_sub(server_total).to_string(),
            ));
        }
    }
    let (client_end, window) = trace.add_span_return_phase(CLIENT_PID, 1, 0, &client, "await");
    if let Some(w) = window {
        await_window = Some(w);
    }

    if let Some(server) = server {
        trace.name_lane(SERVER_PID, "server");
        let ts = match await_window {
            // The common case: the server's whole handling fits the
            // await slice — center it there.
            Some((await_ts, await_dur)) if server_total <= await_dur => {
                await_ts + (await_dur - server_total) / 2
            }
            // Larger than the await slice is real, not skew: the server
            // reads (and may decode) the request while the client is
            // still writing it. Keep the response landing aligned with
            // the await end and spill left into the client's write.
            Some((await_ts, await_dur)) if server_total <= await_ts + await_dur => {
                await_ts + await_dur - server_total
            }
            // Larger than everything up to the await end (buffered
            // response-write tails): pin to the root start if the root
            // can still hold it...
            Some(_) if server_total <= client_end => 0,
            // ...else lay it after the client, disjoint but visible.
            _ => client_end + 1,
        };
        trace.add_span(SERVER_PID, 1, ts, server);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSpan;
    use crate::context::IdGen;
    use crate::span::RequestSpan;

    fn parse(json: &str) -> Vec<Value> {
        match serde_json::from_str::<Value>(json).unwrap() {
            Value::Seq(events) => events,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn u64_of(event: &Value, key: &str) -> u64 {
        event.get(key).and_then(|v| v.as_u64()).unwrap()
    }

    fn str_of<'a>(event: &'a Value, key: &str) -> &'a str {
        match event.get(key) {
            Some(Value::Str(s)) => s,
            other => panic!("expected string {key}, got {other:?}"),
        }
    }

    fn server_view(ids: &IdGen) -> SpanView {
        let mut span = RequestSpan::new("Plan");
        span.trace = ids.root().child(ids);
        span.seq = 7;
        span.tier = "miss";
        span.record(Phase::FrameRead, 10);
        span.record(Phase::Decode, 5);
        span.record(Phase::Synthesis, 400);
        span.record(Phase::FrameWrite, 15);
        span.total_micros = 450;
        SpanView::from(&SpanSnapshot::from(&span))
    }

    #[test]
    fn lanes_lay_spans_back_to_back_with_nested_phases() {
        let ids = IdGen::seeded(5);
        let lane = Lane {
            name: "server".to_string(),
            spans: vec![server_view(&ids), server_view(&ids)],
        };
        let trace = lanes_timeline(&[lane]);
        let events = parse(&trace.to_json());
        // 1 metadata + 2 × (1 root + 4 phases).
        assert_eq!(events.len(), 11);
        let roots: Vec<&Value> = events
            .iter()
            .filter(|e| str_of(e, "ph") == "X" && str_of(e, "name") == "Plan")
            .collect();
        assert_eq!(roots.len(), 2);
        assert_eq!(u64_of(roots[0], "ts"), 0);
        assert_eq!(
            u64_of(roots[1], "ts"),
            451,
            "second span starts after first"
        );
        // Phases nest inside their root and never overlap each other.
        let mut cursor = 0;
        for e in &events {
            if str_of(e, "ph") == "X" && str_of(e, "name") != "Plan" && u64_of(e, "ts") < 450 {
                assert_eq!(u64_of(e, "ts"), cursor);
                cursor += u64_of(e, "dur");
            }
        }
        assert!(cursor <= 450);
    }

    #[test]
    fn merged_timeline_nests_server_inside_client_await() {
        let ids = IdGen::seeded(8);
        let root = ids.root();
        let mut cspan = ClientSpan::new("Plan", root);
        cspan.record(ClientPhase::Connect, 120);
        cspan.record(ClientPhase::Encode, 30);
        cspan.record(ClientPhase::Write, 10);
        cspan.record(ClientPhase::Await, 600);
        cspan.record(ClientPhase::Read, 20);
        cspan.record(ClientPhase::Decode, 40);
        cspan.total_micros = 820;
        let client = SpanView::from(&ClientSpanSnapshot::from(&cspan));
        let server = server_view(&ids);

        let trace = merged_request_timeline(&client, Some(&server));
        let events = parse(&trace.to_json());

        let pids: std::collections::BTreeSet<u64> =
            events.iter().map(|e| u64_of(e, "pid")).collect();
        assert_eq!(pids.len(), 2, "client and server are separate pid lanes");

        let await_ev = events
            .iter()
            .find(|e| str_of(e, "ph") == "X" && str_of(e, "name") == "await")
            .unwrap();
        let (await_ts, await_dur) = (u64_of(await_ev, "ts"), u64_of(await_ev, "dur"));
        let client_root = events
            .iter()
            .find(|e| u64_of(e, "pid") == CLIENT_PID && str_of(e, "name") == "Plan")
            .unwrap();
        let gap = client_root
            .get("args")
            .and_then(|a| a.get("net_queue_micros"))
            .map(str_of2)
            .unwrap();
        assert_eq!(gap, "150", "600 await − 450 server total");

        for e in events.iter().filter(|e| u64_of(e, "pid") == SERVER_PID) {
            if str_of(e, "ph") != "X" {
                continue;
            }
            let (ts, dur) = (u64_of(e, "ts"), u64_of(e, "dur"));
            assert!(ts >= await_ts, "server slice starts inside await");
            assert!(
                ts + dur <= await_ts + await_dur,
                "server slice ends inside await"
            );
        }
    }

    fn str_of2(v: &Value) -> &str {
        match v {
            Value::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn oversized_server_span_ends_at_the_await_end() {
        let ids = IdGen::seeded(21);
        let mut cspan = ClientSpan::new("Plan", ids.root());
        cspan.record(ClientPhase::Write, 300);
        cspan.record(ClientPhase::Await, 400);
        cspan.total_micros = 700;
        let client = SpanView::from(&ClientSpanSnapshot::from(&cspan));
        // 450 µs of server work > the 400 µs await window: the request
        // frame was still in flight when the server started reading it.
        let server = server_view(&ids);

        let trace = merged_request_timeline(&client, Some(&server));
        let events = parse(&trace.to_json());
        let await_ev = events
            .iter()
            .find(|e| str_of(e, "ph") == "X" && str_of(e, "name") == "await")
            .unwrap();
        let await_end = u64_of(await_ev, "ts") + u64_of(await_ev, "dur");
        let server_root = events
            .iter()
            .find(|e| {
                u64_of(e, "pid") == SERVER_PID
                    && str_of(e, "ph") == "X"
                    && str_of(e, "name") == "Plan"
            })
            .unwrap();
        assert_eq!(
            u64_of(server_root, "ts") + u64_of(server_root, "dur"),
            await_end,
            "the response landing aligns both lanes"
        );
        // The head spills left into the client's write phase.
        assert!(u64_of(server_root, "ts") < u64_of(await_ev, "ts"));
        // An overlapped wait has no unaccounted remainder.
        let client_root = events
            .iter()
            .find(|e| u64_of(e, "pid") == CLIENT_PID && str_of(e, "name") == "Plan")
            .unwrap();
        let gap = client_root
            .get("args")
            .and_then(|a| a.get("net_queue_micros"))
            .map(str_of2)
            .unwrap();
        assert_eq!(gap, "0");
    }

    #[test]
    fn merged_timeline_without_server_is_still_valid() {
        let ids = IdGen::seeded(13);
        let mut cspan = ClientSpan::new("Plan", ids.root());
        cspan.record(ClientPhase::Await, 100);
        cspan.total_micros = 100;
        let client = SpanView::from(&ClientSpanSnapshot::from(&cspan));
        let trace = merged_request_timeline(&client, None);
        let events = parse(&trace.to_json());
        assert!(events.len() >= 2);
        assert!(events.iter().all(|e| u64_of(e, "pid") == CLIENT_PID));
    }

    #[test]
    fn trace_line_parses_into_a_view() {
        let v: Value = serde_json::from_str(
            r#"{"seq":3,"verb":"Plan","tier":"lru","total_micros":90,"trace_id":"000102030405060708090a0b0c0d0e0f","span_id":"0001020304050607","parent_span_id":"0000000000000000","frame_read":10,"lru_lookup":2}"#,
        )
        .unwrap();
        let view = SpanView::from_trace_line(&v).unwrap();
        assert_eq!(view.name, "Plan");
        assert_eq!(view.total_micros, 90);
        assert_eq!(
            view.phases,
            vec![
                ("frame_read".to_string(), 10),
                ("lru_lookup".to_string(), 2)
            ]
        );
        assert!(view.args.contains(&(
            "trace_id".to_string(),
            "000102030405060708090a0b0c0d0e0f".to_string()
        )));
        assert!(SpanView::from_trace_line(&Value::Str("Plan".into())).is_none());
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut trace = ChromeTrace::new();
        trace.slice(
            1,
            1,
            0,
            5,
            "we\"ird\n",
            vec![("k\\".to_string(), "v".to_string())],
        );
        let events = parse(&trace.to_json());
        assert_eq!(str_of(&events[0], "name"), "we\"ird\n");
    }
}
