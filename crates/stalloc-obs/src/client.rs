//! Client-side request spans: the half of a request the server never
//! sees — connect, encode, socket writes, the await for the response,
//! reads, and decode.
//!
//! [`ClientSpan`] mirrors [`crate::RequestSpan`]: a `Copy` value with a
//! fixed-size phase array, so recording allocates nothing. The
//! serializable [`ClientSpanSnapshot`] exists only on the read side,
//! when a timeline is being exported.

use crate::context::TraceContext;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The phases of one client-side request, in wall-clock order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// TCP connect + socket option setup (first request on a connection
    /// only; keep-alive requests never reconnect).
    Connect,
    /// Request serialization: JSON document, profile/plan binary
    /// encoding, and fingerprinting.
    Encode,
    /// Request frame(s) → socket.
    Write,
    /// Last request byte written → response header frame fully read.
    /// This window covers both network legs plus everything the server
    /// did; the server's span nests inside it on a merged timeline.
    Await,
    /// Follow-up response frames (a binary plan payload) → memory.
    Read,
    /// Response JSON parse, binary plan decode, and plan validation.
    Decode,
}

/// Number of [`ClientPhase`] variants.
pub const CLIENT_PHASE_COUNT: usize = 6;

impl ClientPhase {
    /// Every phase, in declaration (= wall-clock) order.
    pub const ALL: [ClientPhase; CLIENT_PHASE_COUNT] = [
        ClientPhase::Connect,
        ClientPhase::Encode,
        ClientPhase::Write,
        ClientPhase::Await,
        ClientPhase::Read,
        ClientPhase::Decode,
    ];

    /// Stable wire/report name (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            ClientPhase::Connect => "connect",
            ClientPhase::Encode => "encode",
            ClientPhase::Write => "write",
            ClientPhase::Await => "await",
            ClientPhase::Read => "read",
            ClientPhase::Decode => "decode",
        }
    }

    /// Index into per-phase arrays (= position in [`ClientPhase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One client request's phase timings, in microseconds. `Copy`,
/// fixed-size, allocation-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientSpan {
    /// The ids this request travels under. `span_id` is the client
    /// span itself; the context *sent* to the server is its child.
    pub trace: TraceContext,
    /// Request verb name (`"Plan"`, `"Get"`, ...).
    pub verb: &'static str,
    /// End-to-end latency as the caller experienced it.
    pub total_micros: u64,
    phase_micros: [u64; CLIENT_PHASE_COUNT],
    touched: u8,
}

impl ClientSpan {
    pub fn new(verb: &'static str, trace: TraceContext) -> Self {
        ClientSpan {
            trace,
            verb,
            ..ClientSpan::default()
        }
    }

    /// Adds `micros` to a phase (phases accumulate: a two-frame write
    /// folds into the same slot).
    pub fn record(&mut self, phase: ClientPhase, micros: u64) {
        self.phase_micros[phase.index()] += micros;
        self.touched |= 1 << phase.index();
    }

    /// Records the elapsed time since `start` into a phase.
    pub fn record_since(&mut self, phase: ClientPhase, start: Instant) {
        self.record(phase, start.elapsed().as_micros() as u64);
    }

    /// A phase's accumulated time; `None` if the request never entered
    /// it (distinct from "entered and took 0µs").
    pub fn phase_micros(&self, phase: ClientPhase) -> Option<u64> {
        if self.touched & (1 << phase.index()) != 0 {
            Some(self.phase_micros[phase.index()])
        } else {
            None
        }
    }

    /// The phases this request actually entered, with their timings.
    pub fn entered(&self) -> impl Iterator<Item = (ClientPhase, u64)> + '_ {
        ClientPhase::ALL
            .into_iter()
            .filter_map(|p| self.phase_micros(p).map(|us| (p, us)))
    }
}

/// The serializable form of a client span. `phase_micros` is parallel
/// to [`ClientPhase::ALL`] (a phase the request never entered reports
/// 0); ids are fixed-width lowercase hex, empty when untraced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientSpanSnapshot {
    /// 32-hex-digit trace id, `""` when untraced.
    #[serde(default)]
    pub trace_id: String,
    /// 16-hex-digit span id of the client span itself.
    #[serde(default)]
    pub span_id: String,
    /// 16-hex-digit parent span id (`0000…` for a root span).
    #[serde(default)]
    pub parent_span_id: String,
    /// Request verb name.
    pub verb: String,
    /// End-to-end latency, microseconds.
    pub total_micros: u64,
    /// Per-phase microseconds, parallel to [`ClientPhase::ALL`].
    pub phase_micros: Vec<u64>,
}

impl From<&ClientSpan> for ClientSpanSnapshot {
    fn from(s: &ClientSpan) -> Self {
        ClientSpanSnapshot {
            trace_id: if s.trace.is_set() {
                s.trace.trace_hex()
            } else {
                String::new()
            },
            span_id: if s.trace.is_set() {
                s.trace.span_hex()
            } else {
                String::new()
            },
            parent_span_id: if s.trace.is_set() {
                s.trace.parent_hex()
            } else {
                String::new()
            },
            verb: s.verb.to_string(),
            total_micros: s.total_micros,
            phase_micros: s.phase_micros.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::IdGen;

    #[test]
    fn client_phase_all_matches_indices_and_names_are_unique() {
        for (i, p) in ClientPhase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: std::collections::BTreeSet<_> =
            ClientPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), CLIENT_PHASE_COUNT);
    }

    #[test]
    fn spans_accumulate_and_distinguish_untouched_from_zero() {
        let ids = IdGen::seeded(3);
        let mut s = ClientSpan::new("Plan", ids.root());
        s.record(ClientPhase::Write, 0);
        assert_eq!(s.phase_micros(ClientPhase::Write), Some(0));
        assert_eq!(s.phase_micros(ClientPhase::Await), None);
        s.record(ClientPhase::Write, 4);
        assert_eq!(s.phase_micros(ClientPhase::Write), Some(4));
        let entered: Vec<_> = s.entered().collect();
        assert_eq!(entered, vec![(ClientPhase::Write, 4)]);
    }

    #[test]
    fn snapshot_carries_hex_ids_and_roundtrips() {
        let ids = IdGen::seeded(11);
        let mut s = ClientSpan::new("Plan", ids.root());
        s.total_micros = 900;
        s.record(ClientPhase::Connect, 100);
        s.record(ClientPhase::Await, 700);
        let snap = ClientSpanSnapshot::from(&s);
        assert_eq!(snap.trace_id, s.trace.trace_hex());
        assert_eq!(snap.phase_micros.len(), CLIENT_PHASE_COUNT);
        assert_eq!(snap.phase_micros[ClientPhase::Await.index()], 700);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ClientSpanSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn untraced_snapshot_has_empty_ids() {
        let s = ClientSpan::new("Ping", TraceContext::NONE);
        let snap = ClientSpanSnapshot::from(&s);
        assert_eq!(snap.trace_id, "");
        assert_eq!(snap.span_id, "");
    }
}
