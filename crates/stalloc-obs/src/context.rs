//! Wire-propagable trace identity: a 128-bit trace id plus 64-bit span
//! and parent-span ids, in the style of W3C `traceparent`.
//!
//! Id generation never consults a clock. [`IdGen`] is a splitmix64
//! stream whose default seed comes from the OS-random keys behind
//! `std::collections::hash_map::RandomState` (mixed with the process
//! id), so two processes started in the same instant still diverge,
//! while tests can pin [`IdGen::seeded`] for reproducible timelines.
//!
//! On the wire a context is a JSON object of fixed-width lowercase hex
//! strings — `{"trace_id":"<32 hex>","span_id":"<16 hex>",
//! "parent_span_id":"<16 hex>"}` — because JSON numbers cannot carry
//! 128 bits, and hex is what every tracing UI expects. An all-zero id
//! means "absent"; the generator never emits it.

use serde::{Deserialize, Error, Serialize, Value};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The identity one request carries across the wire: which trace it
/// belongs to, which span it *is*, and which span caused it.
///
/// `Copy` and 32 bytes, so it embeds in the allocation-free
/// [`crate::RequestSpan`] hot path. The default value (all zeros) means
/// "untraced".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one logical operation.
    pub trace_id: u128,
    /// This span's own 64-bit id.
    pub span_id: u64,
    /// The span that caused this one; 0 for a root span.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The "untraced" sentinel: all ids zero.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_span_id: 0,
    };

    /// Whether this context carries a real trace id.
    pub fn is_set(&self) -> bool {
        self.trace_id != 0
    }

    /// A child context in the same trace: fresh span id, this span as
    /// parent. This is what a client sends to the server.
    pub fn child(&self, ids: &IdGen) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: ids.next_span_id(),
            parent_span_id: self.span_id,
        }
    }

    /// The trace id as 32 lowercase hex digits.
    pub fn trace_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The span id as 16 lowercase hex digits.
    pub fn span_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }

    /// The parent span id as 16 lowercase hex digits.
    pub fn parent_hex(&self) -> String {
        format!("{:016x}", self.parent_span_id)
    }
}

/// Parses a 32-hex-digit trace id (the wire form). Rejects anything
/// that is not exactly 32 hex digits, so a truncated id cannot silently
/// alias another trace.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Parses a 16-hex-digit span id (the wire form).
pub fn parse_span_id(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

impl Serialize for TraceContext {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("trace_id".to_string(), Value::Str(self.trace_hex())),
            ("span_id".to_string(), Value::Str(self.span_hex())),
            ("parent_span_id".to_string(), Value::Str(self.parent_hex())),
        ])
    }
}

impl Deserialize for TraceContext {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let hex = |name: &str| -> Result<String, Error> {
            match v.get(name) {
                Some(Value::Str(s)) => Ok(s.clone()),
                Some(other) => Err(Error::custom(format!(
                    "trace context field `{name}`: expected hex string, got {other:?}"
                ))),
                None => Err(Error::custom(format!(
                    "trace context missing field `{name}`"
                ))),
            }
        };
        let trace = hex("trace_id")?;
        let span = hex("span_id")?;
        let parent = hex("parent_span_id")?;
        Ok(TraceContext {
            trace_id: parse_trace_id(&trace)
                .ok_or_else(|| Error::custom(format!("bad trace_id {trace:?}")))?,
            span_id: parse_span_id(&span)
                .ok_or_else(|| Error::custom(format!("bad span_id {span:?}")))?,
            parent_span_id: parse_span_id(&parent)
                .ok_or_else(|| Error::custom(format!("bad parent_span_id {parent:?}")))?,
        })
    }
}

/// Per-process entropy that does not come from a clock: the OS-random
/// SipHash keys `RandomState` draws at first use, folded with the
/// process id.
fn process_entropy() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let state = std::collections::hash_map::RandomState::new();
        let mut h = state.build_hasher();
        h.write_u32(std::process::id());
        h.write_u64(0x5354_414c_4c4f_4321); // "STALLOC!" domain tag
        h.finish()
    })
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lock-free id source: a shared splitmix64 counter stream. `next_*`
/// performs one relaxed `fetch_add` plus arithmetic — no heap, no
/// clock, no lock — so minting ids is safe inside the allocation-free
/// request path.
#[derive(Debug)]
pub struct IdGen {
    state: AtomicU64,
}

impl IdGen {
    /// A generator seeded from per-process OS entropy.
    pub fn new() -> IdGen {
        IdGen::seeded(process_entropy())
    }

    /// A deterministic generator for tests and replayable harness runs.
    pub fn seeded(seed: u64) -> IdGen {
        IdGen {
            state: AtomicU64::new(seed),
        }
    }

    fn next_raw(&self) -> u64 {
        let x = self
            .state
            .fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed)
            .wrapping_add(SPLITMIX_GAMMA);
        splitmix_mix(x)
    }

    /// A fresh nonzero 64-bit span id.
    pub fn next_span_id(&self) -> u64 {
        loop {
            let id = self.next_raw();
            if id != 0 {
                return id;
            }
        }
    }

    /// A fresh nonzero 128-bit trace id.
    pub fn next_trace_id(&self) -> u128 {
        ((self.next_span_id() as u128) << 64) | self.next_span_id() as u128
    }

    /// A fresh root context: new trace, new span, no parent.
    pub fn root(&self) -> TraceContext {
        TraceContext {
            trace_id: self.next_trace_id(),
            span_id: self.next_span_id(),
            parent_span_id: 0,
        }
    }
}

impl Default for IdGen {
    fn default() -> Self {
        IdGen::new()
    }
}

/// The shared process-wide generator, for callers that do not carry
/// their own (CLI one-shots, the harness).
pub fn id_gen() -> &'static IdGen {
    static GEN: OnceLock<IdGen> = OnceLock::new();
    GEN.get_or_init(IdGen::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generator_is_deterministic_and_nonzero() {
        let a = IdGen::seeded(7);
        let b = IdGen::seeded(7);
        for _ in 0..100 {
            let ia = a.next_span_id();
            assert_eq!(ia, b.next_span_id());
            assert_ne!(ia, 0);
        }
        assert_eq!(a.next_trace_id(), b.next_trace_id());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = IdGen::seeded(1).next_trace_id();
        let b = IdGen::seeded(2).next_trace_id();
        assert_ne!(a, b);
    }

    #[test]
    fn child_keeps_trace_and_links_parent() {
        let ids = IdGen::seeded(42);
        let root = ids.root();
        assert!(root.is_set());
        assert_eq!(root.parent_span_id, 0);
        let child = root.child(&ids);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn hex_roundtrips_fixed_width() {
        let ctx = TraceContext {
            trace_id: 0xabc,
            span_id: 5,
            parent_span_id: 0,
        };
        assert_eq!(ctx.trace_hex().len(), 32);
        assert_eq!(ctx.span_hex().len(), 16);
        assert_eq!(parse_trace_id(&ctx.trace_hex()), Some(0xabc));
        assert_eq!(parse_span_id(&ctx.span_hex()), Some(5));
        assert_eq!(parse_trace_id("abc"), None, "short ids are rejected");
        assert_eq!(parse_span_id("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn wire_form_is_hex_strings_and_roundtrips() {
        let ids = IdGen::seeded(9);
        let ctx = ids.root().child(&ids);
        let json = serde_json::to_string(&ctx).unwrap();
        assert!(json.contains("\"trace_id\""));
        assert!(json.contains(&ctx.span_hex()));
        let back: TraceContext = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ctx);

        // Old peers emit nothing; a missing context must stay `None`.
        let opt: Option<TraceContext> = serde_json::from_str("null").unwrap();
        assert_eq!(opt, None);

        // Malformed ids are a decode error, not a silent zero.
        assert!(serde_json::from_str::<TraceContext>(
            r#"{"trace_id":"xyz","span_id":"0","parent_span_id":"0"}"#
        )
        .is_err());
    }

    #[test]
    fn process_generator_mints_distinct_ids_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                (0..64).map(|_| id_gen().next_span_id()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 256, "no id collisions across threads");
    }
}
