//! Sharded atomic counters.
//!
//! A single `AtomicU64` is correct but makes every worker thread's
//! `fetch_add` contend on one cache line. Sharding by thread spreads the
//! writes; reads sum the shards (so a read is O(shards) and only
//! eventually consistent — exactly what a stats counter needs).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shard count; power of two so the thread id folds in with a mask.
const SHARDS: usize = 16;

/// One shard on its own cache line, so neighbouring shards never share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Process-wide thread numbering for shard selection: each thread gets a
/// small dense id on first use and keeps it for life.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            s.set(id);
        }
        id
    })
}

/// A counter sharded across cache-line-padded atomics.
///
/// `add`/`inc` touch only the calling thread's shard. `dec` may
/// underflow *its* shard below zero (the increment may have landed on a
/// different shard), which is fine: shards wrap, and [`Self::get`] sums
/// with wrapping addition, so the total is exact whenever increments and
/// decrements are balanced per logical event.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; SHARDS],
}

impl ShardedCounter {
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self) -> &AtomicU64 {
        &self.shards[thread_shard() & (SHARDS - 1)].0
    }

    /// Adds `n` to the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shard().fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one (wrapping per shard; see the type docs).
    pub fn dec(&self) {
        self.shard().fetch_sub(1, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_single_threaded() {
        let c = ShardedCounter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.dec();
        assert_eq!(c.get(), 41);
    }

    #[test]
    fn inc_dec_balance_across_threads() {
        // Increments and decrements for the same logical event land on
        // *different* threads' shards; the wrapping sum must still be
        // exact.
        let c = std::sync::Arc::new(ShardedCounter::new());
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let incr = {
            let c = std::sync::Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                    tx.send(()).unwrap();
                }
            })
        };
        let decr = {
            let c = std::sync::Arc::clone(&c);
            let rx = std::sync::Arc::clone(&rx);
            std::thread::spawn(move || {
                let rx = rx.lock().unwrap();
                for _ in 0..10_000 {
                    rx.recv().unwrap();
                    c.dec();
                }
            })
        };
        incr.join().unwrap();
        decr.join().unwrap();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_adds_are_conserved() {
        let c = std::sync::Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..25_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 200_000);
    }
}
