//! Log2-bucketed latency histograms.
//!
//! Values (microseconds, in the serving path) fall into 65 buckets:
//! bucket 0 holds exactly the value 0, bucket *i* (1 ≤ i ≤ 64) holds
//! `[2^(i-1), 2^i - 1]` — so bucket 64 tops out at `u64::MAX`. Recording
//! is two relaxed `fetch_add`s; no per-sample state exists, so the
//! histogram's memory is constant no matter how long the server runs.
//! Quantiles are derived at read time by walking the cumulative counts
//! and interpolating linearly inside the winning bucket, which bounds
//! the error of pN to the bucket's width (a factor of 2 — plenty for
//! "is p99 a hit or a synthesis" questions).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one zero bucket + one per bit position of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`
/// (1 for 1, `k+1` for `2^k`, 64 for anything ≥ `2^63`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` value range of a bucket. Indexes past the
/// last bucket clamp to it (defensive: snapshots can arrive off the wire
/// with any vector length).
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index.min(NUM_BUCKETS - 1) {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A live histogram: atomic bucket counts plus a running sum.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Never allocates, never blocks.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy for serialization and quantile math. Under
    /// concurrent recording the copy is racy per-bucket but each bucket
    /// is exact-at-some-instant; totals converge as traffic quiesces.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// A serializable point-in-time histogram (the wire/report form).
///
/// `buckets` is a plain vector parallel to the live bucket layout;
/// `count`/`sum` are carried redundantly for convenience, but all
/// derived statistics recompute from `buckets`, so a hand-crafted or
/// hostile snapshot can skew nothing but itself.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_range`] for bucket *i*).
    pub buckets: Vec<u64>,
    /// Total samples at snapshot time.
    pub count: u64,
    /// Sum of all recorded values at snapshot time.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total samples, recomputed from the buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total()).unwrap_or(0)
    }

    /// The q-quantile (`0.0 ≤ q ≤ 1.0`), interpolated linearly within
    /// the winning log2 bucket. `quantile(0.5)` is the median estimate.
    /// `None` when the histogram holds no samples — an empty tier has no
    /// quantiles, and reporting 0 would masquerade as a real latency.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum: u64 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum.saturating_add(c);
            if next >= target {
                let (lo, hi) = bucket_range(i);
                let into = (target - cum) as f64 / c as f64;
                return Some(lo.saturating_add(((hi - lo) as f64 * into) as u64));
            }
            cum = next;
        }
        // Unreachable for consistent snapshots; a ragged one gets the top.
        Some(bucket_range(NUM_BUCKETS - 1).1)
    }

    /// p50/p90/p99, the triple every report in this repo prints. `None`
    /// when empty, so callers must decide how to mark a quiet tier
    /// instead of printing all-zero rows.
    pub fn percentiles(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.90)?,
            self.quantile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Zero is its own bucket.
        assert_eq!(bucket_index(0), 0);
        // Each exact power of two opens a new bucket...
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        // ...and the value just below it still sits in the previous one.
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_ranges_partition_u64() {
        assert_eq!(bucket_range(0), (0, 0));
        let mut expected_lo = 1u64;
        for i in 1..NUM_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i < NUM_BUCKETS - 1 {
                expected_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
        // Out-of-range indexes clamp instead of shifting past the word.
        assert_eq!(bucket_range(1000), (1 << 63, u64::MAX));
    }

    #[test]
    fn extreme_values_record_without_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum wraps; counts must not care
        let s = h.snapshot();
        assert_eq!(s.total(), 4);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 2);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = LatencyHistogram::new();
        // 100 samples all in bucket [64, 127].
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot();
        let (p50, p90, p99) = s.percentiles().unwrap();
        // All within the bucket, ordered, spanning its width.
        for p in [p50, p90, p99] {
            assert!((64..=127).contains(&p), "{p} outside bucket");
        }
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(s.quantile(1.0), Some(127));
        assert_eq!(s.mean(), 100);
    }

    #[test]
    fn quantiles_separate_bimodal_tiers() {
        // The serving-path shape: many ~70µs hits, a few ~150ms misses.
        let h = LatencyHistogram::new();
        for _ in 0..95 {
            h.record(70);
        }
        for _ in 0..5 {
            h.record(147_000);
        }
        let s = h.snapshot();
        assert!(s.quantile(0.50).unwrap() < 200, "median is a hit");
        assert!(s.quantile(0.99).unwrap() > 100_000, "p99 is a synthesis");
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.total(), 0);
        assert_eq!(s.quantile(0.99), None, "no samples, no quantile");
        assert_eq!(s.percentiles(), None);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn multithreaded_counts_are_conserved() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        h.record((t * 1_000 + i) % 4_096);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 200_000, "every sample lands in some bucket");
        assert_eq!(h.snapshot().total(), 200_000);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 70, 147_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.percentiles(), s.percentiles());
    }

    #[test]
    fn hostile_snapshots_never_panic() {
        // Off-the-wire snapshots can have any shape; quantile math must
        // stay total.
        let ragged = HistogramSnapshot {
            buckets: vec![u64::MAX; 200],
            count: 3,
            sum: u64::MAX,
        };
        let _ = ragged.quantile(0.99);
        let _ = ragged.mean();
        let empty = HistogramSnapshot {
            buckets: vec![],
            count: 99,
            sum: 7,
        };
        // `count` lies but `buckets` is the truth: no samples, no quantile.
        assert_eq!(empty.quantile(0.5), None);
    }
}
