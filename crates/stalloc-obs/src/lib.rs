//! Observability primitives for the serving path.
//!
//! Everything here is built for a hot request loop: recording must be
//! wait-free-ish and allocation-free, while *reading* (snapshots,
//! quantiles, rendering) may be as leisurely as it likes.
//!
//! * [`ShardedCounter`] — a monotonic (or up/down) counter spread over
//!   cache-line-padded shards, so uncontended worker threads do not
//!   bounce one cache line around the socket.
//! * [`LatencyHistogram`] — 65 log2 buckets of atomic counts. Recording
//!   a sample is two relaxed `fetch_add`s; p50/p90/p99 are derived from
//!   the buckets at read time, so no per-sample state is ever kept.
//! * [`RequestSpan`] / [`SpanRing`] — a `Copy` per-request phase-timing
//!   record and a pre-allocated ring that retains both the most recent
//!   spans and the slowest-N ever seen.
//! * [`TraceLog`] — an opt-in JSONL sink writing one structured record
//!   per request, for offline replay of a loaded server.
//!
//! The crate is transport-free and server-free on purpose: `stalloc-core`
//! embeds the serializable snapshots ([`HistogramSnapshot`],
//! [`SpanSnapshot`]) in its wire types, and `stalloc-served` owns the
//! live instances.

mod counter;
mod histogram;
mod span;
mod trace;

pub use counter::ShardedCounter;
pub use histogram::{bucket_index, bucket_range, HistogramSnapshot, LatencyHistogram, NUM_BUCKETS};
pub use span::{Phase, RequestSpan, SpanRing, SpanSnapshot, PHASE_COUNT};
pub use trace::{rotated_path, TraceLog};
