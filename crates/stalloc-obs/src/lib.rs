//! Observability primitives for the serving path.
//!
//! Everything here is built for a hot request loop: recording must be
//! wait-free-ish and allocation-free, while *reading* (snapshots,
//! quantiles, rendering) may be as leisurely as it likes.
//!
//! * [`ShardedCounter`] — a monotonic (or up/down) counter spread over
//!   cache-line-padded shards, so uncontended worker threads do not
//!   bounce one cache line around the socket.
//! * [`LatencyHistogram`] — 65 log2 buckets of atomic counts. Recording
//!   a sample is two relaxed `fetch_add`s; p50/p90/p99 are derived from
//!   the buckets at read time, so no per-sample state is ever kept.
//! * [`RequestSpan`] / [`SpanRing`] — a `Copy` per-request phase-timing
//!   record and a pre-allocated ring that retains both the most recent
//!   spans and the slowest-N ever seen.
//! * [`TraceLog`] — an opt-in JSONL sink writing one structured record
//!   per request, for offline replay of a loaded server.
//! * [`TraceContext`] / [`IdGen`] — wire-propagable trace identity
//!   (128-bit trace id, 64-bit span ids) minted without ever reading a
//!   clock.
//! * [`ClientSpan`] — the client half of a request (connect, encode,
//!   write, await, read, decode), same `Copy` design as
//!   [`RequestSpan`].
//! * [`chrome`] — an exporter laying client and/or server spans out as
//!   Chrome trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! The crate is transport-free and server-free on purpose: `stalloc-core`
//! embeds the serializable snapshots ([`HistogramSnapshot`],
//! [`SpanSnapshot`]) in its wire types, and `stalloc-served` owns the
//! live instances.

pub mod chrome;
mod client;
mod context;
mod counter;
mod histogram;
mod span;
mod trace;

pub use client::{ClientPhase, ClientSpan, ClientSpanSnapshot, CLIENT_PHASE_COUNT};
pub use context::{id_gen, parse_span_id, parse_trace_id, IdGen, TraceContext};
pub use counter::ShardedCounter;
pub use histogram::{bucket_index, bucket_range, HistogramSnapshot, LatencyHistogram, NUM_BUCKETS};
pub use span::{Phase, RequestSpan, SpanRing, SpanSnapshot, PHASE_COUNT};
pub use trace::{rotated_path, TraceLog};
