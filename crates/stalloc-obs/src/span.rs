//! Per-request phase spans and their retention ring.
//!
//! A [`RequestSpan`] is a `Copy` value with a fixed-size phase array —
//! recording into it, and pushing it into the pre-allocated
//! [`SpanRing`], allocates nothing. The serializable [`SpanSnapshot`]
//! (heap-backed strings/vectors) exists only on the read side, when a
//! `Metrics` response or trace line is being built.

use crate::context::TraceContext;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// The phases of one served request, in wall-clock order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// First byte of the request frame → complete frame (keep-alive idle
    /// time between requests is *not* counted).
    FrameRead,
    /// JSON request payload → typed `PlanRequest`.
    Decode,
    /// Job fingerprint computation (profile walk or raw-byte hash).
    Fingerprint,
    /// Accept-queue residency before a worker picked the connection up
    /// (first request on a connection only; later ones never queued).
    QueueWait,
    /// In-process LRU probe.
    LruLookup,
    /// On-disk plan-store probe (only on an LRU miss).
    StoreLookup,
    /// Plan synthesis — the leader's run, or a follower's coalesced wait
    /// on it.
    Synthesis,
    /// Response serialization (JSON document, and the plan's binary
    /// encoding when it is computed for this response).
    Encode,
    /// Response frame(s) → socket.
    FrameWrite,
    /// Delta application + plan patching on a `PlanDelta` request whose
    /// base was cached. Declared *after* `FrameWrite` even though it
    /// runs between lookup and encode: `SpanSnapshot.phase_micros` is
    /// positional, so new phases must append to keep old peers'
    /// decoders aligned on the shared prefix.
    Replan,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// Every phase, in declaration order (= wall-clock order, except
    /// the appended `Replan` — see its doc comment).
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::FrameRead,
        Phase::Decode,
        Phase::Fingerprint,
        Phase::QueueWait,
        Phase::LruLookup,
        Phase::StoreLookup,
        Phase::Synthesis,
        Phase::Encode,
        Phase::FrameWrite,
        Phase::Replan,
    ];

    /// Stable wire/report name (snake_case).
    pub fn name(self) -> &'static str {
        match self {
            Phase::FrameRead => "frame_read",
            Phase::Decode => "decode",
            Phase::Fingerprint => "fingerprint",
            Phase::QueueWait => "queue_wait",
            Phase::LruLookup => "lru_lookup",
            Phase::StoreLookup => "store_lookup",
            Phase::Synthesis => "synthesis",
            Phase::Encode => "encode",
            Phase::FrameWrite => "frame_write",
            Phase::Replan => "replan",
        }
    }

    /// Index into per-phase arrays (= position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One request's phase timings, in microseconds. `Copy`, fixed-size,
/// allocation-free — built on the worker's stack and copied into the
/// ring.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestSpan {
    /// Server-assigned sequence number (order of completion).
    pub seq: u64,
    /// The ids this request ran under: propagated from the client when
    /// the request carried a context, minted by the server otherwise.
    /// All-zero (`TraceContext::NONE`) only in unit tests that never
    /// went through a server.
    pub trace: TraceContext,
    /// Request verb name (`"Plan"`, `"Get"`, ...).
    pub verb: &'static str,
    /// Cache tier that answered (`"lru"`, `"store"`, `"miss"`,
    /// `"coalesced"`), or `""` for verbs that serve no plan.
    pub tier: &'static str,
    /// End-to-end latency: queue wait + frame read + handling + write.
    pub total_micros: u64,
    phase_micros: [u64; PHASE_COUNT],
    touched: u16,
}

impl RequestSpan {
    pub fn new(verb: &'static str) -> Self {
        RequestSpan {
            verb,
            tier: "",
            ..RequestSpan::default()
        }
    }

    /// Adds `micros` to a phase (phases accumulate: a retried lookup or
    /// a second frame read folds into the same slot).
    pub fn record(&mut self, phase: Phase, micros: u64) {
        self.phase_micros[phase.index()] += micros;
        self.touched |= 1 << phase.index();
    }

    /// Records the elapsed time since `start` into a phase.
    pub fn record_since(&mut self, phase: Phase, start: Instant) {
        self.record(phase, start.elapsed().as_micros() as u64);
    }

    /// A phase's accumulated time; `None` if the request never entered
    /// it (distinct from "entered and took 0µs").
    pub fn phase_micros(&self, phase: Phase) -> Option<u64> {
        if self.touched & (1 << phase.index()) != 0 {
            Some(self.phase_micros[phase.index()])
        } else {
            None
        }
    }

    /// The phases this request actually entered, with their timings.
    pub fn entered(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .into_iter()
            .filter_map(|p| self.phase_micros(p).map(|us| (p, us)))
    }
}

/// The serializable form of a span, for `Metrics` responses and trace
/// lines. `phase_micros` is parallel to [`Phase::ALL`] (a phase the
/// request never entered reports 0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Server-assigned completion sequence number.
    pub seq: u64,
    /// 32-hex-digit trace id, `""` when untraced (or from a pre-tracing
    /// server).
    #[serde(default)]
    pub trace_id: String,
    /// 16-hex-digit span id, `""` when untraced.
    #[serde(default)]
    pub span_id: String,
    /// 16-hex-digit parent span id (`0000…` for a root span), `""` when
    /// untraced.
    #[serde(default)]
    pub parent_span_id: String,
    /// Request verb name.
    pub verb: String,
    /// Cache tier that answered, or `""`.
    pub tier: String,
    /// End-to-end latency, microseconds.
    pub total_micros: u64,
    /// Per-phase microseconds, parallel to [`Phase::ALL`].
    pub phase_micros: Vec<u64>,
}

impl From<&RequestSpan> for SpanSnapshot {
    fn from(s: &RequestSpan) -> Self {
        SpanSnapshot {
            seq: s.seq,
            trace_id: if s.trace.is_set() {
                s.trace.trace_hex()
            } else {
                String::new()
            },
            span_id: if s.trace.is_set() {
                s.trace.span_hex()
            } else {
                String::new()
            },
            parent_span_id: if s.trace.is_set() {
                s.trace.parent_hex()
            } else {
                String::new()
            },
            verb: s.verb.to_string(),
            tier: s.tier.to_string(),
            total_micros: s.total_micros,
            phase_micros: s.phase_micros.to_vec(),
        }
    }
}

/// Bounded span retention: the most recent `capacity` spans (a circular
/// overwrite) plus the slowest `slowest_capacity` spans ever seen (by
/// `total_micros`). Both vectors are allocated once, up front; a push
/// copies one `RequestSpan` and never allocates.
pub struct SpanRing {
    inner: Mutex<RingInner>,
}

struct RingInner {
    recent: Vec<RequestSpan>,
    capacity: usize,
    next: usize,
    slowest: Vec<RequestSpan>,
    slowest_capacity: usize,
}

impl SpanRing {
    pub fn new(capacity: usize, slowest_capacity: usize) -> Self {
        SpanRing {
            inner: Mutex::new(RingInner {
                recent: Vec::with_capacity(capacity),
                capacity,
                next: 0,
                slowest: Vec::with_capacity(slowest_capacity),
                slowest_capacity,
            }),
        }
    }

    pub fn push(&self, span: RequestSpan) {
        let mut inner = self.inner.lock().expect("span ring lock");
        if inner.capacity > 0 {
            if inner.recent.len() < inner.capacity {
                inner.recent.push(span);
            } else {
                let at = inner.next;
                inner.recent[at] = span;
            }
            inner.next = (inner.next + 1) % inner.capacity;
        }
        if inner.slowest_capacity > 0 {
            if inner.slowest.len() < inner.slowest_capacity {
                inner.slowest.push(span);
            } else {
                // Tiny N: a linear min-scan beats heap bookkeeping.
                let (mi, fastest) = inner
                    .slowest
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.total_micros)
                    .map(|(i, s)| (i, s.total_micros))
                    .expect("slowest non-empty at capacity");
                if span.total_micros > fastest {
                    inner.slowest[mi] = span;
                }
            }
        }
    }

    /// The retained recent spans, oldest first.
    pub fn recent(&self) -> Vec<RequestSpan> {
        let inner = self.inner.lock().expect("span ring lock");
        if inner.recent.len() < inner.capacity {
            inner.recent.clone()
        } else {
            let mut out = Vec::with_capacity(inner.recent.len());
            out.extend_from_slice(&inner.recent[inner.next..]);
            out.extend_from_slice(&inner.recent[..inner.next]);
            out
        }
    }

    /// The retained recent spans belonging to one trace, oldest first.
    /// Retention-bounded: a span that has been overwritten in the ring
    /// is gone, which is why `TraceGet` callers query promptly.
    pub fn by_trace(&self, trace_id: u128) -> Vec<RequestSpan> {
        self.recent()
            .into_iter()
            .filter(|s| s.trace.trace_id == trace_id && trace_id != 0)
            .collect()
    }

    /// The slowest retained spans, slowest first.
    pub fn slowest(&self) -> Vec<RequestSpan> {
        let inner = self.inner.lock().expect("span ring lock");
        let mut out = inner.slowest.clone();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_micros));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_all_matches_indices_and_names_are_unique() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: std::collections::BTreeSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn spans_distinguish_untouched_from_zero() {
        let mut s = RequestSpan::new("Plan");
        s.record(Phase::Decode, 0);
        assert_eq!(s.phase_micros(Phase::Decode), Some(0));
        assert_eq!(s.phase_micros(Phase::Synthesis), None);
        s.record(Phase::Decode, 7);
        assert_eq!(s.phase_micros(Phase::Decode), Some(7), "accumulates");
        let entered: Vec<_> = s.entered().collect();
        assert_eq!(entered, vec![(Phase::Decode, 7)]);
    }

    #[test]
    fn ring_retains_recent_in_order() {
        let ring = SpanRing::new(4, 2);
        for i in 0..10u64 {
            let mut s = RequestSpan::new("Ping");
            s.seq = i;
            s.total_micros = i;
            ring.push(s);
        }
        let seqs: Vec<u64> = ring.recent().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_retains_slowest_by_total() {
        let ring = SpanRing::new(2, 3);
        for (seq, total) in [(0, 5), (1, 900), (2, 10), (3, 800), (4, 1), (5, 850)] {
            let mut s = RequestSpan::new("Plan");
            s.seq = seq;
            s.total_micros = total;
            ring.push(s);
        }
        let slow: Vec<(u64, u64)> = ring
            .slowest()
            .iter()
            .map(|s| (s.seq, s.total_micros))
            .collect();
        assert_eq!(slow, vec![(1, 900), (5, 850), (3, 800)]);
    }

    #[test]
    fn zero_capacity_ring_is_a_sink() {
        let ring = SpanRing::new(0, 0);
        ring.push(RequestSpan::new("Ping"));
        assert!(ring.recent().is_empty());
        assert!(ring.slowest().is_empty());
    }

    #[test]
    fn by_trace_finds_only_that_traces_spans() {
        let ids = crate::context::IdGen::seeded(21);
        let ring = SpanRing::new(8, 2);
        let ctx_a = ids.root();
        let ctx_b = ids.root();
        for (i, ctx) in [(0, ctx_a), (1, ctx_b), (2, ctx_a)] {
            let mut s = RequestSpan::new("Plan");
            s.seq = i;
            s.trace = ctx;
            ring.push(s);
        }
        let found: Vec<u64> = ring
            .by_trace(ctx_a.trace_id)
            .iter()
            .map(|s| s.seq)
            .collect();
        assert_eq!(found, vec![0, 2]);
        assert!(ring.by_trace(0).is_empty(), "untraced spans never match");
    }

    #[test]
    fn snapshot_carries_hex_trace_ids() {
        let ids = crate::context::IdGen::seeded(22);
        let mut s = RequestSpan::new("Plan");
        s.trace = ids.root().child(&ids);
        let snap = SpanSnapshot::from(&s);
        assert_eq!(snap.trace_id, s.trace.trace_hex());
        assert_eq!(snap.span_id, s.trace.span_hex());
        assert_eq!(snap.parent_span_id, s.trace.parent_hex());

        let untraced = SpanSnapshot::from(&RequestSpan::new("Ping"));
        assert_eq!(untraced.trace_id, "");

        // A pre-tracing peer's snapshot (no id fields) still decodes.
        let old: SpanSnapshot = serde_json::from_str(
            r#"{"seq":1,"verb":"Plan","tier":"lru","total_micros":9,"phase_micros":[0,0,0,0,0,0,0,0,0]}"#,
        )
        .unwrap();
        assert_eq!(old.trace_id, "");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut s = RequestSpan::new("Plan");
        s.seq = 42;
        s.tier = "lru";
        s.total_micros = 123;
        s.record(Phase::FrameRead, 5);
        s.record(Phase::LruLookup, 2);
        let snap = SpanSnapshot::from(&s);
        assert_eq!(snap.phase_micros.len(), PHASE_COUNT);
        assert_eq!(snap.phase_micros[Phase::FrameRead.index()], 5);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SpanSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
