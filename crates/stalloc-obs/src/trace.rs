//! Opt-in JSONL trace sink: one structured record per request.
//!
//! The format is one JSON object per line — greppable, `tail -f`-able,
//! and replayable offline. Only phases the request actually entered are
//! emitted, so a `Ping` line stays tiny. Writing allocates (a line
//! buffer) and takes a mutex; this sink is for `--trace-log` runs, not
//! part of the allocation-free default path.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::span::RequestSpan;

/// A shared JSONL trace file.
pub struct TraceLog {
    out: Mutex<BufWriter<File>>,
}

impl TraceLog {
    /// Creates (truncates) the trace file.
    pub fn create(path: &Path) -> std::io::Result<TraceLog> {
        Ok(TraceLog {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one span as a JSON line and flushes it (so `tail -f` on a
    /// live server sees every request).
    pub fn record(&self, span: &RequestSpan) -> std::io::Result<()> {
        let mut line = String::with_capacity(160);
        let _ = write!(
            line,
            r#"{{"seq":{},"verb":"{}","tier":"{}","total_micros":{}"#,
            span.seq, span.verb, span.tier, span.total_micros
        );
        for (phase, micros) in span.entered() {
            let _ = write!(line, r#","{}":{}"#, phase.name(), micros);
        }
        line.push_str("}\n");
        let mut out = self.out.lock().expect("trace log lock");
        out.write_all(line.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    #[test]
    fn lines_are_valid_json_with_entered_phases_only() {
        let dir = std::env::temp_dir().join(format!("stalloc-obs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let log = TraceLog::create(&path).unwrap();

        let mut a = RequestSpan::new("Plan");
        a.seq = 1;
        a.tier = "miss";
        a.total_micros = 147_000;
        a.record(Phase::FrameRead, 12);
        a.record(Phase::Synthesis, 146_000);
        log.record(&a).unwrap();

        let b = RequestSpan::new("Ping");
        log.record(&b).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("verb"), Some(&serde::Value::Str("Plan".into())));
        assert_eq!(first.get("tier"), Some(&serde::Value::Str("miss".into())));
        assert_eq!(
            first.get("synthesis").and_then(|v| v.as_u64()),
            Some(146_000)
        );
        assert!(first.get("decode").is_none(), "untouched phases stay out");
        let second: serde::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("verb"), Some(&serde::Value::Str("Ping".into())));

        std::fs::remove_dir_all(&dir).ok();
    }
}
