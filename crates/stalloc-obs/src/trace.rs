//! Opt-in JSONL trace sink: one structured record per request.
//!
//! The format is one JSON object per line — greppable, `tail -f`-able,
//! and replayable offline. Only phases the request actually entered are
//! emitted, so a `Ping` line stays tiny. Writing allocates (a line
//! buffer) and takes a mutex; this sink is for `--trace-log` runs, not
//! part of the allocation-free default path.
//!
//! A size cap ([`TraceLog::with_max_bytes`]) bounds disk usage for
//! long-lived servers: when appending a line would push the live file
//! past the cap, the file rotates to `<name>.1` (replacing any previous
//! rotated file) and a fresh live file starts. Rotation happens at line
//! boundaries under the same mutex as writes, so both files always hold
//! whole, valid JSON lines.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::span::RequestSpan;

/// A shared JSONL trace file, optionally size-capped with one rotated
/// generation.
pub struct TraceLog {
    inner: Mutex<Inner>,
}

struct Inner {
    out: BufWriter<File>,
    path: PathBuf,
    /// Rotate before a write would push the live file past this size.
    max_bytes: Option<u64>,
    /// Bytes written to the live file since it was (re)created.
    written: u64,
}

/// The path a capped trace file rotates to: `trace.jsonl` →
/// `trace.jsonl.1`.
pub fn rotated_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".1");
    path.with_file_name(name)
}

impl TraceLog {
    /// Creates (truncates) the trace file, uncapped.
    pub fn create(path: &Path) -> std::io::Result<TraceLog> {
        Self::open(path, None)
    }

    /// Creates (truncates) the trace file with a size cap: once the live
    /// file would exceed `max_bytes`, it rotates to `<name>.1` (keeping
    /// exactly one rotated generation) and starts fresh.
    pub fn with_max_bytes(path: &Path, max_bytes: u64) -> std::io::Result<TraceLog> {
        Self::open(path, Some(max_bytes))
    }

    fn open(path: &Path, max_bytes: Option<u64>) -> std::io::Result<TraceLog> {
        Ok(TraceLog {
            inner: Mutex::new(Inner {
                out: BufWriter::new(File::create(path)?),
                path: path.to_path_buf(),
                max_bytes,
                written: 0,
            }),
        })
    }

    /// Appends one span as a JSON line and flushes it (so `tail -f` on a
    /// live server sees every request), rotating first if the line would
    /// push a capped file over its limit.
    pub fn record(&self, span: &RequestSpan) -> std::io::Result<()> {
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            r#"{{"seq":{},"verb":"{}","tier":"{}","total_micros":{}"#,
            span.seq, span.verb, span.tier, span.total_micros
        );
        if span.trace.is_set() {
            let _ = write!(
                line,
                r#","trace_id":"{:032x}","span_id":"{:016x}","parent_span_id":"{:016x}""#,
                span.trace.trace_id, span.trace.span_id, span.trace.parent_span_id
            );
        }
        for (phase, micros) in span.entered() {
            let _ = write!(line, r#","{}":{}"#, phase.name(), micros);
        }
        line.push_str("}\n");

        let mut inner = self.inner.lock().expect("trace log lock");
        if let Some(max) = inner.max_bytes {
            // `written > 0` lets a single line larger than the cap still
            // land (in a file of its own) instead of rotating forever.
            if inner.written > 0 && inner.written.saturating_add(line.len() as u64) > max {
                inner.out.flush()?;
                std::fs::rename(&inner.path, rotated_path(&inner.path))?;
                inner.out = BufWriter::new(File::create(&inner.path)?);
                inner.written = 0;
            }
        }
        inner.out.write_all(line.as_bytes())?;
        inner.written += line.len() as u64;
        inner.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stalloc-obs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lines_are_valid_json_with_entered_phases_only() {
        let dir = temp_dir("trace");
        let path = dir.join("trace.jsonl");
        let log = TraceLog::create(&path).unwrap();

        let mut a = RequestSpan::new("Plan");
        a.seq = 1;
        a.tier = "miss";
        a.total_micros = 147_000;
        a.record(Phase::FrameRead, 12);
        a.record(Phase::Synthesis, 146_000);
        log.record(&a).unwrap();

        let b = RequestSpan::new("Ping");
        log.record(&b).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("verb"), Some(&serde::Value::Str("Plan".into())));
        assert_eq!(first.get("tier"), Some(&serde::Value::Str("miss".into())));
        assert_eq!(
            first.get("synthesis").and_then(|v| v.as_u64()),
            Some(146_000)
        );
        assert!(first.get("decode").is_none(), "untouched phases stay out");
        let second: serde::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("verb"), Some(&serde::Value::Str("Ping".into())));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_spans_emit_hex_ids_untraced_spans_stay_compact() {
        let dir = temp_dir("trace-ids");
        let path = dir.join("trace.jsonl");
        let log = TraceLog::create(&path).unwrap();

        let ids = crate::context::IdGen::seeded(17);
        let mut traced = RequestSpan::new("Plan");
        traced.trace = ids.root().child(&ids);
        traced.record(Phase::FrameRead, 3);
        log.record(&traced).unwrap();
        log.record(&RequestSpan::new("Ping")).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let first: serde::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.get("trace_id"),
            Some(&serde::Value::Str(traced.trace.trace_hex()))
        );
        assert_eq!(
            first.get("parent_span_id"),
            Some(&serde::Value::Str(traced.trace.parent_hex()))
        );
        let second: serde::Value = serde_json::from_str(lines[1]).unwrap();
        assert!(
            second.get("trace_id").is_none(),
            "untraced lines carry no ids"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_preserves_valid_jsonl_on_both_files() {
        let dir = temp_dir("trace-rotate");
        let path = dir.join("trace.jsonl");
        // Cap small enough that 40 spans force several rotations.
        let log = TraceLog::with_max_bytes(&path, 512).unwrap();

        for seq in 0..40u64 {
            let mut s = RequestSpan::new("Plan");
            s.seq = seq;
            s.tier = "lru";
            s.total_micros = seq * 3;
            s.record(Phase::FrameRead, seq);
            log.record(&s).unwrap();
        }

        let live = std::fs::read_to_string(&path).unwrap();
        let rotated = std::fs::read_to_string(rotated_path(&path)).unwrap();
        assert!(live.len() as u64 <= 512, "live file respects the cap");
        assert!(rotated.len() as u64 <= 512, "rotated file respects the cap");

        // Every line in both generations parses; together they hold the
        // tail of the sequence with no torn or duplicated records.
        let mut seqs = Vec::new();
        for text in [&rotated, &live] {
            for line in text.lines() {
                let v: serde::Value = serde_json::from_str(line).unwrap();
                assert_eq!(v.get("verb"), Some(&serde::Value::Str("Plan".into())));
                seqs.push(v.get("seq").and_then(|s| s.as_u64()).unwrap());
            }
        }
        assert!(!seqs.is_empty());
        let windows_ok = seqs.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(windows_ok, "rotation kept a contiguous tail: {seqs:?}");
        assert_eq!(
            *seqs.last().unwrap(),
            39,
            "newest record is in the live file"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_single_line_still_lands() {
        let dir = temp_dir("trace-oversize");
        let path = dir.join("trace.jsonl");
        // Cap far below one line's size: the record must still be written
        // rather than looping on rotation.
        let log = TraceLog::with_max_bytes(&path, 4).unwrap();
        let mut s = RequestSpan::new("Plan");
        s.seq = 7;
        log.record(&s).unwrap();
        log.record(&s).unwrap();
        let live = std::fs::read_to_string(&path).unwrap();
        let rotated = std::fs::read_to_string(rotated_path(&path)).unwrap();
        assert_eq!(live.lines().count(), 1);
        assert_eq!(rotated.lines().count(), 1);
        for line in live.lines().chain(rotated.lines()) {
            let _: serde::Value = serde_json::from_str(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_tear_lines() {
        let dir = temp_dir("trace-threads");
        let path = dir.join("trace.jsonl");
        let log = std::sync::Arc::new(TraceLog::create(&path).unwrap());

        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let mut s = RequestSpan::new("Plan");
                        s.seq = t * 100 + i;
                        s.tier = "store";
                        s.total_micros = i;
                        s.record(Phase::FrameRead, t);
                        s.record(Phase::StoreLookup, i);
                        log.record(&s).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 800, "8 threads × 100 spans, none lost");
        let mut seqs = std::collections::BTreeSet::new();
        for line in lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("verb"), Some(&serde::Value::Str("Plan".into())));
            seqs.insert(v.get("seq").and_then(|s| s.as_u64()).unwrap());
        }
        assert_eq!(seqs.len(), 800, "every span's line is whole and distinct");

        std::fs::remove_dir_all(&dir).ok();
    }
}
