//! Proves the hot-path guarantee: recording a counter, a histogram
//! sample, and a full request span (including the ring push) performs
//! zero heap allocations per request.
//!
//! Lives in its own integration-test binary because it installs a
//! process-wide counting `#[global_allocator]`; cargo gives each
//! integration test its own process, so nothing else is affected.

use stalloc_obs::{LatencyHistogram, Phase, RequestSpan, ShardedCounter, SpanRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn recording_a_request_allocates_nothing() {
    // Construction allocates (rings and shards are pre-sized here, once
    // per server lifetime) — that is outside the guarantee.
    let counter = ShardedCounter::new();
    let hist = LatencyHistogram::new();
    let tier_hist = LatencyHistogram::new();
    let ring = SpanRing::new(64, 8);

    // Warm up: claim this thread's shard id, fill the ring past both
    // capacities so steady state (overwrite + slowest-scan) is measured.
    for i in 0..100u64 {
        counter.inc();
        let mut span = RequestSpan::new("Plan");
        span.seq = i;
        span.total_micros = i;
        ring.push(span);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.inc();
        hist.record(69 + i % 7);
        tier_hist.record(69 + i % 7);

        let mut span = RequestSpan::new("Plan");
        span.seq = 100 + i;
        span.tier = "lru";
        span.record(Phase::FrameRead, 3);
        span.record(Phase::Decode, 1);
        span.record(Phase::Fingerprint, 9);
        span.record(Phase::LruLookup, 2);
        span.record(Phase::Encode, 4);
        span.record(Phase::FrameWrite, 5);
        span.total_micros = 24;
        ring.push(span);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "hot-path recording must not touch the heap"
    );

    // Sanity: the work above actually happened.
    assert_eq!(counter.get(), 10_100);
    assert_eq!(hist.count(), 10_000);
    assert_eq!(ring.slowest().len(), 8);
}
