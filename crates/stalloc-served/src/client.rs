//! Blocking client for the planning daemon.
//!
//! One [`PlanClient`] wraps one keep-alive TCP connection; requests on it
//! are sequential (open more clients for concurrency). Responses are
//! distrusted: plans are re-validated on receipt, so a corrupt or
//! malicious server cannot push an unsound plan into a training run.
//!
//! Both large payloads travel binary-encoded by default: served plans
//! come back as a `PlanBin` header frame plus one raw `STPL` codec frame
//! ([`PlanEncoding::Binary`]), and the *request's profile* goes out as a
//! `ProfileBin` header frame plus one raw `PROF` codec frame
//! ([`ProfileEncoding::Binary`]) — skipping the serde value-tree round
//! trips that dominate per-request cost on both directions. The client
//! encodes/decodes transparently; [`PlanClient::with_encoding`] and
//! [`PlanClient::with_profile_encoding`] switch either direction back to
//! inline JSON (handy when eavesdropping on the wire with `nc`, or when
//! talking to a pre-`ProfileBin` server).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use stalloc_core::wire::{
    PlanEncoding, PlanRequest, PlanResponse, PlanSource, ProfileEncoding, ServeMetrics, ServeStats,
    WireErrorKind,
};
use stalloc_core::{Fingerprint, Plan, ProfiledRequests, SynthConfig};
use stalloc_store::{decode_plan, encode_profile, profile_body};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's frame could not be decoded.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable failure class.
        kind: WireErrorKind,
        /// Server-provided detail.
        message: String,
    },
    /// The server broke the protocol (closed mid-exchange, wrong variant,
    /// unsound plan).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "plan server i/o: {e}"),
            ClientError::Frame(e) => write!(f, "plan server frame: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "plan server error ({kind}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "plan server protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A successfully served plan with its provenance.
#[derive(Debug, Clone)]
pub struct RemotePlan {
    /// The validated plan.
    pub plan: Plan,
    /// Job fingerprint the server keyed it by.
    pub fingerprint: Fingerprint,
    /// Cache tier (or synthesis) that produced it.
    pub source: PlanSource,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// One connection to a `stalloc-served` daemon.
pub struct PlanClient {
    stream: TcpStream,
    max_frame: usize,
    encoding: PlanEncoding,
    profile_encoding: ProfileEncoding,
}

impl PlanClient {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:4547"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous default: plan synthesis for large jobs takes a while
        // and the server answers Busy fast when overloaded.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(PlanClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            encoding: PlanEncoding::default(),
            profile_encoding: ProfileEncoding::default(),
        })
    }

    /// Caps the response frames this client will accept.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Chooses how served plans travel (default: [`PlanEncoding::Binary`]).
    pub fn with_encoding(mut self, encoding: PlanEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Chooses how this client's profiles travel (default:
    /// [`ProfileEncoding::Binary`]). Use [`ProfileEncoding::Json`] to
    /// speak to servers that predate the `ProfileBin` verb.
    pub fn with_profile_encoding(mut self, profile_encoding: ProfileEncoding) -> Self {
        self.profile_encoding = profile_encoding;
        self
    }

    /// How this client's profiles travel.
    pub fn profile_encoding(&self) -> ProfileEncoding {
        self.profile_encoding
    }

    fn send(&mut self, request: &PlanRequest) -> Result<(), ClientError> {
        let payload = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode request: {e}")))?;
        write_frame(&mut self.stream, payload.as_bytes())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<PlanResponse, ClientError> {
        let frame = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed before responding".into()))?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("non-UTF-8 response: {e}")))?;
        let response: PlanResponse = serde_json::from_str(text)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        if let PlanResponse::Error { kind, message } = response {
            return Err(ClientError::Server { kind, message });
        }
        Ok(response)
    }

    fn roundtrip(&mut self, request: &PlanRequest) -> Result<PlanResponse, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Accepts a plan response, distrusting the server: the echoed
    /// fingerprint must match the one we can compute (or asked for)
    /// locally — so a server-side mixup cannot hand this job another
    /// job's plan — and the plan must pass the soundness check.
    fn accept_plan(
        &self,
        expected: Fingerprint,
        fingerprint: String,
        source: PlanSource,
        micros: u64,
        plan: Plan,
    ) -> Result<RemotePlan, ClientError> {
        let fingerprint = Fingerprint::from_hex(&fingerprint)
            .ok_or_else(|| ClientError::Protocol(format!("bad fingerprint '{fingerprint}'")))?;
        if fingerprint != expected {
            return Err(ClientError::Protocol(format!(
                "server answered for job {fingerprint}, expected {expected}"
            )));
        }
        plan.validate()
            .map_err(|e| ClientError::Protocol(format!("server sent unsound plan: {e}")))?;
        Ok(RemotePlan {
            plan,
            fingerprint,
            source,
            micros,
        })
    }

    /// Reads the raw binary-codec frame a `PlanBin` header announces and
    /// decodes it. The declared length is checked first: a mismatch means
    /// the stream is unsynchronized and must not be trusted.
    fn read_binary_plan(&mut self, declared: u64) -> Result<Plan, ClientError> {
        let frame = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed before plan payload".into()))?;
        if frame.len() as u64 != declared {
            return Err(ClientError::Protocol(format!(
                "binary plan frame is {} bytes, header declared {declared}",
                frame.len()
            )));
        }
        decode_plan(&frame)
            .map_err(|e| ClientError::Protocol(format!("undecodable binary plan: {e}")))
    }

    /// Plans a job remotely: cache hit, coalesced wait, or synthesis —
    /// the server decides; the response says which ([`RemotePlan::source`]).
    ///
    /// The profile travels per [`Self::profile_encoding`]: inline JSON
    /// in a `Plan` request, or (the default) a `ProfileBin` header frame
    /// followed by one raw `PROF` codec frame — the fingerprint, cache
    /// behaviour, and response are identical either way.
    pub fn plan(
        &mut self,
        profile: &ProfiledRequests,
        config: &SynthConfig,
    ) -> Result<RemotePlan, ClientError> {
        let expected = match self.profile_encoding {
            ProfileEncoding::Json => {
                let expected = stalloc_core::fingerprint_job(profile, config);
                let request = PlanRequest::Plan {
                    profile: profile.clone(),
                    config: *config,
                    encoding: Some(self.encoding),
                };
                self.send(&request)?;
                expected
            }
            ProfileEncoding::Binary => {
                // One canonical encode serves both purposes: the wire
                // payload and the fingerprint (the `PROF` body is the
                // fingerprint walk, so hashing the bytes equals
                // `fingerprint_job` on the profile).
                let raw = encode_profile(profile);
                let body = profile_body(&raw)
                    .map_err(|e| ClientError::Protocol(format!("encode profile: {e}")))?;
                let expected = stalloc_core::fingerprint_job_body(body, config);
                let header = PlanRequest::ProfileBin {
                    config: *config,
                    encoding: Some(self.encoding),
                    bytes: raw.len() as u64,
                };
                self.send(&header)?;
                write_frame(&mut self.stream, &raw)?;
                expected
            }
        };
        match self.recv()? {
            PlanResponse::Plan {
                fingerprint,
                source,
                micros,
                plan,
            } => self.accept_plan(expected, fingerprint, source, micros, plan),
            PlanResponse::PlanBin {
                fingerprint,
                source,
                micros,
                bytes,
            } => {
                let plan = self.read_binary_plan(bytes)?;
                self.accept_plan(expected, fingerprint, source, micros, plan)
            }
            other => Err(ClientError::Protocol(format!(
                "expected Plan response, got {other:?}"
            ))),
        }
    }

    /// Looks up a cached plan by fingerprint; `Ok(None)` if the server
    /// has never planned that job.
    pub fn get(&mut self, fp: Fingerprint) -> Result<Option<RemotePlan>, ClientError> {
        let request = PlanRequest::Get {
            fingerprint: fp.to_hex(),
            encoding: Some(self.encoding),
        };
        match self.roundtrip(&request)? {
            PlanResponse::Plan {
                fingerprint,
                source,
                micros,
                plan,
            } => Ok(Some(self.accept_plan(
                fp,
                fingerprint,
                source,
                micros,
                plan,
            )?)),
            PlanResponse::PlanBin {
                fingerprint,
                source,
                micros,
                bytes,
            } => {
                let plan = self.read_binary_plan(bytes)?;
                Ok(Some(self.accept_plan(
                    fp,
                    fingerprint,
                    source,
                    micros,
                    plan,
                )?))
            }
            PlanResponse::NotFound { .. } => Ok(None),
            other => Err(ClientError::Protocol(format!(
                "expected Plan/NotFound response, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's cumulative counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        match self.roundtrip(&PlanRequest::Stats)? {
            PlanResponse::Stats { stats } => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected Stats response, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's latency metrics (per-phase and per-tier
    /// histograms, slowest spans, plus the `Stats` counters).
    ///
    /// Servers that predate the `Metrics` verb reject the unknown
    /// request as a typed `BadFrame` error, surfaced here as
    /// [`ClientError::Server`] — and close the connection, so this
    /// client is not reusable after that.
    pub fn metrics(&mut self) -> Result<ServeMetrics, ClientError> {
        match self.roundtrip(&PlanRequest::Metrics)? {
            PlanResponse::Metrics { metrics } => Ok(metrics),
            other => Err(ClientError::Protocol(format!(
                "expected Metrics response, got {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&PlanRequest::Ping)? {
            PlanResponse::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong response, got {other:?}"
            ))),
        }
    }
}
