//! Blocking client for the planning daemon.
//!
//! One [`PlanClient`] wraps one keep-alive TCP connection; requests on it
//! are sequential (open more clients for concurrency). Responses are
//! distrusted: plans are re-validated on receipt, so a corrupt or
//! malicious server cannot push an unsound plan into a training run.
//!
//! Both large payloads travel binary-encoded by default: served plans
//! come back as a `PlanBin` header frame plus one raw `STPL` codec frame
//! ([`PlanEncoding::Binary`]), and the *request's profile* goes out as a
//! `ProfileBin` header frame plus one raw `PROF` codec frame
//! ([`ProfileEncoding::Binary`]) — skipping the serde value-tree round
//! trips that dominate per-request cost on both directions. The client
//! encodes/decodes transparently; [`PlanClient::with_encoding`] and
//! [`PlanClient::with_profile_encoding`] switch either direction back to
//! inline JSON (handy when eavesdropping on the wire with `nc`, or when
//! talking to a pre-`ProfileBin` server).
//!
//! Every request is traced: the client mints one trace id per
//! connection ([`PlanClient::with_trace_id`] overrides it), records a
//! [`ClientSpan`] per request (readable via [`PlanClient::last_span`]),
//! and sends each planning verb a child [`TraceContext`] so the
//! server's span links back to the client's. Old servers skip the
//! unknown field; the client span is complete either way.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use stalloc_core::wire::{
    PlanEncoding, PlanRequest, PlanResponse, PlanSource, ProfileEncoding, ServeMetrics, ServeStats,
    WireErrorKind,
};
use stalloc_core::{diff_profiles, Fingerprint, Plan, ProfiledRequests, SynthConfig};
use stalloc_obs::{id_gen, ClientPhase, ClientSpan, SpanSnapshot, TraceContext};
use stalloc_store::{decode_plan, encode_profile, encode_profile_delta, profile_body};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's frame could not be decoded.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable failure class.
        kind: WireErrorKind,
        /// Server-provided detail.
        message: String,
    },
    /// The server broke the protocol (closed mid-exchange, wrong variant,
    /// unsound plan).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "plan server i/o: {e}"),
            ClientError::Frame(e) => write!(f, "plan server frame: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "plan server error ({kind}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "plan server protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A successfully served plan with its provenance.
#[derive(Debug, Clone)]
pub struct RemotePlan {
    /// The validated plan.
    pub plan: Plan,
    /// Job fingerprint the server keyed it by.
    pub fingerprint: Fingerprint,
    /// Cache tier (or synthesis) that produced it.
    pub source: PlanSource,
    /// Server-side handling time, microseconds.
    pub micros: u64,
}

/// One connection to a `stalloc-served` daemon.
pub struct PlanClient {
    stream: TcpStream,
    /// Resolved peer address, kept for the delta fallback's reconnect
    /// (an old server closes the connection on the unknown verb).
    addr: SocketAddr,
    max_frame: usize,
    encoding: PlanEncoding,
    profile_encoding: ProfileEncoding,
    /// This connection's root context: every request span is its child,
    /// and every wire context is that span's child.
    root: TraceContext,
    /// Connect + socket setup time, folded into the first request's
    /// span (keep-alive requests never reconnect).
    pending_connect_micros: u64,
    last_span: Option<ClientSpan>,
}

impl PlanClient {
    /// Connects to a daemon at `addr` (e.g. `"127.0.0.1:4547"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let connect_start = Instant::now();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous default: plan synthesis for large jobs takes a while
        // and the server answers Busy fast when overloaded.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let addr = stream.peer_addr()?;
        Ok(PlanClient {
            stream,
            addr,
            max_frame: DEFAULT_MAX_FRAME,
            encoding: PlanEncoding::default(),
            profile_encoding: ProfileEncoding::default(),
            root: id_gen().root(),
            pending_connect_micros: connect_start.elapsed().as_micros() as u64,
            last_span: None,
        })
    }

    /// Caps the response frames this client will accept.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Chooses how served plans travel (default: [`PlanEncoding::Binary`]).
    pub fn with_encoding(mut self, encoding: PlanEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Chooses how this client's profiles travel (default:
    /// [`ProfileEncoding::Binary`]). Use [`ProfileEncoding::Json`] to
    /// speak to servers that predate the `ProfileBin` verb.
    pub fn with_profile_encoding(mut self, profile_encoding: ProfileEncoding) -> Self {
        self.profile_encoding = profile_encoding;
        self
    }

    /// How this client's profiles travel.
    pub fn profile_encoding(&self) -> ProfileEncoding {
        self.profile_encoding
    }

    /// Tags every request on this client with `trace_id` instead of the
    /// connection-minted one — so a whole experiment's requests, across
    /// connections, share one trace.
    pub fn with_trace_id(mut self, trace_id: u128) -> Self {
        self.root.trace_id = trace_id;
        self
    }

    /// The context identifying this connection; every request span is
    /// its child.
    pub fn trace_context(&self) -> TraceContext {
        self.root
    }

    /// The client-side span of the most recent request (complete even
    /// when the request failed). [`Self::trace_get`] does not overwrite
    /// it — it is the span-fetching verb, so a caller can plan, read
    /// `last_span`, then pull the matching server spans.
    pub fn last_span(&self) -> Option<ClientSpan> {
        self.last_span
    }

    /// Starts a span for one request: the span context is a child of
    /// the connection root, and the context *sent on the wire* is the
    /// span's own child — so server-side spans parent onto the client
    /// span, not onto the connection.
    fn begin_span(&mut self, verb: &'static str) -> (ClientSpan, TraceContext) {
        let span_ctx = self.root.child(id_gen());
        let wire_ctx = span_ctx.child(id_gen());
        let mut span = ClientSpan::new(verb, span_ctx);
        if self.pending_connect_micros > 0 {
            span.record(ClientPhase::Connect, self.pending_connect_micros);
            self.pending_connect_micros = 0;
        }
        (span, wire_ctx)
    }

    /// Stamps the span's total (connect time included, since the caller
    /// paid for it on this request) and publishes it as [`Self::last_span`].
    fn finish_span(&mut self, mut span: ClientSpan, started: Instant) {
        span.total_micros = span.phase_micros(ClientPhase::Connect).unwrap_or(0)
            + started.elapsed().as_micros() as u64;
        self.last_span = Some(span);
    }

    fn send(&mut self, request: &PlanRequest) -> Result<(), ClientError> {
        let payload = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode request: {e}")))?;
        write_frame(&mut self.stream, payload.as_bytes())?;
        Ok(())
    }

    fn send_span(
        &mut self,
        request: &PlanRequest,
        span: &mut ClientSpan,
    ) -> Result<(), ClientError> {
        let encode = Instant::now();
        let payload = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("encode request: {e}")))?;
        span.record_since(ClientPhase::Encode, encode);
        let write = Instant::now();
        write_frame(&mut self.stream, payload.as_bytes())?;
        span.record_since(ClientPhase::Write, write);
        Ok(())
    }

    fn recv(&mut self) -> Result<PlanResponse, ClientError> {
        let frame = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed before responding".into()))?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("non-UTF-8 response: {e}")))?;
        let response: PlanResponse = serde_json::from_str(text)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        if let PlanResponse::Error { kind, message } = response {
            return Err(ClientError::Server { kind, message });
        }
        Ok(response)
    }

    fn recv_span(&mut self, span: &mut ClientSpan) -> Result<PlanResponse, ClientError> {
        // Await covers blocking for + reading the response header frame:
        // both network legs plus the whole server-side span.
        let await_start = Instant::now();
        let frame = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed before responding".into()))?;
        span.record_since(ClientPhase::Await, await_start);
        let decode = Instant::now();
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("non-UTF-8 response: {e}")))?;
        let response: PlanResponse = serde_json::from_str(text)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {e}")))?;
        span.record_since(ClientPhase::Decode, decode);
        if let PlanResponse::Error { kind, message } = response {
            return Err(ClientError::Server { kind, message });
        }
        Ok(response)
    }

    fn roundtrip(&mut self, request: &PlanRequest) -> Result<PlanResponse, ClientError> {
        self.send(request)?;
        self.recv()
    }

    fn roundtrip_span(
        &mut self,
        request: &PlanRequest,
        span: &mut ClientSpan,
    ) -> Result<PlanResponse, ClientError> {
        self.send_span(request, span)?;
        self.recv_span(span)
    }

    /// Accepts a plan response, distrusting the server: the echoed
    /// fingerprint must match the one we can compute (or asked for)
    /// locally — so a server-side mixup cannot hand this job another
    /// job's plan — and the plan must pass the soundness check.
    fn accept_plan(
        &self,
        expected: Fingerprint,
        fingerprint: String,
        source: PlanSource,
        micros: u64,
        plan: Plan,
    ) -> Result<RemotePlan, ClientError> {
        let fingerprint = Fingerprint::from_hex(&fingerprint)
            .ok_or_else(|| ClientError::Protocol(format!("bad fingerprint '{fingerprint}'")))?;
        if fingerprint != expected {
            return Err(ClientError::Protocol(format!(
                "server answered for job {fingerprint}, expected {expected}"
            )));
        }
        plan.validate()
            .map_err(|e| ClientError::Protocol(format!("server sent unsound plan: {e}")))?;
        Ok(RemotePlan {
            plan,
            fingerprint,
            source,
            micros,
        })
    }

    /// Reads the raw binary-codec frame a `PlanBin` header announces and
    /// decodes it. The declared length is checked first: a mismatch means
    /// the stream is unsynchronized and must not be trusted.
    fn read_binary_plan(
        &mut self,
        declared: u64,
        span: &mut ClientSpan,
    ) -> Result<Plan, ClientError> {
        let read = Instant::now();
        let frame = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| ClientError::Protocol("server closed before plan payload".into()))?;
        span.record_since(ClientPhase::Read, read);
        if frame.len() as u64 != declared {
            return Err(ClientError::Protocol(format!(
                "binary plan frame is {} bytes, header declared {declared}",
                frame.len()
            )));
        }
        let decode = Instant::now();
        let plan = decode_plan(&frame)
            .map_err(|e| ClientError::Protocol(format!("undecodable binary plan: {e}")));
        span.record_since(ClientPhase::Decode, decode);
        plan
    }

    /// Plans a job remotely: cache hit, coalesced wait, or synthesis —
    /// the server decides; the response says which ([`RemotePlan::source`]).
    ///
    /// The profile travels per [`Self::profile_encoding`]: inline JSON
    /// in a `Plan` request, or (the default) a `ProfileBin` header frame
    /// followed by one raw `PROF` codec frame — the fingerprint, cache
    /// behaviour, and response are identical either way.
    pub fn plan(
        &mut self,
        profile: &ProfiledRequests,
        config: &SynthConfig,
    ) -> Result<RemotePlan, ClientError> {
        let (mut span, wire) = self.begin_span("Plan");
        let started = Instant::now();
        let result = self.plan_traced(profile, config, wire, &mut span);
        self.finish_span(span, started);
        result
    }

    fn plan_traced(
        &mut self,
        profile: &ProfiledRequests,
        config: &SynthConfig,
        wire: TraceContext,
        span: &mut ClientSpan,
    ) -> Result<RemotePlan, ClientError> {
        let expected = match self.profile_encoding {
            ProfileEncoding::Json => {
                let expected = stalloc_core::fingerprint_job(profile, config);
                let request = PlanRequest::Plan {
                    profile: profile.clone(),
                    config: *config,
                    encoding: Some(self.encoding),
                    trace: Some(wire),
                };
                self.send_span(&request, span)?;
                expected
            }
            ProfileEncoding::Binary => {
                // One canonical encode serves both purposes: the wire
                // payload and the fingerprint (the `PROF` body is the
                // fingerprint walk, so hashing the bytes equals
                // `fingerprint_job` on the profile).
                let encode = Instant::now();
                let raw = encode_profile(profile);
                let body = profile_body(&raw)
                    .map_err(|e| ClientError::Protocol(format!("encode profile: {e}")))?;
                let expected = stalloc_core::fingerprint_job_body(body, config);
                span.record_since(ClientPhase::Encode, encode);
                let header = PlanRequest::ProfileBin {
                    config: *config,
                    encoding: Some(self.encoding),
                    bytes: raw.len() as u64,
                    trace: Some(wire),
                };
                self.send_span(&header, span)?;
                let write = Instant::now();
                write_frame(&mut self.stream, &raw)?;
                span.record_since(ClientPhase::Write, write);
                expected
            }
        };
        match self.recv_span(span)? {
            PlanResponse::Plan {
                fingerprint,
                source,
                micros,
                plan,
            } => self.accept_plan(expected, fingerprint, source, micros, plan),
            PlanResponse::PlanBin {
                fingerprint,
                source,
                micros,
                bytes,
            } => {
                let plan = self.read_binary_plan(bytes, span)?;
                self.accept_plan(expected, fingerprint, source, micros, plan)
            }
            other => Err(ClientError::Protocol(format!(
                "expected Plan response, got {other:?}"
            ))),
        }
    }

    /// Plans the *next* job of a profile family by sending only its
    /// edit script against `base` (a profile the server has already
    /// seen, e.g. via a previous [`Self::plan`] call on this server).
    ///
    /// Two transparent fallbacks make this safe to call
    /// unconditionally:
    ///
    /// * a server that knows the verb but has evicted the base answers
    ///   `NotFound`, and the full profile is retried on the same
    ///   connection;
    /// * a server that predates the verb answers a typed `BadFrame`
    ///   error (or just closes), and the full profile is retried on a
    ///   fresh connection.
    ///
    /// Either way the caller gets the same validated plan a
    /// [`Self::plan`] call for `next` would produce; only
    /// [`RemotePlan::source`] tells the paths apart
    /// ([`PlanSource::Patched`] when the server patched in-process).
    pub fn plan_delta(
        &mut self,
        base: &ProfiledRequests,
        next: &ProfiledRequests,
        config: &SynthConfig,
    ) -> Result<RemotePlan, ClientError> {
        let (mut span, wire) = self.begin_span("PlanDelta");
        let started = Instant::now();
        let result = self.plan_delta_traced(base, next, config, wire, &mut span);
        self.finish_span(span, started);
        result
    }

    fn plan_delta_traced(
        &mut self,
        base: &ProfiledRequests,
        next: &ProfiledRequests,
        config: &SynthConfig,
        wire: TraceContext,
        span: &mut ClientSpan,
    ) -> Result<RemotePlan, ClientError> {
        let encode = Instant::now();
        let delta = diff_profiles(base, next);
        let raw = encode_profile_delta(&delta);
        let expected = stalloc_core::fingerprint_job(next, config);
        span.record_since(ClientPhase::Encode, encode);
        let header = PlanRequest::PlanDelta {
            config: *config,
            encoding: Some(self.encoding),
            bytes: raw.len() as u64,
            trace: Some(wire),
        };
        let exchanged = self.send_span(&header, span).and_then(|()| {
            let write = Instant::now();
            write_frame(&mut self.stream, &raw)?;
            span.record_since(ClientPhase::Write, write);
            self.recv_span(span)
        });
        match exchanged {
            Ok(PlanResponse::Plan {
                fingerprint,
                source,
                micros,
                plan,
            }) => self.accept_plan(expected, fingerprint, source, micros, plan),
            Ok(PlanResponse::PlanBin {
                fingerprint,
                source,
                micros,
                bytes,
            }) => {
                let plan = self.read_binary_plan(bytes, span)?;
                self.accept_plan(expected, fingerprint, source, micros, plan)
            }
            // The server no longer holds the base profile. The stream is
            // still synchronized (both frames were consumed), so retry
            // with the full profile on this very connection.
            Ok(PlanResponse::NotFound { .. }) => self.plan_traced(next, config, wire, span),
            Ok(other) => Err(ClientError::Protocol(format!(
                "expected Plan/NotFound response, got {other:?}"
            ))),
            // A pre-`PlanDelta` server: typed `BadFrame` then close, or
            // just a closed/reset connection. Reconnect and retry full.
            Err(e) if delta_needs_full_retry(&e) => {
                let connect = Instant::now();
                self.reconnect()?;
                span.record_since(ClientPhase::Connect, connect);
                self.plan_traced(next, config, wire, span)
            }
            Err(e) => Err(e),
        }
    }

    /// Replaces the connection after the peer closed it (the old-server
    /// delta fallback). Keeps the trace root: the retry is part of the
    /// same logical request.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        self.stream = stream;
        Ok(())
    }

    /// Looks up a cached plan by fingerprint; `Ok(None)` if the server
    /// has never planned that job.
    pub fn get(&mut self, fp: Fingerprint) -> Result<Option<RemotePlan>, ClientError> {
        let (mut span, wire) = self.begin_span("Get");
        let started = Instant::now();
        let result = self.get_traced(fp, wire, &mut span);
        self.finish_span(span, started);
        result
    }

    fn get_traced(
        &mut self,
        fp: Fingerprint,
        wire: TraceContext,
        span: &mut ClientSpan,
    ) -> Result<Option<RemotePlan>, ClientError> {
        let request = PlanRequest::Get {
            fingerprint: fp.to_hex(),
            encoding: Some(self.encoding),
            trace: Some(wire),
        };
        match self.roundtrip_span(&request, span)? {
            PlanResponse::Plan {
                fingerprint,
                source,
                micros,
                plan,
            } => Ok(Some(self.accept_plan(
                fp,
                fingerprint,
                source,
                micros,
                plan,
            )?)),
            PlanResponse::PlanBin {
                fingerprint,
                source,
                micros,
                bytes,
            } => {
                let plan = self.read_binary_plan(bytes, span)?;
                Ok(Some(self.accept_plan(
                    fp,
                    fingerprint,
                    source,
                    micros,
                    plan,
                )?))
            }
            PlanResponse::NotFound { .. } => Ok(None),
            other => Err(ClientError::Protocol(format!(
                "expected Plan/NotFound response, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's cumulative counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        let (mut span, _) = self.begin_span("Stats");
        let started = Instant::now();
        let result = self.roundtrip_span(&PlanRequest::Stats, &mut span);
        self.finish_span(span, started);
        match result? {
            PlanResponse::Stats { stats } => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected Stats response, got {other:?}"
            ))),
        }
    }

    /// Fetches the server-side spans the recent ring holds for a trace
    /// id (32 hex digits, e.g. [`TraceContext::trace_hex`]).
    ///
    /// Servers that predate the `TraceGet` verb reject it as a typed
    /// `BadFrame` error ([`ClientError::Server`]) and close the
    /// connection — same fallback contract as [`Self::metrics`].
    pub fn trace_get(&mut self, trace_id: &str) -> Result<Vec<SpanSnapshot>, ClientError> {
        let request = PlanRequest::TraceGet {
            trace_id: trace_id.to_string(),
        };
        match self.roundtrip(&request)? {
            PlanResponse::Trace { spans, .. } => Ok(spans),
            other => Err(ClientError::Protocol(format!(
                "expected Trace response, got {other:?}"
            ))),
        }
    }

    /// Fetches the server's latency metrics (per-phase and per-tier
    /// histograms, slowest spans, plus the `Stats` counters).
    ///
    /// Servers that predate the `Metrics` verb reject the unknown
    /// request as a typed `BadFrame` error, surfaced here as
    /// [`ClientError::Server`] — and close the connection, so this
    /// client is not reusable after that.
    pub fn metrics(&mut self) -> Result<ServeMetrics, ClientError> {
        let (mut span, _) = self.begin_span("Metrics");
        let started = Instant::now();
        let result = self.roundtrip_span(&PlanRequest::Metrics, &mut span);
        self.finish_span(span, started);
        match result? {
            PlanResponse::Metrics { metrics } => Ok(metrics),
            other => Err(ClientError::Protocol(format!(
                "expected Metrics response, got {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let (mut span, _) = self.begin_span("Ping");
        let started = Instant::now();
        let result = self.roundtrip_span(&PlanRequest::Ping, &mut span);
        self.finish_span(span, started);
        match result? {
            PlanResponse::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Pong response, got {other:?}"
            ))),
        }
    }
}

/// Whether a failed `PlanDelta` exchange looks like "the server does not
/// speak the verb" — a typed `BadFrame` (old servers reject unknown
/// verbs that way, then close), a transport error (the close races the
/// error frame), or the clean close-before-response. Anything else
/// (`Busy`, `Oversized`, an undecodable *response*) is a real failure
/// that retrying with a full profile would only repeat or mask.
fn delta_needs_full_retry(e: &ClientError) -> bool {
    match e {
        ClientError::Server {
            kind: WireErrorKind::BadFrame,
            ..
        }
        | ClientError::Io(_) => true,
        ClientError::Protocol(m) => m.contains("server closed before responding"),
        _ => false,
    }
}
