//! Length-prefixed JSONL framing.
//!
//! Every protocol message is one *frame*:
//!
//! ```text
//! <payload length, ASCII decimal>\n
//! <payload bytes, exactly that many>\n
//! ```
//!
//! The payload is a single JSON document (a
//! [`PlanRequest`](stalloc_core::wire::PlanRequest) or
//! [`PlanResponse`](stalloc_core::wire::PlanResponse)). The decimal
//! header keeps the protocol debuggable with `nc`, while the explicit
//! length lets the receiver reject oversized payloads *before* reading
//! them and makes message boundaries independent of JSON content.
//!
//! [`read_frame`] never panics: every malformed input maps to a typed
//! [`FrameError`], and a clean EOF before the first header byte is the
//! regular end-of-stream (`Ok(None)`).

use std::io::{Read, Write};

/// Default upper bound on a frame payload (64 MiB — a large profile is
/// a few MB of JSON; anything bigger is a protocol violation, not data).
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Longest accepted header line (enough for any `usize` plus slack).
const MAX_HEADER_DIGITS: usize = 20;

/// Typed framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (including timeouts).
    Io(std::io::Error),
    /// The length header is not a plain decimal line.
    BadHeader(String),
    /// The declared payload length exceeds the receiver's limit.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// Receiver's limit.
        max: usize,
    },
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The byte after the payload was not the `\n` terminator.
    MissingTerminator,
}

impl FrameError {
    /// Every variant name, in declaration order. The fuzz harness uses
    /// this as the coverage checklist for the frame decoder (`Io` is
    /// excluded from required coverage — a `Cursor` never errors).
    pub const VARIANT_NAMES: &'static [&'static str] = &[
        "Io",
        "BadHeader",
        "Oversized",
        "Truncated",
        "MissingTerminator",
    ];

    /// This error's variant name (an element of [`Self::VARIANT_NAMES`]).
    pub fn variant_name(&self) -> &'static str {
        match self {
            FrameError::Io(_) => "Io",
            FrameError::BadHeader(_) => "BadHeader",
            FrameError::Oversized { .. } => "Oversized",
            FrameError::Truncated { .. } => "Truncated",
            FrameError::MissingTerminator => "MissingTerminator",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::BadHeader(d) => write!(f, "bad frame header: {d}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds limit {max}")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: expected {expected} bytes, got {got}")
            }
            FrameError::MissingTerminator => write!(f, "frame missing trailing newline"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header, payload, terminator) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(format!("{}\n", payload.len()).as_bytes())?;
    w.write_all(payload)?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` on clean EOF (stream closed at a
/// frame boundary); every other irregularity is a typed [`FrameError`].
///
/// On [`FrameError::Oversized`] the payload has *not* been consumed: the
/// caller must treat the stream as unsynchronized and close it.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    // Header: decimal digits up to '\n', read byte-wise (callers that
    // care wrap the stream in a BufReader; headers are ~10 bytes).
    let mut header: Vec<u8> = Vec::with_capacity(MAX_HEADER_DIGITS);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if header.is_empty() {
                    return Ok(None);
                }
                return Err(FrameError::BadHeader("eof inside length header".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if !byte[0].is_ascii_digit() {
                    return Err(FrameError::BadHeader(format!(
                        "non-digit byte 0x{:02x} in length header",
                        byte[0]
                    )));
                }
                if header.len() >= MAX_HEADER_DIGITS {
                    return Err(FrameError::BadHeader("length header too long".into()));
                }
                header.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if header.is_empty() {
        return Err(FrameError::BadHeader("empty length header".into()));
    }
    // Canonical headers only: `write_frame` never emits leading zeros, and
    // accepting them would make two distinct byte streams decode to the
    // same frame (breaking the decode→re-encode fixpoint the fuzzer checks).
    if header.len() > 1 && header[0] == b'0' {
        return Err(FrameError::BadHeader(
            "leading zero in length header".into(),
        ));
    }
    let declared: usize = std::str::from_utf8(&header)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| FrameError::BadHeader("unparseable length".into()))?;
    if declared > max {
        return Err(FrameError::Oversized { declared, max });
    }

    let mut payload = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: declared,
                    got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }

    loop {
        match r.read(&mut byte) {
            Ok(0) => return Err(FrameError::MissingTerminator),
            Ok(_) if byte[0] == b'\n' => return Ok(Some(payload)),
            Ok(_) => return Err(FrameError::MissingTerminator),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        read_frame(&mut Cursor::new(buf), DEFAULT_MAX_FRAME)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn frames_roundtrip() {
        assert_eq!(roundtrip(b"{}"), b"{}");
        assert_eq!(roundtrip(b""), b"");
        let big = vec![b'x'; 100_000];
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn consecutive_frames_share_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur, 64).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cur, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn garbage_header_is_typed() {
        let e = read_frame(&mut Cursor::new(b"hello\n".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "{e}");
        let e = read_frame(&mut Cursor::new(b"\n".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "{e}");
        let e = read_frame(&mut Cursor::new(b"12".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "eof in header: {e}");
        let e = read_frame(&mut Cursor::new(b"999999999999999999999\n".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "{e}");
    }

    #[test]
    fn leading_zero_headers_are_rejected() {
        let e = read_frame(&mut Cursor::new(b"01\nX\n".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "{e}");
        let e = read_frame(&mut Cursor::new(b"007\npayload\n".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::BadHeader(_)), "{e}");
        // A bare "0" is the canonical empty frame and stays valid.
        assert_eq!(
            read_frame(&mut Cursor::new(b"0\n\n".to_vec()), 64)
                .unwrap()
                .unwrap(),
            b""
        );
    }

    #[test]
    fn variant_names_cover_all_errors() {
        let e = read_frame(&mut Cursor::new(b"x\n".to_vec()), 64).unwrap_err();
        assert_eq!(e.variant_name(), "BadHeader");
        assert!(FrameError::VARIANT_NAMES.contains(&e.variant_name()));
        assert_eq!(FrameError::VARIANT_NAMES.len(), 5);
    }

    #[test]
    fn oversized_is_rejected_before_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let e = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        match e {
            FrameError::Oversized { declared, max } => {
                assert_eq!((declared, max), (100, 64));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn truncation_reports_progress() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 5); // cut payload + terminator
        let e = read_frame(&mut Cursor::new(buf), 64).unwrap_err();
        match e {
            FrameError::Truncated { expected, got } => {
                assert_eq!(expected, 11);
                assert!(got < expected);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn missing_terminator_is_typed() {
        let e = read_frame(&mut Cursor::new(b"2\nab".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::MissingTerminator), "{e}");
        let e = read_frame(&mut Cursor::new(b"2\nabX".to_vec()), 64).unwrap_err();
        assert!(matches!(e, FrameError::MissingTerminator), "{e}");
    }
}
