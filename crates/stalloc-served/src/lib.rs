//! `stalloc-served`: the plan-synthesis service.
//!
//! STAlloc plans are pure functions of `(ProfiledRequests, SynthConfig)`
//! and get amortized across thousands of identical training iterations —
//! PR 2 turned them into content-addressed artifacts. This crate shares
//! the *synthesis* too: a multi-threaded TCP daemon in front of one
//! [`PlanStore`](stalloc_store::PlanStore), so N identical jobs — across
//! processes, users, machines — cost one synthesis.
//!
//! * [`frame`] — length-prefixed JSONL framing with typed errors.
//! * [`server`] — the daemon: hand-rolled worker pool (no async runtime),
//!   bounded accept queue with `Busy` backpressure, three cache tiers
//!   (sharded in-process LRU → shared disk store → strategy-aware
//!   synthesis via `stalloc_solver`, portfolio included), and
//!   single-flight deduplication of concurrent identical jobs. Binary
//!   (`ProfileBin`) requests are fingerprinted from their canonical
//!   `PROF` bytes, so a cache hit never decodes the profile; cache
//!   entries memoize the plan's binary encoding, so a hit never
//!   re-encodes the plan either — a hot binary round trip is pure frame
//!   I/O plus an LRU lookup.
//! * [`client`] — a blocking keep-alive client that re-validates every
//!   received plan. Both big payloads travel in the binary codecs by
//!   default: requests send the profile as a `ProfileBin` header frame
//!   plus one raw `PROF` frame, responses return the plan as a `PlanBin`
//!   header frame plus one raw `STPL` frame — both transparent;
//!   `PlanClient::with_encoding` / `with_profile_encoding` opt back into
//!   inline JSON per direction.
//!
//! The wire-facing request/response types live in
//! [`stalloc_core::wire`], so speaking the protocol does not require
//! this crate.
//!
//! # Example
//!
//! ```
//! use stalloc_core::{profile_trace, SynthConfig};
//! use stalloc_served::{PlanClient, PlanServer, ServeConfig};
//! use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};
//!
//! // An in-memory server on a free loopback port.
//! let server = PlanServer::start(ServeConfig::default()).unwrap();
//!
//! let trace = TrainJob::new(
//!     ModelSpec::gpt2_345m(),
//!     ParallelConfig::new(1, 2, 1),
//!     OptimConfig::naive(),
//! )
//! .with_mbs(1)
//! .with_seq(256)
//! .with_microbatches(2)
//! .build_trace()
//! .unwrap();
//! let profile = profile_trace(&trace, 1).unwrap();
//!
//! let mut client = PlanClient::connect(server.addr()).unwrap();
//! let first = client.plan(&profile, &SynthConfig::default()).unwrap();
//! let second = client.plan(&profile, &SynthConfig::default()).unwrap();
//! assert!(!first.source.is_hit(), "first request synthesizes");
//! assert!(second.source.is_hit(), "second request is served from cache");
//! assert_eq!(first.plan, second.plan);
//! assert_eq!(server.stats().misses, 1);
//!
//! server.shutdown();
//! ```

pub mod client;
pub mod frame;
pub mod prometheus;
pub mod server;

pub use client::{ClientError, PlanClient, RemotePlan};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
pub use prometheus::render_prometheus;
pub use server::{PlanServer, ServeConfig, ServeError, ServerHandle};
