//! Prometheus text-format exposition of a [`ServeMetrics`] snapshot.
//!
//! [`render_prometheus`] is a pure function over the wire payload, so it
//! is testable without a server and usable by any client that already
//! speaks the `Metrics` verb. The format is the Prometheus text format
//! v0.0.4: `# TYPE` metadata lines, one sample per line, histograms as
//! cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
//!
//! Times are exported in **seconds** (the Prometheus base unit); the
//! log2 microsecond buckets map to `le` bounds of `2^i − 1` µs ÷ 10⁶.
//! Per-phase request histograms become one family each
//! (`stalloc_<phase>_seconds`), so dashboards can query
//! `stalloc_synthesis_seconds_bucket` directly.

use std::fmt::Write;

use stalloc_core::wire::ServeMetrics;
use stalloc_obs::{bucket_range, HistogramSnapshot};

/// Appends a `# TYPE` line and one sample for a counter/gauge.
fn sample(out: &mut String, name: &str, kind: &str, labels: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name}{labels} {value}");
}

/// Appends one histogram's cumulative `_bucket`/`_sum`/`_count` series.
///
/// `extra` is either empty or a `key="value",` prefix merged into every
/// sample's label set. Bucket lines stop at the highest non-empty bucket
/// (the `+Inf` bucket always closes the series with the total), so an
/// idle histogram stays three lines instead of sixty-eight.
fn histogram(out: &mut String, name: &str, extra: &str, h: &HistogramSnapshot) {
    let total = h.total();
    let highest = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| i.min(63))
        .unwrap_or(0);
    let mut cum = 0u64;
    for i in 0..=highest {
        cum = cum.saturating_add(h.buckets.get(i).copied().unwrap_or(0));
        let le = bucket_range(i).1 as f64 / 1e6;
        let _ = writeln!(out, "{name}_bucket{{{extra}le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{extra}le=\"+Inf\"}} {total}");
    // `_sum`/`_count` carry only the child labels: no braces when bare.
    let bare = extra.strip_suffix(',').unwrap_or(extra);
    let labels = if bare.is_empty() {
        String::new()
    } else {
        format!("{{{bare}}}")
    };
    let _ = writeln!(out, "{name}_sum{labels} {}", h.sum as f64 / 1e6);
    let _ = writeln!(out, "{name}_count{labels} {total}");
}

/// Appends `# TYPE ... histogram` ahead of [`histogram`].
fn histogram_family(out: &mut String, name: &str, extra: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    histogram(out, name, extra, h);
}

/// Renders a `Metrics` payload as Prometheus text format v0.0.4.
pub fn render_prometheus(m: &ServeMetrics) -> String {
    let mut out = String::with_capacity(8192);
    let s = &m.stats;

    // Flat counters.
    sample(
        &mut out,
        "stalloc_requests_total",
        "counter",
        "",
        s.requests,
    );
    sample(
        &mut out,
        "stalloc_plan_requests_total",
        "counter",
        "",
        s.plan_requests,
    );
    sample(
        &mut out,
        "stalloc_metrics_requests_total",
        "counter",
        "",
        s.metrics_requests,
    );
    sample(
        &mut out,
        "stalloc_rejected_total",
        "counter",
        "",
        s.rejected,
    );
    sample(&mut out, "stalloc_errors_total", "counter", "", s.errors);

    // Plans served, labelled by the answering cache tier.
    let _ = writeln!(out, "# TYPE stalloc_plans_served_total counter");
    for (tier, n) in [
        ("lru", s.lru_hits),
        ("store", s.store_hits),
        ("miss", s.misses),
        ("coalesced", s.coalesced),
    ] {
        let _ = writeln!(out, "stalloc_plans_served_total{{tier=\"{tier}\"}} {n}");
    }

    // Point-in-time gauges.
    sample(&mut out, "stalloc_in_flight", "gauge", "", s.in_flight);
    sample(&mut out, "stalloc_queue_depth", "gauge", "", s.queue_depth);
    sample(&mut out, "stalloc_workers", "gauge", "", s.workers);

    // One histogram family per request phase.
    for phase in &m.phases {
        histogram_family(
            &mut out,
            &format!("stalloc_{}_seconds", phase.name),
            "",
            &phase.hist,
        );
    }

    // End-to-end latency by answering tier, one family with a label.
    if !m.tiers.is_empty() {
        let _ = writeln!(out, "# TYPE stalloc_tier_seconds histogram");
        for tier in &m.tiers {
            histogram(
                &mut out,
                "stalloc_tier_seconds",
                &format!("tier=\"{}\",", tier.name),
                &tier.hist,
            );
        }
    }

    // Solver section: per-strategy synthesis accounting.
    if !m.solver.is_empty() {
        for (name, pick) in [
            ("stalloc_solver_runs_total", 0usize),
            ("stalloc_solver_wins_total", 1),
            ("stalloc_solver_invalid_total", 2),
            ("stalloc_solver_candidates_evaluated_total", 3),
            ("stalloc_solver_placements_tried_total", 4),
            ("stalloc_solver_placements_rejected_total", 5),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            for sv in &m.solver {
                let v = [
                    sv.runs,
                    sv.wins,
                    sv.invalid,
                    sv.candidates_evaluated,
                    sv.placements_tried,
                    sv.placements_rejected,
                ][pick];
                let _ = writeln!(out, "{name}{{strategy=\"{}\"}} {v}", sv.strategy);
            }
        }
        let _ = writeln!(out, "# TYPE stalloc_solver_phase_seconds_total counter");
        for sv in &m.solver {
            for (phase, micros) in [
                ("layout", sv.layout_micros),
                ("pack", sv.pack_micros),
                ("finish", sv.finish_micros),
            ] {
                let _ = writeln!(
                    out,
                    "stalloc_solver_phase_seconds_total{{strategy=\"{}\",phase=\"{phase}\"}} {}",
                    sv.strategy,
                    micros as f64 / 1e6
                );
            }
        }
        let _ = writeln!(out, "# TYPE stalloc_solver_elapsed_seconds histogram");
        for sv in &m.solver {
            histogram(
                &mut out,
                "stalloc_solver_elapsed_seconds",
                &format!("strategy=\"{}\",", sv.strategy),
                &sv.elapsed,
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stalloc_core::wire::{NamedHistogram, ServeStats, SolverStrategyMetrics};
    use stalloc_obs::LatencyHistogram;
    use std::collections::HashMap;

    /// One parsed sample line: metric name, label pairs, value.
    type Sample = (String, Vec<(String, String)>, f64);

    /// A minimal Prometheus text parser: samples as
    /// `(metric, sorted-label-string) -> value`, plus the `# TYPE` map.
    struct Parsed {
        types: HashMap<String, String>,
        samples: Vec<Sample>,
    }

    fn parse(text: &str) -> Parsed {
        let mut types = HashMap::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("type name").to_string();
                let kind = it.next().expect("type kind").to_string();
                types.insert(name, kind);
                continue;
            }
            assert!(!line.starts_with('#'), "only TYPE comments are emitted");
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().unwrap_or_else(|_| {
                assert_eq!(value, "+Inf", "only +Inf is non-numeric");
                f64::INFINITY
            });
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("closed label set");
                    let labels = body
                        .split(',')
                        .filter(|kv| !kv.is_empty())
                        .map(|kv| {
                            let (k, v) = kv.split_once('=').expect("label k=v");
                            let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
                            (k.to_string(), v.expect("quoted label").to_string())
                        })
                        .collect();
                    (name.to_string(), labels)
                }
            };
            samples.push((name, labels, value));
        }
        Parsed { types, samples }
    }

    impl Parsed {
        fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
            self.samples
                .iter()
                .find(|(n, ls, _)| {
                    n == name
                        && ls.len() == labels.len()
                        && labels
                            .iter()
                            .all(|(k, v)| ls.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .map(|&(_, _, v)| v)
        }

        /// The `_bucket` series of one histogram child, in emission
        /// order, as `(le, cumulative_count)`.
        fn buckets(&self, family: &str, label: Option<(&str, &str)>) -> Vec<(f64, f64)> {
            let name = format!("{family}_bucket");
            self.samples
                .iter()
                .filter(|(n, ls, _)| {
                    *n == name
                        && match label {
                            None => ls.iter().all(|(k, _)| k == "le"),
                            Some((k, v)) => ls.iter().any(|(lk, lv)| lk == k && lv == v),
                        }
                })
                .map(|(_, ls, v)| {
                    let le = ls.iter().find(|(k, _)| k == "le").expect("le label");
                    let le = if le.1 == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.1.parse().expect("numeric le")
                    };
                    (le, *v)
                })
                .collect()
        }
    }

    fn synthetic_metrics() -> ServeMetrics {
        let hist = LatencyHistogram::new();
        for v in [70, 80, 90, 147_000] {
            hist.record(v);
        }
        ServeMetrics {
            stats: ServeStats {
                requests: 9,
                plan_requests: 5,
                lru_hits: 2,
                store_hits: 1,
                misses: 1,
                coalesced: 1,
                workers: 4,
                metrics_requests: 2,
                ..ServeStats::default()
            },
            phases: vec![NamedHistogram {
                name: "synthesis".into(),
                hist: hist.snapshot(),
            }],
            tiers: vec![
                NamedHistogram {
                    name: "lru".into(),
                    hist: hist.snapshot(),
                },
                NamedHistogram {
                    name: "miss".into(),
                    hist: HistogramSnapshot::default(),
                },
            ],
            slowest: vec![],
            solver: vec![SolverStrategyMetrics {
                strategy: "bestfit".into(),
                runs: 3,
                wins: 2,
                invalid: 0,
                layout_micros: 1_500,
                pack_micros: 250_000,
                finish_micros: 9_000,
                candidates_evaluated: 1_000,
                placements_tried: 600,
                placements_rejected: 400,
                elapsed: hist.snapshot(),
            }],
        }
    }

    #[test]
    fn counters_round_trip_with_declared_types() {
        let p = parse(&render_prometheus(&synthetic_metrics()));
        assert_eq!(p.types["stalloc_requests_total"], "counter");
        assert_eq!(p.types["stalloc_workers"], "gauge");
        assert_eq!(p.value("stalloc_requests_total", &[]), Some(9.0));
        assert_eq!(
            p.value("stalloc_plans_served_total", &[("tier", "lru")]),
            Some(2.0)
        );
        assert_eq!(
            p.value("stalloc_plans_served_total", &[("tier", "coalesced")]),
            Some(1.0)
        );
        assert_eq!(p.value("stalloc_workers", &[]), Some(4.0));
        assert_eq!(
            p.value("stalloc_solver_runs_total", &[("strategy", "bestfit")]),
            Some(3.0)
        );
        assert_eq!(
            p.value("stalloc_solver_wins_total", &[("strategy", "bestfit")]),
            Some(2.0)
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_at_inf() {
        let p = parse(&render_prometheus(&synthetic_metrics()));
        assert_eq!(p.types["stalloc_synthesis_seconds"], "histogram");
        for (family, label) in [
            ("stalloc_synthesis_seconds", None),
            ("stalloc_tier_seconds", Some(("tier", "lru"))),
            (
                "stalloc_solver_elapsed_seconds",
                Some(("strategy", "bestfit")),
            ),
        ] {
            let buckets = p.buckets(family, label);
            assert!(buckets.len() >= 2, "{family}: bucket series present");
            // `le` strictly ascending, counts monotonically non-decreasing.
            for w in buckets.windows(2) {
                assert!(w[0].0 < w[1].0, "{family}: le ascends");
                assert!(w[0].1 <= w[1].1, "{family}: cumulative counts");
            }
            let (last_le, last_count) = *buckets.last().unwrap();
            assert_eq!(last_le, f64::INFINITY, "{family}: +Inf closes the series");
            assert_eq!(last_count, 4.0, "{family}: +Inf holds every sample");
            assert_eq!(
                p.value(
                    &format!("{family}_count"),
                    &label.into_iter().collect::<Vec<_>>()
                ),
                Some(4.0)
            );
        }
        // The 147ms sample lands in a bucket whose bound exceeds 0.1s.
        let synth = p.buckets("stalloc_synthesis_seconds", None);
        assert!(synth.iter().any(|&(le, c)| le > 0.1 && c == 4.0));
        // A nonzero synthesis bucket line exists verbatim — what the CI
        // smoke test greps for.
        let text = render_prometheus(&synthetic_metrics());
        assert!(text
            .lines()
            .any(|l| l.starts_with("stalloc_synthesis_seconds_bucket") && !l.ends_with(" 0")));
    }

    #[test]
    fn empty_tier_histogram_stays_minimal() {
        let p = parse(&render_prometheus(&synthetic_metrics()));
        let miss = p.buckets("stalloc_tier_seconds", Some(("tier", "miss")));
        // One le="0" bucket plus +Inf: an idle tier costs three lines.
        assert_eq!(miss.len(), 2);
        assert_eq!(miss.last().unwrap().1, 0.0);
    }

    #[test]
    fn solver_phase_seconds_convert_micros() {
        let p = parse(&render_prometheus(&synthetic_metrics()));
        let pack = p
            .value(
                "stalloc_solver_phase_seconds_total",
                &[("strategy", "bestfit"), ("phase", "pack")],
            )
            .unwrap();
        assert!((pack - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_metrics_render_without_panicking() {
        let text = render_prometheus(&ServeMetrics::default());
        assert!(text.contains("stalloc_requests_total 0"));
        assert!(
            !text.contains("stalloc_solver"),
            "no solver section when empty"
        );
        parse(&text);
    }
}
