//! The planning daemon: a hand-rolled worker pool over
//! `std::net::TcpListener`.
//!
//! One acceptor thread pushes connections into a bounded queue; `workers`
//! threads pop connections and serve all frames on each (requests on one
//! connection are sequential, connections are concurrent). When the queue
//! is full the acceptor answers `Busy` and drops the connection — the
//! protocol's backpressure signal. Shutdown is graceful: the acceptor
//! stops, workers finish the request in hand, blocked reads abort at the
//! next poll tick.
//!
//! Plan requests flow through three tiers: the in-process
//! [`ShardedLru`], the shared on-disk [`PlanStore`], and synthesis. A
//! synthesis is *single-flight*: concurrent requests for the same job
//! fingerprint elect one leader to run the synthesizer while followers
//! wait on its result — N identical jobs cost one synthesis.
//!
//! Both directions of the hot path avoid the serde value tree: a
//! `ProfileBin` request's profile arrives as raw `PROF` codec bytes and
//! is fingerprinted *without decoding* (the `PROF` body is the canonical
//! fingerprint walk), and every cache entry memoizes the plan's `STPL`
//! encoding, so a binary-encoded cache hit decodes nothing and encodes
//! nothing.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stalloc_core::wire::{
    NamedHistogram, PlanEncoding, PlanRequest, PlanResponse, PlanSource, ServeMetrics, ServeStats,
    SolverStrategyMetrics, WireErrorKind,
};
use stalloc_core::{
    apply_delta, fingerprint_job, fingerprint_job_body, fingerprint_profile_body, Fingerprint,
    Plan, StrategyChoice,
};
use stalloc_obs::{
    parse_trace_id, IdGen, LatencyHistogram, Phase, RequestSpan, ShardedCounter, SpanRing,
    SpanSnapshot, TraceLog, PHASE_COUNT,
};
use stalloc_solver::{patch_plan, synthesize_strategy_reported, CandidateReport};
use stalloc_store::{
    decode_profile, decode_profile_delta, encode_plan, encode_profile, profile_body, PlanStore,
    ShardedLru,
};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker pool size (= maximum concurrently served connections).
    pub workers: usize,
    /// Accept-queue bound: connections waiting for a worker beyond this
    /// are rejected with `Busy`.
    pub queue_depth: usize,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Shared on-disk plan store directory (`None` = memory-only).
    pub store_dir: Option<PathBuf>,
    /// In-process LRU capacity in plans (0 disables the LRU tier).
    pub lru_capacity: usize,
    /// Poll tick for shutdown-aware blocking reads.
    pub poll_tick: Duration,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// When set, every served request appends one JSONL trace record
    /// (phase timings, tier, verb) to this file.
    pub trace_log: Option<PathBuf>,
    /// When set, the trace log rotates to `<name>.1` rather than growing
    /// past this many bytes (one rotated generation is kept).
    pub trace_log_max_bytes: Option<u64>,
    /// How many slowest-ever request spans the span ring retains for the
    /// `Metrics` verb (`stalloc serve --slowest`). 0 disables the list.
    pub slowest: usize,
    /// When set, bind this address and serve the `Metrics` payload in
    /// Prometheus text format over HTTP at `GET /metrics` (port 0 picks
    /// a free port; see [`ServerHandle::metrics_http_addr`]).
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            max_frame: DEFAULT_MAX_FRAME,
            store_dir: None,
            lru_capacity: 128,
            poll_tick: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(30),
            trace_log: None,
            trace_log_max_bytes: None,
            slowest: 16,
            metrics_addr: None,
        }
    }
}

/// Server startup/storage failures.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, local_addr).
    Io(std::io::Error),
    /// The plan store could not be opened.
    Store(stalloc_store::StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve: {e}"),
            ServeError::Store(e) => write!(f, "serve: plan store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Flat request counters, each sharded so eight workers bumping
/// `requests` don't serialize on one cache line.
#[derive(Debug, Default)]
struct Counters {
    requests: ShardedCounter,
    plan_requests: ShardedCounter,
    lru_hits: ShardedCounter,
    store_hits: ShardedCounter,
    misses: ShardedCounter,
    coalesced: ShardedCounter,
    rejected: ShardedCounter,
    errors: ShardedCounter,
    in_flight: ShardedCounter,
    metrics_requests: ShardedCounter,
    delta_requests: ShardedCounter,
    delta_hits: ShardedCounter,
    delta_patched: ShardedCounter,
}

/// Tier labels, indexed by [`tier_index`]; "miss" is a synthesis run,
/// "patched" an in-process plan patch from a cached base.
const TIER_NAMES: [&str; 5] = ["lru", "store", "miss", "coalesced", "patched"];

fn tier_index(source: PlanSource) -> usize {
    match source {
        PlanSource::Lru => 0,
        PlanSource::Store => 1,
        PlanSource::Synthesized => 2,
        PlanSource::Coalesced => 3,
        PlanSource::Patched => 4,
    }
}

/// One strategy's long-running synthesis aggregates: every counter is a
/// [`ShardedCounter`] and the per-run wall time lands in a histogram, so
/// recording on the synthesis path reuses the same allocation-free
/// primitives as the request path.
#[derive(Default)]
struct SolverSlot {
    runs: ShardedCounter,
    wins: ShardedCounter,
    invalid: ShardedCounter,
    layout_micros: ShardedCounter,
    pack_micros: ShardedCounter,
    finish_micros: ShardedCounter,
    candidates_evaluated: ShardedCounter,
    placements_tried: ShardedCounter,
    placements_rejected: ShardedCounter,
    elapsed: LatencyHistogram,
}

/// Per-strategy synthesis accounting, one slot per concrete strategy
/// (indexed by [`StrategyChoice::index`]).
struct SolverObs {
    slots: [SolverSlot; StrategyChoice::CONCRETE.len()],
}

impl SolverObs {
    fn new() -> Self {
        SolverObs {
            slots: std::array::from_fn(|_| SolverSlot::default()),
        }
    }

    /// Folds one synthesis run's candidate reports in (a portfolio race
    /// reports every racer; a concrete run reports itself).
    fn record(&self, reports: &[CandidateReport]) {
        for r in reports {
            let slot = &self.slots[r.strategy.index() as usize];
            slot.runs.inc();
            if r.winner {
                slot.wins.inc();
            }
            if !r.valid {
                slot.invalid.inc();
            }
            slot.layout_micros.add(r.profile.layout_micros);
            slot.pack_micros.add(r.profile.pack_micros);
            slot.finish_micros.add(r.profile.finish_micros);
            slot.candidates_evaluated
                .add(r.profile.candidates_evaluated);
            slot.placements_tried.add(r.profile.placements_tried);
            slot.placements_rejected.add(r.profile.placements_rejected);
            slot.elapsed.record(r.elapsed.as_micros() as u64);
        }
    }
}

/// Live observability state: per-phase and per-tier latency histograms,
/// the span retention ring, per-strategy solver accounting, and the
/// optional JSONL trace sink. Shared by all workers; recording is
/// allocation-free (see `stalloc-obs`'s counting-allocator test) except
/// for the opt-in trace log.
struct ServeObs {
    phases: [LatencyHistogram; PHASE_COUNT],
    tiers: [LatencyHistogram; TIER_NAMES.len()],
    spans: SpanRing,
    seq: AtomicU64,
    trace: Option<TraceLog>,
    solver: SolverObs,
    /// Mints trace/span ids for requests that arrive without a context
    /// (old clients, unit verbs). Lock-free and clock-free.
    ids: IdGen,
}

impl ServeObs {
    fn new(trace: Option<TraceLog>, slowest: usize) -> Self {
        ServeObs {
            phases: std::array::from_fn(|_| LatencyHistogram::new()),
            tiers: std::array::from_fn(|_| LatencyHistogram::new()),
            spans: SpanRing::new(256, slowest),
            seq: AtomicU64::new(0),
            trace,
            solver: SolverObs::new(),
            ids: IdGen::new(),
        }
    }

    /// Folds one finished request in: phase histograms get the phases the
    /// request entered, the answering tier's histogram gets the
    /// end-to-end latency (so each tier's count matches the matching
    /// `ServeStats` counter), and the span lands in the retention ring.
    fn observe(&self, mut span: RequestSpan, tier: Option<PlanSource>) {
        span.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(source) = tier {
            span.tier = TIER_NAMES[tier_index(source)];
            self.tiers[tier_index(source)].record(span.total_micros);
        }
        for (phase, micros) in span.entered() {
            self.phases[phase.index()].record(micros);
        }
        self.spans.push(span);
        if let Some(trace) = &self.trace {
            let _ = trace.record(&span);
        }
    }
}

/// A served plan plus its memoized binary (`STPL`) encoding.
///
/// Binary is the default response encoding, so without the memo every
/// LRU hit would re-run `encode_plan` — pure waste, since the encoding
/// is a pure function of the plan and the disk store already holds
/// exactly those bytes. The encoding is populated eagerly when it is
/// already in hand (a store read, a synthesis that is about to be
/// persisted) and lazily on the first binary response otherwise.
pub(crate) struct CachedPlan {
    plan: Plan,
    encoded: OnceLock<Vec<u8>>,
}

impl CachedPlan {
    fn new(plan: Plan) -> Arc<Self> {
        Arc::new(CachedPlan {
            plan,
            encoded: OnceLock::new(),
        })
    }

    fn with_bytes(plan: Plan, bytes: Vec<u8>) -> Arc<Self> {
        let entry = CachedPlan {
            plan,
            encoded: OnceLock::new(),
        };
        let _ = entry.encoded.set(bytes);
        Arc::new(entry)
    }

    /// The plan's binary encoding, computed at most once per cache entry.
    fn encoded(&self) -> &[u8] {
        self.encoded.get_or_init(|| encode_plan(&self.plan))
    }
}

/// One in-flight synthesis: the leader publishes its result (or failure)
/// here; followers wait on the condvar.
struct Flight {
    done: Mutex<Option<Result<Arc<CachedPlan>, String>>>,
    cv: Condvar,
}

struct Shared {
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Waiting connections with their enqueue instant (queue-wait phase).
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    lru: ShardedLru<Arc<CachedPlan>>,
    store: Option<PlanStore>,
    /// Recently seen profiles as raw canonical `PROF` bytes, keyed by
    /// their config-free *profile* fingerprint — the base-lookup table
    /// of the `PlanDelta` verb. Raw bytes (not decoded profiles) so
    /// population is a memcpy on the binary request path; decode is
    /// paid only when a delta actually lands on the entry.
    profiles: ShardedLru<Arc<Vec<u8>>>,
    inflight: Mutex<HashMap<Fingerprint, Arc<Flight>>>,
    counters: Counters,
    obs: ServeObs,
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            requests: c.requests.get(),
            plan_requests: c.plan_requests.get(),
            lru_hits: c.lru_hits.get(),
            store_hits: c.store_hits.get(),
            misses: c.misses.get(),
            coalesced: c.coalesced.get(),
            rejected: c.rejected.get(),
            errors: c.errors.get(),
            in_flight: c.in_flight.get(),
            queue_depth: self.queue.lock().expect("queue lock").len() as u64,
            workers: self.config.workers as u64,
            metrics_requests: c.metrics_requests.get(),
            slowest_capacity: self.config.slowest as u64,
            delta_requests: c.delta_requests.get(),
            delta_hits: c.delta_hits.get(),
            delta_patched: c.delta_patched.get(),
        }
    }

    fn metrics(&self) -> ServeMetrics {
        ServeMetrics {
            stats: self.snapshot(),
            phases: Phase::ALL
                .iter()
                .map(|p| NamedHistogram {
                    name: p.name().to_string(),
                    hist: self.obs.phases[p.index()].snapshot(),
                })
                .collect(),
            tiers: TIER_NAMES
                .iter()
                .enumerate()
                .map(|(i, name)| NamedHistogram {
                    name: name.to_string(),
                    hist: self.obs.tiers[i].snapshot(),
                })
                .collect(),
            slowest: self
                .obs
                .spans
                .slowest()
                .iter()
                .map(SpanSnapshot::from)
                .collect(),
            solver: StrategyChoice::CONCRETE
                .iter()
                .map(|c| (c, &self.obs.solver.slots[c.index() as usize]))
                .filter(|(_, s)| s.runs.get() > 0)
                .map(|(c, s)| SolverStrategyMetrics {
                    strategy: c.name().to_string(),
                    runs: s.runs.get(),
                    wins: s.wins.get(),
                    invalid: s.invalid.get(),
                    layout_micros: s.layout_micros.get(),
                    pack_micros: s.pack_micros.get(),
                    finish_micros: s.finish_micros.get(),
                    candidates_evaluated: s.candidates_evaluated.get(),
                    placements_tried: s.placements_tried.get(),
                    placements_rejected: s.placements_rejected.get(),
                    elapsed: s.elapsed.snapshot(),
                })
                .collect(),
        }
    }
}

/// The planning daemon. [`PlanServer::start`] spawns the acceptor and
/// worker threads and returns a [`ServerHandle`] to observe and stop it.
pub struct PlanServer;

impl PlanServer {
    /// Binds `config.addr` and starts serving. Returns once the socket is
    /// listening; serving continues on background threads until
    /// [`ServerHandle::shutdown`].
    pub fn start(config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let store = match &config.store_dir {
            Some(dir) => Some(PlanStore::open(dir).map_err(ServeError::Store)?),
            None => None,
        };
        let trace = match &config.trace_log {
            Some(path) => Some(
                match config.trace_log_max_bytes {
                    Some(max) => TraceLog::with_max_bytes(path, max),
                    None => TraceLog::create(path),
                }
                .map_err(ServeError::Io)?,
            ),
            None => None,
        };
        // Bind the exposition socket before spawning anything, so a bad
        // --metrics-addr fails startup instead of dying silently later.
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr).map_err(ServeError::Io)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr().map_err(ServeError::Io)?),
            None => None,
        };
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            lru: ShardedLru::new(config.lru_capacity),
            profiles: ShardedLru::new(config.lru_capacity),
            store,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            obs: ServeObs::new(trace, config.slowest),
            config,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("stalloc-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(ServeError::Io)?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stalloc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let metrics_thread = match metrics_listener {
            Some(listener) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("stalloc-metrics-http".into())
                        .spawn(move || metrics_http_loop(&listener, &shared))
                        .map_err(ServeError::Io)?,
                )
            }
            None => None,
        };

        Ok(ServerHandle {
            shared,
            addr,
            metrics_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            metrics_thread,
        })
    }
}

/// The `/metrics` exposition loop: accept, answer one request, close.
///
/// Deliberately minimal HTTP/1.1 — a scrape is one short-lived GET, so
/// there is no keep-alive, no routing beyond `/metrics`, and the request
/// head read is bounded. Runs on its own thread; a scrape renders a
/// fresh `ServeMetrics` snapshot, so it costs the serving path nothing.
fn metrics_http_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(shared.config.poll_tick);
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_metrics_http(stream, shared);
    }
}

/// Reads one bounded HTTP request head and answers it.
fn serve_metrics_http(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    use std::io::{Read, Write};
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the blank line ending the head, or a 4 KiB bound — a
    // scrape's head is one request line and a few short headers.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or_default();
    let mut parts = request_line.split(|&b| b == b' ');
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let (status, body) = if method == b"GET" && (path == b"/metrics" || path == b"/") {
        (
            "200 OK",
            crate::prometheus::render_prometheus(&shared.metrics()),
        )
    } else {
        ("404 Not Found", "not found: scrape GET /metrics\n".into())
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Running-server handle: address, live stats, graceful shutdown.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for :0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` exposition address, when
    /// [`ServeConfig::metrics_addr`] was set (with the real port when it
    /// asked for :0).
    pub fn metrics_http_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Live counter snapshot, without a network roundtrip.
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// Live latency metrics (what the `Metrics` verb reports), without a
    /// network roundtrip.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.metrics()
    }

    /// Graceful shutdown: stop accepting, let workers finish the request
    /// in hand, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops (another thread must call
    /// [`ServerHandle::shutdown`], or the process is killed). Used by
    /// `stalloc serve`.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptors with wake-up connections; each re-checks
        // the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(maddr) = self.metrics_addr {
            let _ = TcpStream::connect(maddr);
        }
        self.shared.queue_cv.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(m) = self.metrics_thread.take() {
            let _ = m.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() || self.metrics_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (e.g. fd exhaustion) must
                // not hot-loop the acceptor at 100% CPU.
                std::thread::sleep(shared.config.poll_tick);
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = respond_and_drop(stream, WireErrorKind::ShuttingDown, "server shutting down");
            return;
        }
        let mut q = shared.queue.lock().expect("queue lock");
        if q.len() >= shared.config.queue_depth {
            drop(q);
            shared.counters.rejected.inc();
            let _ = respond_and_drop(stream, WireErrorKind::Busy, "accept queue full; retry");
            continue;
        }
        q.push_back((stream, Instant::now()));
        drop(q);
        shared.queue_cv.notify_one();
    }
}

/// Writes one typed error frame to a connection we are about to drop.
///
/// The client has usually already written its request; closing with
/// those bytes unread would send an RST that can destroy the error frame
/// in the client's receive queue before it is read. So: send the frame,
/// half-close our write side, and drain (bounded) until the peer closes
/// — the typed `Busy`/`ShuttingDown` signal then reliably arrives.
fn respond_and_drop(
    mut stream: TcpStream,
    kind: WireErrorKind,
    message: &str,
) -> std::io::Result<()> {
    let resp = PlanResponse::Error {
        kind,
        message: message.into(),
    };
    let payload = serde_json::to_string(&resp).unwrap_or_default();
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    write_frame(&mut stream, payload.as_bytes())?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Hard wall-clock budget: this runs on the acceptor thread, and a
    // trickling client must not be able to stall accepts.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let deadline = Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 16 << 10];
    while Instant::now() < deadline {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    Ok(())
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared
                    .queue_cv
                    .wait_timeout(q, shared.config.poll_tick)
                    .expect("queue lock")
                    .0;
            }
        };
        match conn {
            Some((stream, queued_at)) => handle_connection(stream, queued_at, shared),
            None => return,
        }
    }
}

/// `Read` adapter over a non-blocking-ish `TcpStream` (short read
/// timeout): retries timeouts until data arrives, the idle budget runs
/// out, or the server begins shutting down — so a worker blocked on a
/// quiet keep-alive connection still notices shutdown within one tick.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    /// When the first byte of the frame being read arrived. Lets the
    /// frame-read phase measure transfer time only — the idle wait
    /// between keep-alive requests (up to `idle_timeout`) would drown
    /// every other phase if it were counted.
    first_byte: Option<Instant>,
}

impl std::io::Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut waited = Duration::ZERO;
        loop {
            match self.stream.read(buf) {
                Ok(n) if n > 0 => {
                    self.first_byte.get_or_insert_with(Instant::now);
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                    waited += self.shared.config.poll_tick;
                    if waited >= self.shared.config.idle_timeout {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "connection idle",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

fn handle_connection(stream: TcpStream, queued_at: Instant, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_tick));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = PatientReader {
        stream: &stream,
        shared,
        first_byte: None,
    };
    // Accept-queue residency belongs to the *first* request's span;
    // later requests on this keep-alive connection never queued.
    let mut queue_wait = Some(queued_at.elapsed());

    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF at a frame boundary: keep-alive connection closed.
            Ok(None) => return,
            Err(FrameError::Io(_)) => return, // peer gone / idle / shutdown
            Err(e) => {
                // Malformed traffic gets a typed error, then the stream is
                // unsynchronized, so close. The worker itself moves on to
                // the next connection unharmed.
                shared.counters.errors.inc();
                let kind = match e {
                    FrameError::Oversized { .. } => WireErrorKind::Oversized,
                    _ => WireErrorKind::BadFrame,
                };
                let _ = write_response(
                    &mut writer,
                    &PlanResponse::Error {
                        kind,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };

        let started = Instant::now();
        shared.counters.requests.inc();
        let header_read_micros = reader
            .first_byte
            .take()
            .map(|t0| started.duration_since(t0).as_micros() as u64)
            .unwrap_or(0);
        let mut span = RequestSpan::new("?");
        span.record(Phase::FrameRead, header_read_micros);
        if let Some(wait) = queue_wait.take() {
            span.record(Phase::QueueWait, wait.as_micros() as u64);
        }

        let decode_start = Instant::now();
        let request: PlanRequest = match std::str::from_utf8(&payload)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
        {
            Ok(r) => r,
            Err(e) => {
                shared.counters.errors.inc();
                let _ = write_response(
                    &mut writer,
                    &PlanResponse::Error {
                        kind: WireErrorKind::BadFrame,
                        message: format!("unparseable request: {e}"),
                    },
                );
                return;
            }
        };
        span.record_since(Phase::Decode, decode_start);
        span.verb = verb_name(&request);
        // Propagated ids win; a request without a context (old client,
        // unit verb) gets server-minted root ids so its trace line and
        // span are still addressable.
        span.trace = request
            .trace_context()
            .unwrap_or_else(|| shared.obs.ids.root());

        // A `ProfileBin` or `PlanDelta` header announces one raw binary
        // frame (a `PROF` profile or a `PROF-DELTA` edit script); pull
        // it off the connection before dispatch. Any irregularity here
        // leaves the stream unsynchronized, so answer typed and close.
        let raw_profile = match &request {
            PlanRequest::ProfileBin { bytes, .. } | PlanRequest::PlanDelta { bytes, .. } => {
                let raw = match read_frame(&mut reader, shared.config.max_frame) {
                    Ok(Some(r)) => r,
                    Ok(None) | Err(FrameError::Io(_)) => return,
                    Err(e) => {
                        shared.counters.errors.inc();
                        let kind = match e {
                            FrameError::Oversized { .. } => WireErrorKind::Oversized,
                            _ => WireErrorKind::BadFrame,
                        };
                        let _ = write_response(
                            &mut writer,
                            &PlanResponse::Error {
                                kind,
                                message: format!("binary request frame: {e}"),
                            },
                        );
                        return;
                    }
                };
                // The raw frame is frame reading too (transfer time only,
                // same first-byte rule as the header frame).
                span.record(
                    Phase::FrameRead,
                    reader
                        .first_byte
                        .take()
                        .map(|t0| t0.elapsed().as_micros() as u64)
                        .unwrap_or(0),
                );
                if raw.len() as u64 != *bytes {
                    shared.counters.errors.inc();
                    let _ = write_response(
                        &mut writer,
                        &PlanResponse::Error {
                            kind: WireErrorKind::BadFrame,
                            message: format!(
                                "binary request frame is {} bytes, header declared {bytes}",
                                raw.len()
                            ),
                        },
                    );
                    return;
                }
                Some(raw)
            }
            _ => None,
        };

        shared.counters.in_flight.inc();
        let (response, raw) = handle_request(request, raw_profile, started, shared, &mut span);
        let keep_alive = !matches!(
            response,
            PlanResponse::Error {
                kind: WireErrorKind::BadFrame,
                ..
            }
        );
        // Decrement before the response write: a client that has read its
        // response must never still observe itself as in-flight.
        shared.counters.in_flight.dec();
        let tier = match &response {
            PlanResponse::Plan { source, .. } | PlanResponse::PlanBin { source, .. } => {
                Some(*source)
            }
            _ => None,
        };

        let encode_start = Instant::now();
        let payload = match serde_json::to_string(&response) {
            Ok(p) => p,
            Err(_) => return,
        };
        span.record_since(Phase::Encode, encode_start);

        let write_start = Instant::now();
        let write_ok = write_frame(&mut writer, payload.as_bytes()).is_ok()
            && match &raw {
                // Binary-encoded plans ride in a raw follow-up frame,
                // skipping the JSON value-tree round trip. The encoding
                // memo was populated when the `PlanBin` header was built,
                // so this is a pure write.
                Some(entry) => write_frame(&mut writer, entry.encoded()).is_ok(),
                None => true,
            };
        span.record_since(Phase::FrameWrite, write_start);

        // End-to-end latency: everything since the header frame's first
        // byte (`started.elapsed()` already covers any raw profile frame),
        // plus the accept-queue wait that preceded it.
        span.total_micros = span.phase_micros(Phase::QueueWait).unwrap_or(0)
            + header_read_micros
            + started.elapsed().as_micros() as u64;
        shared.obs.observe(span, tier);

        if !write_ok || !keep_alive {
            return;
        }
    }
}

/// The request's verb name, as spans and trace lines report it.
fn verb_name(request: &PlanRequest) -> &'static str {
    match request {
        PlanRequest::Plan { .. } => "Plan",
        PlanRequest::ProfileBin { .. } => "ProfileBin",
        PlanRequest::PlanDelta { .. } => "PlanDelta",
        PlanRequest::Get { .. } => "Get",
        PlanRequest::TraceGet { .. } => "TraceGet",
        PlanRequest::Stats => "Stats",
        PlanRequest::Metrics => "Metrics",
        PlanRequest::Ping => "Ping",
    }
}

fn write_response(w: &mut TcpStream, resp: &PlanResponse) -> std::io::Result<()> {
    let payload = serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(w, payload.as_bytes())
}

/// Packages a served plan for the requested encoding: inline JSON, or a
/// `PlanBin` header plus the cache entry whose memoized binary encoding
/// the connection handler writes as the follow-up frame. The encoding is
/// computed at most once per cache entry, not once per response.
fn plan_response(
    fingerprint: String,
    source: PlanSource,
    started: Instant,
    entry: Arc<CachedPlan>,
    encoding: PlanEncoding,
    span: &mut RequestSpan,
) -> (PlanResponse, Option<Arc<CachedPlan>>) {
    let encode_start = Instant::now();
    match encoding {
        PlanEncoding::Json => {
            let plan = entry.plan.clone();
            span.record_since(Phase::Encode, encode_start);
            (
                PlanResponse::Plan {
                    fingerprint,
                    source,
                    micros: started.elapsed().as_micros() as u64,
                    plan,
                },
                None,
            )
        }
        PlanEncoding::Binary => {
            // May run `encode_plan` (first binary response for an entry
            // whose bytes weren't already in hand) — encode-phase work.
            let bytes = entry.encoded().len() as u64;
            span.record_since(Phase::Encode, encode_start);
            (
                PlanResponse::PlanBin {
                    fingerprint,
                    source,
                    micros: started.elapsed().as_micros() as u64,
                    bytes,
                },
                Some(entry),
            )
        }
    }
}

/// Handles one parsed request (`raw_profile` is the payload of the raw
/// frame a `ProfileBin` header announced). The second tuple element,
/// when present, is the cache entry whose binary encoding the connection
/// handler writes as its own frame right after the JSON response.
fn handle_request(
    request: PlanRequest,
    raw_profile: Option<Vec<u8>>,
    started: Instant,
    shared: &Shared,
    span: &mut RequestSpan,
) -> (PlanResponse, Option<Arc<CachedPlan>>) {
    match request {
        PlanRequest::Ping => (PlanResponse::Pong, None),
        PlanRequest::Stats => (
            PlanResponse::Stats {
                stats: shared.snapshot(),
            },
            None,
        ),
        PlanRequest::Metrics => {
            shared.counters.metrics_requests.inc();
            (
                PlanResponse::Metrics {
                    metrics: shared.metrics(),
                },
                None,
            )
        }
        PlanRequest::TraceGet { trace_id } => {
            let Some(id) = parse_trace_id(&trace_id) else {
                shared.counters.errors.inc();
                return (
                    PlanResponse::Error {
                        kind: WireErrorKind::BadRequest,
                        message: format!("'{trace_id}' is not a 32-hex-digit trace id"),
                    },
                    None,
                );
            };
            let spans = shared
                .obs
                .spans
                .by_trace(id)
                .iter()
                .map(SpanSnapshot::from)
                .collect();
            (PlanResponse::Trace { trace_id, spans }, None)
        }
        PlanRequest::Get {
            fingerprint,
            encoding,
            ..
        } => {
            // Absent = a client from before the field existed: serve the
            // plan inline in JSON, as such clients expect.
            let encoding = encoding.unwrap_or(PlanEncoding::Json);
            let Some(fp) = Fingerprint::from_hex(&fingerprint) else {
                shared.counters.errors.inc();
                return (
                    PlanResponse::Error {
                        kind: WireErrorKind::BadRequest,
                        message: format!("'{fingerprint}' is not a 32-hex-digit fingerprint"),
                    },
                    None,
                );
            };
            match lookup_cached(fp, shared, span) {
                Some((entry, source)) => {
                    plan_response(fingerprint, source, started, entry, encoding, span)
                }
                None => (PlanResponse::NotFound { fingerprint }, None),
            }
        }
        PlanRequest::Plan {
            profile,
            config,
            encoding,
            ..
        } => {
            let encoding = encoding.unwrap_or(PlanEncoding::Json);
            shared.counters.plan_requests.inc();
            let fp_start = Instant::now();
            let fp = fingerprint_job(&profile, &config);
            // Remember the profile's canonical bytes under its
            // config-free fingerprint, so a later `PlanDelta` against
            // this base finds it.
            let raw = encode_profile(&profile);
            let pfp = fingerprint_profile_body(profile_body(&raw).expect("just encoded"));
            shared.profiles.insert(pfp, Arc::new(raw));
            span.record_since(Phase::Fingerprint, fp_start);
            if let Some((entry, source)) = lookup_cached(fp, shared, span) {
                return plan_response(fp.to_hex(), source, started, entry, encoding, span);
            }
            match plan_single_flight(fp, &profile, &config, shared, span) {
                Ok((entry, source)) => {
                    plan_response(fp.to_hex(), source, started, entry, encoding, span)
                }
                Err(message) => {
                    shared.counters.errors.inc();
                    (
                        PlanResponse::Error {
                            kind: WireErrorKind::Internal,
                            message,
                        },
                        None,
                    )
                }
            }
        }
        PlanRequest::ProfileBin {
            config, encoding, ..
        } => {
            let encoding = encoding.unwrap_or(PlanEncoding::Json);
            shared.counters.plan_requests.inc();
            let raw = raw_profile.expect("connection handler reads the profile frame");
            // Fingerprint the canonical bytes directly: a cache hit never
            // pays the profile decode (nor, with the encoding memo, a
            // plan encode) — the whole point of the binary request path.
            let fp_start = Instant::now();
            let body = match profile_body(&raw) {
                Ok(b) => b,
                Err(e) => {
                    shared.counters.errors.inc();
                    return (
                        PlanResponse::Error {
                            kind: WireErrorKind::BadRequest,
                            message: format!("binary profile: {e}"),
                        },
                        None,
                    );
                }
            };
            let fp = fingerprint_job_body(body, &config);
            // The bytes are already canonical: remembering them as a
            // future delta base is one hash and one memcpy.
            shared
                .profiles
                .insert(fingerprint_profile_body(body), Arc::new(raw.clone()));
            span.record_since(Phase::Fingerprint, fp_start);
            if let Some((entry, source)) = lookup_cached(fp, shared, span) {
                return plan_response(fp.to_hex(), source, started, entry, encoding, span);
            }
            // Miss: now the profile is actually needed (decode-phase
            // work, deferred off the hit path).
            let decode_start = Instant::now();
            let profile = match decode_profile(&raw) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.errors.inc();
                    return (
                        PlanResponse::Error {
                            kind: WireErrorKind::BadRequest,
                            message: format!("binary profile: {e}"),
                        },
                        None,
                    );
                }
            };
            span.record_since(Phase::Decode, decode_start);
            match plan_single_flight(fp, &profile, &config, shared, span) {
                Ok((entry, source)) => {
                    plan_response(fp.to_hex(), source, started, entry, encoding, span)
                }
                Err(message) => {
                    shared.counters.errors.inc();
                    (
                        PlanResponse::Error {
                            kind: WireErrorKind::Internal,
                            message,
                        },
                        None,
                    )
                }
            }
        }
        PlanRequest::PlanDelta {
            config, encoding, ..
        } => {
            let encoding = encoding.unwrap_or(PlanEncoding::Json);
            shared.counters.plan_requests.inc();
            shared.counters.delta_requests.inc();
            let raw = raw_profile.expect("connection handler reads the delta frame");
            let decode_start = Instant::now();
            let delta = match decode_profile_delta(&raw) {
                Ok(d) => d,
                Err(e) => {
                    shared.counters.errors.inc();
                    return (
                        PlanResponse::Error {
                            kind: WireErrorKind::BadRequest,
                            message: format!("binary profile delta: {e}"),
                        },
                        None,
                    );
                }
            };
            span.record_since(Phase::Decode, decode_start);
            // Base gone from the profile cache (or never seen): tell the
            // client which base missed so it can retry with the full
            // profile — the delta alone cannot be synthesized.
            let Some(base_raw) = shared.profiles.get(delta.base) else {
                return (
                    PlanResponse::NotFound {
                        fingerprint: delta.base.to_hex(),
                    },
                    None,
                );
            };
            // Materialize the next profile: decode the cached base and
            // apply the edit script (replan-phase work — the delta
            // path's substitute for a full profile transfer + decode).
            let replan_start = Instant::now();
            let base_profile = match decode_profile(&base_raw) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.errors.inc();
                    return (
                        PlanResponse::Error {
                            kind: WireErrorKind::Internal,
                            message: format!("cached base profile undecodable: {e}"),
                        },
                        None,
                    );
                }
            };
            let next_profile = match apply_delta(&base_profile, &delta) {
                Ok(p) => p,
                Err(e) => {
                    shared.counters.errors.inc();
                    return (
                        PlanResponse::Error {
                            kind: WireErrorKind::BadRequest,
                            message: format!("profile delta does not apply: {e}"),
                        },
                        None,
                    );
                }
            };
            span.record_since(Phase::Replan, replan_start);

            let fp_start = Instant::now();
            let next_raw = encode_profile(&next_profile);
            let next_body = profile_body(&next_raw).expect("just encoded");
            let fp = fingerprint_job_body(next_body, &config);
            // The applied profile becomes a delta base itself, so a
            // family N → N+1 → N+2 can chain deltas without ever
            // re-sending a full profile.
            shared
                .profiles
                .insert(fingerprint_profile_body(next_body), Arc::new(next_raw));
            span.record_since(Phase::Fingerprint, fp_start);

            // Tier 1/2: the next job may already have a plan.
            if let Some((entry, source)) = lookup_cached(fp, shared, span) {
                shared.counters.delta_hits.inc();
                return plan_response(fp.to_hex(), source, started, entry, encoding, span);
            }

            // Delta tier: patch the cached base plan in-process. The
            // base probe is counter-free — it serves no plan by itself.
            let base_fp = fingerprint_job_body(
                profile_body(&base_raw).expect("cache holds canonical bytes"),
                &config,
            );
            if let Some(base_entry) = probe_cached(base_fp, shared) {
                let patch_start = Instant::now();
                let patched = catch_unwind(AssertUnwindSafe(|| {
                    patch_plan(&base_profile, &base_entry.plan, &next_profile)
                }))
                .ok()
                .and_then(|r| r.ok())
                .filter(|(plan, _)| plan.validate().is_ok());
                span.record_since(Phase::Replan, patch_start);
                if let Some((plan, _stats)) = patched {
                    shared.counters.delta_patched.inc();
                    let entry = CachedPlan::new(plan);
                    shared.lru.insert(fp, Arc::clone(&entry));
                    if let Some(store) = &shared.store {
                        let _ = store.put_encoded(fp, &entry.plan, entry.encoded());
                    }
                    return plan_response(
                        fp.to_hex(),
                        PlanSource::Patched,
                        started,
                        entry,
                        encoding,
                        span,
                    );
                }
            }

            // No cached base plan (or the patch didn't survive
            // validation): the applied profile goes down the ordinary
            // synthesis path.
            match plan_single_flight(fp, &next_profile, &config, shared, span) {
                Ok((entry, source)) => {
                    plan_response(fp.to_hex(), source, started, entry, encoding, span)
                }
                Err(message) => {
                    shared.counters.errors.inc();
                    (
                        PlanResponse::Error {
                            kind: WireErrorKind::Internal,
                            message,
                        },
                        None,
                    )
                }
            }
        }
    }
}

/// Counter-free cache probe (LRU, then store) for plans that are
/// *inputs* to serving — the `PlanDelta` base plan — rather than the
/// answer itself: tier counters and lookup phases must reflect only the
/// plan actually served.
fn probe_cached(fp: Fingerprint, shared: &Shared) -> Option<Arc<CachedPlan>> {
    if let Some(entry) = shared.lru.get(fp) {
        return Some(entry);
    }
    let store = shared.store.as_ref()?;
    let (plan, bytes) = store
        .get_with_bytes(fp)
        .ok()
        .flatten()
        .filter(|(p, _)| p.validate().is_ok())?;
    let entry = CachedPlan::with_bytes(plan, bytes);
    shared.lru.insert(fp, Arc::clone(&entry));
    Some(entry)
}

/// Cache tiers 1 and 2: the in-process LRU, then the shared disk store
/// (promoting disk hits into the LRU). Corrupt or unsound store entries
/// are treated as misses, mirroring `synthesize_cached`. A disk hit
/// seeds the entry's encoding memo with the artifact's own bytes — they
/// are exactly `encode_plan` output, so binary responses for that entry
/// never encode at all.
fn lookup_cached(
    fp: Fingerprint,
    shared: &Shared,
    span: &mut RequestSpan,
) -> Option<(Arc<CachedPlan>, PlanSource)> {
    let lru_start = Instant::now();
    let lru_hit = shared.lru.get(fp);
    span.record_since(Phase::LruLookup, lru_start);
    if let Some(entry) = lru_hit {
        shared.counters.lru_hits.inc();
        return Some((entry, PlanSource::Lru));
    }
    let store = shared.store.as_ref()?;
    let store_start = Instant::now();
    let found = store
        .get_with_bytes(fp)
        .ok()
        .flatten()
        .filter(|(p, _)| p.validate().is_ok());
    span.record_since(Phase::StoreLookup, store_start);
    let (plan, bytes) = found?;
    shared.counters.store_hits.inc();
    let entry = CachedPlan::with_bytes(plan, bytes);
    shared.lru.insert(fp, Arc::clone(&entry));
    Some((entry, PlanSource::Store))
}

/// Cache tier 3: synthesis with single-flight deduplication. The first
/// request for `fp` becomes the leader and synthesizes; requests landing
/// while it runs wait on the flight and share the result.
fn plan_single_flight(
    fp: Fingerprint,
    profile: &stalloc_core::ProfiledRequests,
    config: &stalloc_core::SynthConfig,
    shared: &Shared,
    span: &mut RequestSpan,
) -> Result<(Arc<CachedPlan>, PlanSource), String> {
    let (flight, leader) = {
        let mut map = shared.inflight.lock().expect("inflight lock");
        match map.get(&fp) {
            Some(f) => (Arc::clone(f), false),
            None => {
                let f = Arc::new(Flight {
                    done: Mutex::new(None),
                    cv: Condvar::new(),
                });
                map.insert(fp, Arc::clone(&f));
                (f, true)
            }
        }
    };

    if !leader {
        // A follower's synthesis phase is its wait on the leader's run —
        // the time this request spent on (someone's) synthesis.
        let wait_start = Instant::now();
        let mut done = flight.done.lock().expect("flight lock");
        while done.is_none() {
            done = flight.cv.wait(done).expect("flight lock");
        }
        let result = done.clone().expect("checked some");
        span.record_since(Phase::Synthesis, wait_start);
        return match result {
            Ok(entry) => {
                shared.counters.coalesced.inc();
                Ok((entry, PlanSource::Coalesced))
            }
            Err(e) => Err(format!("coalesced synthesis failed: {e}")),
        };
    }

    // Leader re-check: this thread may have read the caches *before* a
    // previous leader for the same job published its plan and retired its
    // flight entry. Without this, two "one" syntheses could both run —
    // the map insert happens-after the previous leader's cache insert, so
    // a second look is conclusive.
    if let Some((entry, source)) = lookup_cached(fp, shared, span) {
        {
            let mut done = flight.done.lock().expect("flight lock");
            *done = Some(Ok(Arc::clone(&entry)));
            flight.cv.notify_all();
        }
        shared.inflight.lock().expect("inflight lock").remove(&fp);
        return Ok((entry, source));
    }

    // Leader: synthesize behind a panic guard — a worker must survive any
    // pathological profile, and followers must never wait forever.
    // `synthesize_strategy_reported` honours the request's strategy
    // choice, including the portfolio race, and its candidate reports
    // feed the per-strategy solver aggregates.
    let synth_start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        synthesize_strategy_reported(profile, config)
    }))
    .map(|(plan, reports)| {
        shared.obs.solver.record(&reports);
        CachedPlan::new(plan)
    })
    .map_err(|_| "synthesis panicked".to_string());
    span.record_since(Phase::Synthesis, synth_start);
    if let Ok(entry) = &outcome {
        shared.counters.misses.inc();
        shared.lru.insert(fp, Arc::clone(entry));
        if let Some(store) = &shared.store {
            // Best effort: a store write failure must not fail the
            // request — the plan is already in hand. The encoding this
            // forces is the same one binary responses reuse (memoized),
            // so the plan is encoded once per synthesis, total.
            let _ = store.put_encoded(fp, &entry.plan, entry.encoded());
        }
    }
    {
        let mut done = flight.done.lock().expect("flight lock");
        *done = Some(outcome.clone());
        flight.cv.notify_all();
    }
    shared.inflight.lock().expect("inflight lock").remove(&fp);
    outcome.map(|entry| (entry, PlanSource::Synthesized))
}
