//! End-to-end acceptance: an in-process server under a concurrent load of
//! ≥ 32 plan requests over a mix of 4 job configs. Every response must
//! decode to a valid plan, each unique fingerprint must be synthesized
//! exactly once (single-flight), and the `stats` verb must agree with the
//! observed hit/miss split.

use std::sync::{Arc, Barrier};
use std::thread;

use stalloc_core::{fingerprint_job, profile_trace, ProfiledRequests, SynthConfig};
use stalloc_served::{PlanClient, PlanServer, ServeConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn profile() -> ProfiledRequests {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(4)
    .with_iterations(2)
    .build_trace()
    .unwrap();
    profile_trace(&trace, 1).unwrap()
}

fn four_configs() -> [SynthConfig; 4] {
    [
        SynthConfig::default(),
        SynthConfig {
            enable_fusion: false,
            ..SynthConfig::default()
        },
        SynthConfig {
            enable_gap_insertion: false,
            ..SynthConfig::default()
        },
        SynthConfig {
            ascending_sizes: true,
            ..SynthConfig::default()
        },
    ]
}

#[test]
fn concurrent_mixed_load_is_single_flight_and_accounted() {
    const CLIENTS: usize = 32;

    let dir = std::env::temp_dir().join(format!("stalloc-served-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = PlanServer::start(ServeConfig {
        workers: 8,
        queue_depth: CLIENTS,
        store_dir: Some(dir.clone()),
        lru_capacity: 64,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let profile = Arc::new(profile());
    let configs = four_configs();
    let expected_fps: Vec<String> = configs
        .iter()
        .map(|c| fingerprint_job(&profile, c).to_hex())
        .collect();

    // 32 clients, 8 per config, all released at once.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let profile = Arc::clone(&profile);
            let config = configs[i % configs.len()];
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                barrier.wait();
                // PlanClient::plan re-validates the plan on receipt, so an
                // Ok here certifies `Plan::validate`.
                client.plan(&profile, &config).expect("plan request")
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results.len(), CLIENTS);

    // All responses carry sound plans for the expected fingerprints, and
    // identical jobs received identical plans.
    for r in &results {
        r.plan.validate().expect("response plan is valid");
        assert!(expected_fps.contains(&r.fingerprint.to_hex()));
    }
    for fp in &expected_fps {
        let group: Vec<_> = results
            .iter()
            .filter(|r| &r.fingerprint.to_hex() == fp)
            .collect();
        assert_eq!(group.len(), CLIENTS / configs.len());
        for r in &group[1..] {
            assert_eq!(r.plan, group[0].plan, "divergent plans for {fp}");
        }
    }

    // Single-flight: exactly one synthesis per unique fingerprint, and
    // the client-observed sources agree.
    let synthesized = results
        .iter()
        .filter(|r| !r.source.is_hit())
        .map(|r| r.fingerprint.to_hex())
        .collect::<std::collections::BTreeSet<_>>();
    let observed_misses = results.iter().filter(|r| !r.source.is_hit()).count();
    assert_eq!(
        observed_misses,
        configs.len(),
        "each unique job synthesized exactly once"
    );
    assert_eq!(synthesized.len(), configs.len());

    // The stats verb agrees with what the clients saw.
    let mut stats_client = PlanClient::connect(addr).unwrap();
    let stats = stats_client.stats().unwrap();
    assert_eq!(stats.plan_requests, CLIENTS as u64);
    assert_eq!(stats.misses, configs.len() as u64);
    assert_eq!(
        stats.hits(),
        (CLIENTS - configs.len()) as u64,
        "hits + misses cover every plan request: {stats:?}"
    );
    assert_eq!(stats.in_flight, 1, "only the stats request is in flight");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.workers, 8);

    // The local handle agrees with the wire snapshot.
    let local = server.stats();
    assert_eq!(local.misses, stats.misses);
    assert_eq!(local.plan_requests, stats.plan_requests);
    assert_eq!(local.in_flight, 0, "quiesced after responses");

    // The plans landed in the shared store: a fresh server over the same
    // directory (cold LRU) serves them as store hits.
    server.shutdown();
    let server2 = PlanServer::start(ServeConfig {
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = PlanClient::connect(server2.addr()).unwrap();
    let again = client.plan(&profile, &configs[0]).unwrap();
    assert!(again.source.is_hit(), "persisted plan survives restart");
    assert_eq!(server2.stats().misses, 0);
    server2.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_under_idle_connections() {
    let server = PlanServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    // Two idle keep-alive connections parked on workers, one queued.
    let c1 = PlanClient::connect(server.addr()).unwrap();
    let c2 = PlanClient::connect(server.addr()).unwrap();
    let c3 = PlanClient::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Shutdown must return despite the parked connections (the workers'
    // patient reads notice the flag at the next poll tick).
    server.shutdown();
    drop((c1, c2, c3));
}
