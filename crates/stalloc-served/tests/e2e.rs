//! End-to-end acceptance: an in-process server under a concurrent load of
//! ≥ 32 plan requests over a mix of 4 job configs. Every response must
//! decode to a valid plan, each unique fingerprint must be synthesized
//! exactly once (single-flight), and the `stats` verb must agree with the
//! observed hit/miss split.

use std::sync::{Arc, Barrier};
use std::thread;

use stalloc_core::{fingerprint_job, profile_trace, ProfiledRequests, SynthConfig};
use stalloc_served::{PlanClient, PlanServer, ServeConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn profile() -> ProfiledRequests {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(4)
    .with_iterations(2)
    .build_trace()
    .unwrap();
    profile_trace(&trace, 1).unwrap()
}

fn four_configs() -> [SynthConfig; 4] {
    [
        SynthConfig::default(),
        SynthConfig {
            enable_fusion: false,
            ..SynthConfig::default()
        },
        SynthConfig {
            enable_gap_insertion: false,
            ..SynthConfig::default()
        },
        SynthConfig {
            ascending_sizes: true,
            ..SynthConfig::default()
        },
    ]
}

#[test]
fn concurrent_mixed_load_is_single_flight_and_accounted() {
    const CLIENTS: usize = 32;

    let dir = std::env::temp_dir().join(format!("stalloc-served-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = PlanServer::start(ServeConfig {
        workers: 8,
        queue_depth: CLIENTS,
        store_dir: Some(dir.clone()),
        lru_capacity: 64,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let profile = Arc::new(profile());
    let configs = four_configs();
    let expected_fps: Vec<String> = configs
        .iter()
        .map(|c| fingerprint_job(&profile, c).to_hex())
        .collect();

    // 32 clients, 8 per config, all released at once.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let profile = Arc::clone(&profile);
            let config = configs[i % configs.len()];
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                barrier.wait();
                // PlanClient::plan re-validates the plan on receipt, so an
                // Ok here certifies `Plan::validate`.
                client.plan(&profile, &config).expect("plan request")
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results.len(), CLIENTS);

    // All responses carry sound plans for the expected fingerprints, and
    // identical jobs received identical plans.
    for r in &results {
        r.plan.validate().expect("response plan is valid");
        assert!(expected_fps.contains(&r.fingerprint.to_hex()));
    }
    for fp in &expected_fps {
        let group: Vec<_> = results
            .iter()
            .filter(|r| &r.fingerprint.to_hex() == fp)
            .collect();
        assert_eq!(group.len(), CLIENTS / configs.len());
        for r in &group[1..] {
            assert_eq!(r.plan, group[0].plan, "divergent plans for {fp}");
        }
    }

    // Single-flight: exactly one synthesis per unique fingerprint, and
    // the client-observed sources agree.
    let synthesized = results
        .iter()
        .filter(|r| !r.source.is_hit())
        .map(|r| r.fingerprint.to_hex())
        .collect::<std::collections::BTreeSet<_>>();
    let observed_misses = results.iter().filter(|r| !r.source.is_hit()).count();
    assert_eq!(
        observed_misses,
        configs.len(),
        "each unique job synthesized exactly once"
    );
    assert_eq!(synthesized.len(), configs.len());

    // The stats verb agrees with what the clients saw.
    let mut stats_client = PlanClient::connect(addr).unwrap();
    let stats = stats_client.stats().unwrap();
    assert_eq!(stats.plan_requests, CLIENTS as u64);
    assert_eq!(stats.misses, configs.len() as u64);
    assert_eq!(
        stats.hits(),
        (CLIENTS - configs.len()) as u64,
        "hits + misses cover every plan request: {stats:?}"
    );
    assert_eq!(stats.in_flight, 1, "only the stats request is in flight");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.workers, 8);

    // The local handle agrees with the wire snapshot.
    let local = server.stats();
    assert_eq!(local.misses, stats.misses);
    assert_eq!(local.plan_requests, stats.plan_requests);
    assert_eq!(local.in_flight, 0, "quiesced after responses");

    // The plans landed in the shared store: a fresh server over the same
    // directory (cold LRU) serves them as store hits.
    server.shutdown();
    let server2 = PlanServer::start(ServeConfig {
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = PlanClient::connect(server2.addr()).unwrap();
    let again = client.plan(&profile, &configs[0]).unwrap();
    assert!(again.source.is_hit(), "persisted plan survives restart");
    assert_eq!(server2.stats().misses, 0);
    server2.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_under_idle_connections() {
    let server = PlanServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    // Two idle keep-alive connections parked on workers, one queued.
    let c1 = PlanClient::connect(server.addr()).unwrap();
    let c2 = PlanClient::connect(server.addr()).unwrap();
    let c3 = PlanClient::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Shutdown must return despite the parked connections (the workers'
    // patient reads notice the flag at the next poll tick).
    server.shutdown();
    drop((c1, c2, c3));
}

#[test]
fn delta_requests_patch_chain_and_fall_back() {
    let server = PlanServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = PlanClient::connect(server.addr()).unwrap();
    let config = SynthConfig::default();

    // Cold plan for the family's base: teaches the server both the plan
    // and the base profile bytes.
    let base = profile();
    let cold = client.plan(&base, &config).unwrap();
    assert!(!cold.source.is_hit());

    // Profile N+1: one activation grows, one scratch tensor appears.
    let mut next = base.clone();
    next.statics[next.init_count].size += 4096;
    next.statics.push(stalloc_core::RequestEvent {
        size: 1 << 20,
        ts: 5,
        te: 30,
        ps: 0,
        pe: 0,
        dynamic: false,
        ls: None,
        le: None,
    });

    // The delta request lands on the patched tier, and the response is
    // the plan a full request for `next` would be keyed under.
    let patched = client.plan_delta(&base, &next, &config).unwrap();
    assert_eq!(patched.source, stalloc_core::PlanSource::Patched);
    assert_eq!(patched.fingerprint, fingerprint_job(&next, &config));
    patched.plan.validate().unwrap();
    assert_eq!(
        patched.plan.stats.peak_static_demand,
        next.peak_static_demand()
    );

    // Same delta again: the patched plan is cached now, so this is a
    // delta-attributed LRU hit, not another patch.
    let hit = client.plan_delta(&base, &next, &config).unwrap();
    assert_eq!(hit.source, stalloc_core::PlanSource::Lru);
    assert_eq!(hit.plan, patched.plan);

    // Chained delta: N+2 diffed against N+1, whose profile the server
    // learned by *applying* the previous delta — no full profile for
    // `next` was ever sent.
    let mut next2 = next.clone();
    next2.statics[next2.init_count + 1].size += 8192;
    let chained = client.plan_delta(&next, &next2, &config).unwrap();
    assert_eq!(chained.source, stalloc_core::PlanSource::Patched);
    chained.plan.validate().unwrap();

    // A delta against a base the server never saw: NotFound inside, but
    // the client transparently retries full on the same connection.
    let mut stranger = base.clone();
    for r in &mut stranger.statics {
        r.size += 512;
    }
    let mut stranger_next = stranger.clone();
    stranger_next.statics[0].size += 512;
    let fallback = client
        .plan_delta(&stranger, &stranger_next, &config)
        .unwrap();
    assert_eq!(fallback.source, stalloc_core::PlanSource::Synthesized);
    assert_eq!(
        fallback.fingerprint,
        fingerprint_job(&stranger_next, &config)
    );

    // Counters and histograms tell the same story.
    let stats = client.stats().unwrap();
    assert_eq!(stats.delta_requests, 4);
    assert_eq!(stats.delta_patched, 2);
    assert_eq!(stats.delta_hits, 1);
    assert_eq!(stats.errors, 0);
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.tier("patched").unwrap().total(), 2);
    assert!(
        metrics.phase("replan").unwrap().total() >= 2,
        "replan phase populated: {:?}",
        metrics.phase("replan")
    );
    // The patched tier must be far below a cold synthesis: same job
    // family, same process, so the comparison is apples-to-apples.
    let patched_p50 = metrics.tier("patched").unwrap().quantile(0.5).unwrap();
    let miss_p50 = metrics.tier("miss").unwrap().quantile(0.5).unwrap();
    assert!(
        patched_p50 < miss_p50,
        "patched {patched_p50}µs vs cold {miss_p50}µs"
    );
    server.shutdown();
}
