//! Live-server acceptance for the Prometheus exposition endpoint: a
//! `PlanServer` started with `metrics_addr` serves `GET /metrics` over
//! plain HTTP/1.1, and after one synthesized plan the text body carries
//! a nonzero `stalloc_synthesis_seconds_bucket` sample plus the
//! per-strategy solver section.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use stalloc_core::{profile_trace, SynthConfig};
use stalloc_served::{PlanClient, PlanServer, ServeConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn profile() -> stalloc_core::ProfiledRequests {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(2)
    .build_trace()
    .unwrap();
    profile_trace(&trace, 1).unwrap()
}

/// Issues one HTTP/1.1 request and returns (status line, headers, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics port");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: stalloc\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_serves_prometheus_text_after_a_plan() {
    let server = PlanServer::start(ServeConfig {
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .unwrap();
    let maddr = server.metrics_http_addr().expect("metrics listener bound");

    // Scrape before any traffic: valid exposition, all counters zero.
    let (status, headers, body) = http_get(maddr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        headers.contains("text/plain; version=0.0.4"),
        "prometheus content type: {headers}"
    );
    assert!(body.contains("stalloc_requests_total 0"));
    assert!(
        !body.contains("stalloc_solver_runs_total"),
        "no solver section before any synthesis"
    );

    // One plan request forces a synthesis (miss) through the solver.
    let profile = profile();
    let mut client = PlanClient::connect(server.addr()).unwrap();
    let got = client.plan(&profile, &SynthConfig::default()).unwrap();
    assert!(!got.source.is_hit());

    // The worker records its span *after* writing the response, so an
    // immediate scrape can race it; retry briefly until the span lands.
    let mut body = String::new();
    for _ in 0..50 {
        body = http_get(maddr, "/metrics").2;
        if body.contains("stalloc_synthesis_seconds_count 1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(body.contains("stalloc_plan_requests_total 1"));
    assert!(body.contains("stalloc_plans_served_total{tier=\"miss\"} 1"));
    // The CI smoke grep: a nonzero cumulative synthesis bucket.
    assert!(
        body.lines()
            .any(|l| l.starts_with("stalloc_synthesis_seconds_bucket") && !l.ends_with(" 0")),
        "nonzero synthesis bucket in:\n{body}"
    );
    // Solver-phase profiling made it from the strategy through the wire:
    // at least one strategy ran and tried placements.
    assert!(body.contains("# TYPE stalloc_solver_runs_total counter"));
    let tried: f64 = body
        .lines()
        .filter_map(|l| l.strip_prefix("stalloc_solver_placements_tried_total"))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum();
    assert!(tried > 0.0, "placements_tried exported: \n{body}");

    // The root path aliases /metrics; anything else is a 404.
    let (status, _, root_body) = http_get(maddr, "/");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(root_body.contains("stalloc_requests_total"));
    let (status, _, _) = http_get(maddr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    server.shutdown();
}

#[test]
fn shutdown_joins_the_metrics_thread() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .unwrap();
    let maddr = server.metrics_http_addr().unwrap();
    let (status, _, _) = http_get(maddr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // Must return promptly (the handle self-connects to unblock accept).
    server.shutdown();
    // The listener is gone: a fresh connection is refused or hangs up
    // without an HTTP response.
    let refused = match TcpStream::connect(maddr) {
        Err(_) => true,
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf)
                .map(|_| buf.is_empty())
                .unwrap_or(true)
        }
    };
    assert!(refused, "metrics port closed after shutdown");
}

#[test]
fn bad_metrics_addr_fails_fast() {
    let err = PlanServer::start(ServeConfig {
        workers: 1,
        metrics_addr: Some("definitely-not-an-addr".into()),
        ..ServeConfig::default()
    });
    assert!(err.is_err(), "unbindable metrics addr rejected at start");
}
