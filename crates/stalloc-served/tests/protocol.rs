//! Wire-protocol robustness: malformed frames, oversized payloads, and
//! mid-stream disconnects must produce typed errors and never poison a
//! worker — the same worker pool must keep serving well-formed traffic
//! afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;

use stalloc_core::wire::WireErrorKind;
use stalloc_core::{profile_trace, ProfiledRequests, SynthConfig};
use stalloc_served::{read_frame, ClientError, PlanClient, PlanServer, ServeConfig};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn small_profile() -> ProfiledRequests {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(2)
    .with_iterations(2)
    .build_trace()
    .unwrap();
    profile_trace(&trace, 1).unwrap()
}

/// Reads the server's one response frame off a raw socket as a string.
fn read_error_frame(stream: &mut TcpStream) -> String {
    let frame = read_frame(stream, 1 << 20)
        .expect("server answers with a frame")
        .expect("server answers before closing");
    String::from_utf8(frame).expect("responses are JSON text")
}

/// The server must still serve a real request — proof the worker that saw
/// the malformed traffic is not poisoned.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let mut client = PlanClient::connect(addr).unwrap();
    client
        .ping()
        .expect("server still answers after bad client");
}

#[test]
fn malformed_header_gets_typed_error_and_worker_survives() {
    // One worker: the same thread that sees the garbage must serve the
    // follow-up request.
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"this is not a length header\n").unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("BadFrame"), "typed error, got: {resp}");
    // The stream is unsynchronized; the server closes it.
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no further frames after a bad header");

    assert_still_serving(server.addr());
    assert!(server.stats().errors >= 1);
    server.shutdown();
}

#[test]
fn oversized_payload_is_rejected_before_read() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        max_frame: 1024,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // Declare 1 MiB against a 1 KiB limit; send no payload. The server
    // must reject on the header alone.
    raw.write_all(b"1048576\n").unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("Oversized"), "typed error, got: {resp}");

    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn bad_json_payload_gets_typed_error() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    stalloc_served::write_frame(&mut raw, b"{\"not\": \"a request\"}").unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("BadFrame"), "typed error, got: {resp}");

    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn midstream_disconnect_does_not_poison_worker() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    // Promise 64 KiB, deliver 10 bytes, vanish.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"65536\n0123456789").unwrap();
        raw.flush().unwrap();
    } // dropped: RST/EOF mid-payload

    // And once more with zero payload bytes after the header.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"65536\n").unwrap();
        raw.flush().unwrap();
    }

    assert_still_serving(server.addr());
    server.shutdown();
}

#[test]
fn bad_fingerprint_is_bad_request_and_connection_survives() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    // The typed client cannot produce a malformed fingerprint, so speak
    // the protocol by hand.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    // No `encoding` key: this is also the frame shape of clients that
    // predate the field, which must keep parsing.
    stalloc_served::write_frame(&mut raw, br#"{"Get": {"fingerprint": "wat"}}"#).unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("BadRequest"), "typed error, got: {resp}");

    // A BadRequest leaves the frame boundary intact: the *same*
    // connection keeps working.
    stalloc_served::write_frame(&mut raw, br#""Ping""#).unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("Pong"), "connection survives: {resp}");

    server.shutdown();
}

#[test]
fn binary_and_json_encodings_serve_identical_plans() {
    use stalloc_core::wire::PlanEncoding;

    let server = PlanServer::start(ServeConfig::default()).unwrap();
    let profile = small_profile();
    let config = SynthConfig::default();

    // Default client speaks binary; an explicit JSON client must get the
    // exact same plan for the same job (served from cache the 2nd time).
    let mut bin_client = PlanClient::connect(server.addr()).unwrap();
    let via_bin = bin_client.plan(&profile, &config).unwrap();
    let mut json_client = PlanClient::connect(server.addr())
        .unwrap()
        .with_encoding(PlanEncoding::Json);
    let via_json = json_client.plan(&profile, &config).unwrap();

    assert_eq!(via_bin.plan, via_json.plan);
    assert_eq!(via_bin.fingerprint, via_json.fingerprint);
    assert!(!via_bin.source.is_hit(), "first request synthesizes");
    assert!(via_json.source.is_hit(), "second is a cache hit");

    // Get by fingerprint round-trips through the binary path too, and
    // the keep-alive connection stays frame-synchronized afterwards.
    let got = bin_client
        .get(via_bin.fingerprint)
        .unwrap()
        .expect("cached");
    assert_eq!(got.plan, via_bin.plan);
    bin_client.ping().unwrap();

    assert_eq!(server.stats().misses, 1);
    server.shutdown();
}

#[test]
fn json_and_binary_profile_requests_share_one_cache_entry() {
    use stalloc_core::wire::ProfileEncoding;

    let server = PlanServer::start(ServeConfig::default()).unwrap();
    let profile = small_profile();
    let config = SynthConfig::default();

    // A JSON-profile client plans first (one synthesis) …
    let mut json_client = PlanClient::connect(server.addr())
        .unwrap()
        .with_profile_encoding(ProfileEncoding::Json);
    let via_json = json_client.plan(&profile, &config).unwrap();
    assert!(!via_json.source.is_hit());

    // … and a binary-profile client asking for the same job MUST hit
    // that entry: the fingerprint computed from the raw `PROF` bytes and
    // the one computed from the decoded profile are the same digest.
    let mut bin_client = PlanClient::connect(server.addr()).unwrap();
    assert_eq!(
        bin_client.profile_encoding(),
        ProfileEncoding::Binary,
        "binary profiles are the client default"
    );
    let via_bin = bin_client.plan(&profile, &config).unwrap();
    assert!(
        via_bin.source.is_hit(),
        "binary request missed the JSON request's cache entry"
    );
    assert_eq!(via_bin.fingerprint, via_json.fingerprint);
    assert_eq!(via_bin.plan, via_json.plan);

    assert_eq!(server.stats().misses, 1, "exactly one synthesis");
    server.shutdown();
}

#[test]
fn old_style_json_plan_request_still_served() {
    // A client from before `ProfileEncoding`/`PlanEncoding` existed:
    // profile inline, no encoding keys anywhere, pre-strategy 3-field
    // config. The server must answer with an inline-JSON `Plan`
    // response, exactly as it did then.
    use stalloc_served::write_frame;

    let server = PlanServer::start(ServeConfig::default()).unwrap();
    let profile = small_profile();
    let profile_json = serde_json::to_string(&profile).unwrap();
    let old_request = format!(
        r#"{{"Plan": {{"profile": {profile_json}, "config": {{"enable_fusion": true, "enable_gap_insertion": true, "ascending_sizes": false}}}}}}"#
    );

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, old_request.as_bytes()).unwrap();
    let response = read_error_frame(&mut raw); // reads any response frame
    assert!(
        response.contains(r#""Plan""#) && response.contains(r#""pool_size""#),
        "expected an inline-JSON Plan response, got: {response}"
    );
    assert!(
        !response.contains(r#""PlanBin""#),
        "old clients must never receive a binary header: {response}"
    );

    // The plan it got is the same artifact a modern binary client gets.
    let mut modern = PlanClient::connect(server.addr()).unwrap();
    let remote = modern.plan(&profile, &SynthConfig::default()).unwrap();
    assert!(remote.source.is_hit(), "same fingerprint, same cache entry");
    assert_eq!(server.stats().misses, 1);
    server.shutdown();
}

#[test]
fn profile_bin_length_mismatch_is_typed_and_closes() {
    use stalloc_core::wire::{PlanRequest, ProfileEncoding};
    use stalloc_served::write_frame;

    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    let raw_profile = stalloc_store::encode_profile(&small_profile());
    let header = PlanRequest::ProfileBin {
        config: SynthConfig::default(),
        encoding: None,
        bytes: raw_profile.len() as u64 + 7, // lie about the length
        trace: None,
    };
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, serde_json::to_string(&header).unwrap().as_bytes()).unwrap();
    write_frame(&mut raw, &raw_profile).unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("BadFrame"), "typed error, got: {resp}");
    // The stream is unsynchronized; the server closes it.
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no further frames after the error");

    // The same worker keeps serving, and real binary requests work.
    assert_still_serving(server.addr());
    let mut client = PlanClient::connect(server.addr()).unwrap();
    assert_eq!(client.profile_encoding(), ProfileEncoding::Binary);
    client
        .plan(&small_profile(), &SynthConfig::default())
        .unwrap();
    server.shutdown();
}

#[test]
fn corrupt_binary_profile_is_bad_request_and_connection_survives() {
    use stalloc_core::wire::PlanRequest;
    use stalloc_served::write_frame;

    let server = PlanServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();

    // Well-framed, correctly sized — but not a PROF stream.
    let garbage = b"these bytes are not a profile".to_vec();
    let header = PlanRequest::ProfileBin {
        config: SynthConfig::default(),
        encoding: None,
        bytes: garbage.len() as u64,
        trace: None,
    };
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, serde_json::to_string(&header).unwrap().as_bytes()).unwrap();
    write_frame(&mut raw, &garbage).unwrap();
    let resp = read_error_frame(&mut raw);
    assert!(resp.contains("BadRequest"), "typed error, got: {resp}");

    // Frames stayed synchronized, so the same connection keeps working.
    write_frame(&mut raw, br#""Ping""#).unwrap();
    let pong = read_error_frame(&mut raw);
    assert!(pong.contains("Pong"), "keep-alive after BadRequest: {pong}");
    server.shutdown();
}

#[test]
fn zero_queue_depth_sheds_load_with_busy() {
    let server = PlanServer::start(ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut client = PlanClient::connect(server.addr()).unwrap();
    match client.ping() {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, WireErrorKind::Busy),
        other => panic!("expected Busy rejection, got {other:?}"),
    }
    assert!(server.stats().rejected >= 1);
    server.shutdown();
}

#[test]
fn keep_alive_connection_serves_many_verbs() {
    let dir = std::env::temp_dir().join(format!("stalloc-served-proto-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = PlanServer::start(ServeConfig {
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap();

    let profile = small_profile();
    let config = SynthConfig::default();
    let mut client = PlanClient::connect(server.addr()).unwrap();

    client.ping().unwrap();
    let first = client.plan(&profile, &config).unwrap();
    assert!(!first.source.is_hit());
    // Lookup by fingerprint alone finds the cached artifact.
    let looked_up = client.get(first.fingerprint).unwrap().expect("cached");
    assert_eq!(looked_up.plan, first.plan);
    assert!(looked_up.source.is_hit());
    // Unknown fingerprint is a clean NotFound, not an error.
    let missing = client.get(stalloc_core::Fingerprint([0x5a; 16])).unwrap();
    assert!(missing.is_none());

    let stats = client.stats().unwrap();
    assert_eq!(stats.misses, 1);
    assert!(stats.hits() >= 1);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 1, "the stats request itself");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
