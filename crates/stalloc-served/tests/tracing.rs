//! Distributed-tracing interop over the wire trust boundary, all three
//! directions of the version matrix:
//!
//! * old client → new server: a request with no `trace` field still gets
//!   server-minted root ids, so its trace-log line is addressable;
//! * new client → old server: a `TraceGet`-rejecting peer surfaces as a
//!   typed error, and the client's own span is complete regardless;
//! * new client → new server (loopback): the propagated trace id shows
//!   up verbatim in the server's span ring and its JSONL trace log,
//!   parented on the client's span.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use stalloc_core::wire::{PlanRequest, PlanResponse, WireErrorKind};
use stalloc_core::{profile_trace, SynthConfig};
use stalloc_obs::ClientPhase;
use stalloc_served::{
    read_frame, write_frame, ClientError, PlanClient, PlanServer, ServeConfig, DEFAULT_MAX_FRAME,
};
use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};

fn sample_profile() -> stalloc_core::ProfiledRequests {
    let trace = TrainJob::new(
        ModelSpec::gpt2_345m(),
        ParallelConfig::new(1, 2, 1),
        OptimConfig::naive(),
    )
    .with_mbs(1)
    .with_seq(256)
    .with_microbatches(2)
    .with_iterations(1)
    .build_trace()
    .unwrap();
    profile_trace(&trace, 1).unwrap()
}

/// Reads `path` until `needle` shows up (the server logs a span *after*
/// writing the response, so the line can trail the reply briefly).
fn wait_for_log_line(path: &std::path::Path, needle: &str) -> String {
    for _ in 0..50 {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Some(line) = text.lines().find(|l| l.contains(needle)) {
                return line.to_string();
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "no line containing {needle:?} appeared in {}",
        path.display()
    );
}

fn log_field(line: &str, key: &str) -> String {
    let v: serde::Value = serde_json::from_str(line).unwrap();
    match v.get(key) {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("{key} in {line}: {other:?}"),
    }
}

/// An old client sends a `Plan` request with no `trace` key at all; the
/// server must mint root ids so the request is still addressable in the
/// trace log and span ring.
#[test]
fn old_client_without_trace_field_gets_server_minted_ids() {
    let dir = std::env::temp_dir().join(format!("stalloc-trc-old-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_p = dir.join("trace.jsonl");

    let server = PlanServer::start(ServeConfig {
        workers: 1,
        trace_log: Some(log_p.clone()),
        ..ServeConfig::default()
    })
    .unwrap();

    // Exactly what a pre-tracing client puts on the wire: today's Plan
    // request with the trace key spliced out (covers both encoders —
    // ones that skip a `None` and ones that write `null`).
    let request = PlanRequest::Plan {
        profile: sample_profile(),
        config: SynthConfig::default(),
        encoding: None,
        trace: None,
    };
    let json = serde_json::to_string(&request)
        .unwrap()
        .replace(",\"trace\":null", "")
        .replace("\"trace\":null,", "");
    assert!(
        !json.contains("trace"),
        "the request must carry no trace key"
    );

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_frame(&mut stream, json.as_bytes()).unwrap();
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME)
        .expect("a response, not a dropped connection")
        .expect("a response frame, not EOF");
    let response: PlanResponse =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(
        matches!(response, PlanResponse::Plan { .. }),
        "traceless requests still plan: {response:?}"
    );

    // The log line carries fresh, nonzero, *root* ids.
    let line = wait_for_log_line(&log_p, "\"verb\":\"Plan\"");
    let trace_id = log_field(&line, "trace_id");
    assert_eq!(trace_id.len(), 32, "{line}");
    assert_ne!(trace_id, "0".repeat(32), "a real minted id");
    assert_eq!(
        log_field(&line, "parent_span_id"),
        "0000000000000000",
        "server-minted ids are a trace root"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A server that predates `TraceGet` answers the unknown verb with a
/// typed `BadFrame` — and whatever the server does, the client's own
/// span stays complete, so a one-sided timeline is always available.
#[test]
fn new_client_against_old_server_keeps_a_complete_client_span() {
    // A fake "old" server: rejects every verb the way today's server
    // rejects verbs from *its* future, then hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        for _ in 0..2 {
            let (mut conn, _) = listener.accept().unwrap();
            while let Ok(Some(_)) = read_frame(&mut conn, DEFAULT_MAX_FRAME) {
                let reply = serde_json::to_string(&PlanResponse::Error {
                    kind: WireErrorKind::BadFrame,
                    message: "unknown verb (this server is from the past)".into(),
                })
                .unwrap();
                if write_frame(&mut conn, reply.as_bytes()).is_err() {
                    break;
                }
                let _ = conn.flush();
            }
        }
    });

    // The span-fetching verb itself: a typed error, not a hang/panic.
    let mut client = PlanClient::connect(addr).unwrap();
    let err = client.trace_get(&"a".repeat(32)).unwrap_err();
    assert!(
        matches!(err, ClientError::Server { .. }),
        "old server rejection is typed: {err}"
    );

    // A traced request against the same relic: the call fails typed,
    // but the client half of the trace is fully recorded. (Drop first —
    // shadowing would keep connection 1 open and stall the accept loop.)
    drop(client);
    let mut client = PlanClient::connect(addr).unwrap();
    let err = client.ping().unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err}");
    let span = client.last_span().expect("span recorded despite the error");
    assert_eq!(span.verb, "Ping");
    assert!(span.total_micros > 0, "a finished span has a total");
    for phase in [ClientPhase::Encode, ClientPhase::Write, ClientPhase::Await] {
        assert!(
            span.phase_micros(phase).is_some(),
            "{} was entered even though the server balked",
            phase.name()
        );
    }
    assert!(span.trace.is_set(), "client ids minted locally");

    // Close connection 2 so the fake's blocking read sees EOF.
    drop(client);
    fake.join().unwrap();
}

/// Loopback end to end: the trace id the client minted rides the wire,
/// lands in the server's span ring parented on the client's span, and
/// is written verbatim to the JSONL trace log.
#[test]
fn loopback_propagates_the_client_trace_id_end_to_end() {
    let dir = std::env::temp_dir().join(format!("stalloc-trc-loop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_p = dir.join("trace.jsonl");

    let server = PlanServer::start(ServeConfig {
        workers: 1,
        slowest: 5,
        trace_log: Some(log_p.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    // The retention knob is on the stats wire for `stalloc serve
    // --slowest` to introspect.
    assert_eq!(server.stats().slowest_capacity, 5);

    let mut client = PlanClient::connect(server.addr()).unwrap();
    client
        .plan(&sample_profile(), &SynthConfig::default())
        .unwrap();
    let client_span = client.last_span().expect("plan records a client span");
    let trace_hex = client.trace_context().trace_hex();

    // Same keep-alive connection: the worker recorded the plan's span
    // before reading this next frame, so the lookup is deterministic.
    let spans = client.trace_get(&trace_hex).unwrap();
    assert!(!spans.is_empty(), "the plan span is in the ring");
    for span in &spans {
        assert_eq!(span.trace_id, trace_hex, "propagated id, not minted");
    }
    // The wire verb depends on the profile encoding the client picked
    // (binary profiles arrive as `ProfileBin`).
    let plan_span = spans
        .iter()
        .find(|s| s.verb == "Plan" || s.verb == "ProfileBin")
        .unwrap();
    assert_eq!(
        plan_span.parent_span_id,
        client_span.trace.span_hex(),
        "server span parented on the client request span"
    );

    // The same id is on disk for offline `stalloc trace chrome` merges.
    let line = wait_for_log_line(&log_p, &trace_hex);
    assert_eq!(log_field(&line, "verb"), plan_span.verb);
    assert_eq!(log_field(&line, "trace_id"), trace_hex);

    // An unknown (but well-formed) id answers empty, not an error; a
    // malformed id is a typed rejection.
    let spans = client.trace_get(&"f".repeat(32)).unwrap();
    assert!(spans.is_empty());
    let err = client.trace_get("zz").unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
