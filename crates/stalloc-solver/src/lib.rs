//! `stalloc-solver`: a multi-strategy plan-synthesis portfolio.
//!
//! Memory planning is a search problem: different request mixes reward
//! different packing orders and placement rules (ROAM and "Memory
//! Planning for Deep Neural Networks" both report workload-dependent
//! winners). `stalloc-core` supplies one pipeline — the paper's §5.1
//! heuristic — as the [`StaticLayout`](stalloc_core::StaticLayout)
//! producer behind `synthesize`. This crate generalizes that into:
//!
//! * a [`Strategy`] trait with four concrete packers
//!   ([`registry`]): the paper pipeline (`baseline`), a size-descending
//!   best-fit (`bestfit`), a TMP-weight-ordered variant of the paper
//!   heuristic (`tmp-order`), and a temporal-lookahead interval packer
//!   (`lookahead`);
//! * a [`Portfolio`] runner that races strategies on `std::thread`
//!   workers (optionally under a wall-clock budget), validates every
//!   candidate, and deterministically keeps the best plan;
//! * [`synthesize_strategy`] — the strategy-aware superset of
//!   `stalloc_core::synthesize` that every cache/server/CLI path routes
//!   through, dispatching on
//!   [`SynthConfig::strategy`](stalloc_core::SynthConfig).
//!
//! Every strategy is required to produce a [`Plan`] that passes
//! [`Plan::validate`] (no two decisions overlapping in both lifetime and
//! address range) — the portfolio re-checks and discards any candidate
//! that does not.
//!
//! # Example
//!
//! ```
//! use stalloc_core::{profile_trace, StrategyChoice, SynthConfig};
//! use stalloc_solver::{synthesize_portfolio, synthesize_strategy};
//! use trace_gen::{ModelSpec, OptimConfig, ParallelConfig, TrainJob};
//!
//! let trace = TrainJob::new(
//!     ModelSpec::gpt2_345m(),
//!     ParallelConfig::new(1, 2, 1),
//!     OptimConfig::naive(),
//! )
//! .with_mbs(1)
//! .with_seq(256)
//! .with_microbatches(2)
//! .build_trace()
//! .unwrap();
//! let profile = profile_trace(&trace, 1).unwrap();
//!
//! let config = SynthConfig {
//!     strategy: StrategyChoice::Portfolio,
//!     ..SynthConfig::default()
//! };
//! let outcome = synthesize_portfolio(&profile, &config);
//! assert!(outcome.winner.validate().is_ok());
//! // The portfolio can never lose to its own baseline member.
//! let baseline = synthesize_strategy(
//!     &profile,
//!     &SynthConfig::default(),
//! );
//! assert!(outcome.winner.pool_size <= baseline.pool_size);
//! ```

pub mod portfolio;
pub mod profile;
pub mod replan;
pub mod strategy;

pub use portfolio::{CandidateReport, Portfolio, PortfolioOutcome};
pub use profile::SolverProfile;
pub use replan::{patch_plan, ReplanError, ReplanStats};
pub use strategy::{registry, strategy_for, Strategy};

use stalloc_core::{Plan, ProfiledRequests, StrategyChoice, SynthConfig};

/// Synthesizes a plan honouring [`SynthConfig::strategy`]: a concrete
/// strategy runs directly; [`StrategyChoice::Portfolio`] races the whole
/// [`registry`] and returns the winner.
///
/// This is the strategy-aware superset of `stalloc_core::synthesize`
/// (which always runs the baseline pipeline); cache keys computed with
/// `fingerprint_job` already incorporate the strategy, so plans produced
/// here are safe to store content-addressed.
pub fn synthesize_strategy(profile: &ProfiledRequests, config: &SynthConfig) -> Plan {
    synthesize_strategy_reported(profile, config).0
}

/// Like [`synthesize_strategy`], but also returns the per-strategy
/// [`CandidateReport`]s behind the plan: a portfolio run reports every
/// racer; a concrete strategy reports itself as the sole (winning)
/// candidate. The serving path aggregates these into the `Metrics`
/// verb's `solver` section.
pub fn synthesize_strategy_reported(
    profile: &ProfiledRequests,
    config: &SynthConfig,
) -> (Plan, Vec<CandidateReport>) {
    match config.strategy {
        StrategyChoice::Portfolio => {
            let outcome = Portfolio::standard().run(profile, config);
            (outcome.winner, outcome.candidates)
        }
        choice => {
            let strategy = strategy_for(choice).expect("every concrete choice is registered");
            let started = std::time::Instant::now();
            let (plan, prof) = strategy.plan_profiled(profile, config);
            let elapsed = started.elapsed();
            let valid = plan.validate().is_ok() && plan.pool_size >= plan.stats.peak_static_demand;
            let report = CandidateReport {
                strategy: choice,
                pool_size: plan.pool_size,
                packing_efficiency: plan.stats.packing_efficiency(),
                elapsed,
                valid,
                winner: true,
                profile: prof,
            };
            (plan, vec![report])
        }
    }
}

/// Runs the standard portfolio regardless of [`SynthConfig::strategy`]
/// and returns the full outcome (winner plus one report per candidate) —
/// the CLI and the harness's comparison table use the reports.
pub fn synthesize_portfolio(profile: &ProfiledRequests, config: &SynthConfig) -> PortfolioOutcome {
    Portfolio::standard().run(profile, config)
}
